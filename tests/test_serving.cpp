// The serving layer's correctness contracts:
//   * the sampler respects the fan-out bound, renumbers seed-locally, and
//     replays exactly from its seed;
//   * the queue flushes batches in FIFO order under both closing rules
//     (max_batch and window);
//   * the cache accounts hits/misses/evictions exactly;
//   * batched serving is BITWISE equal to per-request sequential serving on
//     every model kind — batching must be a pure throughput transform;
//   * the per-request seed derives from the request id, so replies are
//     reproducible across server thread counts.
#include <gtest/gtest.h>

#include <algorithm>
#include <future>
#include <thread>

#include "graph/graph.hpp"
#include "serve/server.hpp"
#include "serve/zipf.hpp"
#include "test_utils.hpp"

namespace agnn {
namespace {

using serve::BatchBlocks;
using serve::InferenceReply;
using serve::InferenceRequest;
using serve::NeighborSampler;
using serve::RequestQueue;
using serve::SampledEgoNet;
using serve::ServeConfig;
using serve::VertexCache;
using serve::derive_request_seed;

template <typename T>
CsrMatrix<T> serving_graph(index_t n, index_t m, std::uint64_t seed,
                           ModelKind kind) {
  const auto g = testing::small_graph<T>(n, m, seed);
  return kind == ModelKind::kGCN ? graph::sym_normalize(g.adj) : g.adj;
}

// ---- sampler --------------------------------------------------------------

TEST(ServingSampler, FanoutBoundHoldsOnEveryDstRow) {
  const auto adj = serving_graph<double>(60, 600, 11, ModelKind::kVA);
  const NeighborSampler sampler(3, 2);
  for (index_t v : {index_t{0}, index_t{17}, index_t{59}}) {
    const auto net = sampler.sample(adj, v, 99);
    ASSERT_EQ(net.num_layers(), 2);
    for (std::size_t i = 0; i < 2; ++i) {
      const auto& b = net.blocks[i];
      EXPECT_EQ(b.rows(), b.cols()) << "blocks must be square";
      EXPECT_EQ(b.rows(), net.src_size(i));
      for (index_t d = 0; d < net.dst_size(i); ++d) {
        EXPECT_LE(b.row_end(d) - b.row_begin(d), sampler.fanout());
      }
      for (index_t r = net.dst_size(i); r < b.rows(); ++r) {
        EXPECT_EQ(b.row_end(r), b.row_begin(r)) << "pad rows must be empty";
      }
    }
  }
}

TEST(ServingSampler, FullRowsPassThroughWhenDegreeWithinFanout) {
  const auto adj = serving_graph<double>(30, 90, 5, ModelKind::kVA);
  const NeighborSampler sampler(1000, 1);  // fanout exceeds every degree
  const index_t v = 7;
  const auto net = sampler.sample(adj, v, 3);
  const auto& b = net.blocks[0];
  ASSERT_EQ(net.num_seeds(), 1);
  EXPECT_EQ(b.row_end(0) - b.row_begin(0), adj.row_end(v) - adj.row_begin(v));
}

TEST(ServingSampler, RenumberingRoundTripsToGlobalEdges) {
  const auto adj = serving_graph<double>(80, 900, 21, ModelKind::kVA);
  const NeighborSampler sampler(4, 3);
  const index_t seed_vertex = 42;
  const auto net = sampler.sample(adj, seed_vertex, 7);

  // Seed-local numbering: the seed is local index 0; levels are nested
  // prefixes; local ids are unique.
  ASSERT_EQ(net.vertices.front(), seed_vertex);
  ASSERT_EQ(net.level_sizes.size(), 4u);
  EXPECT_EQ(net.level_sizes[0], 1);
  for (std::size_t t = 1; t < net.level_sizes.size(); ++t) {
    EXPECT_GE(net.level_sizes[t], net.level_sizes[t - 1]);
  }
  EXPECT_EQ(net.level_sizes.back(), net.num_vertices());
  auto uniq = net.vertices;
  std::sort(uniq.begin(), uniq.end());
  EXPECT_EQ(std::adjacent_find(uniq.begin(), uniq.end()), uniq.end());

  // Round-trip: every local edge maps back to a global edge with the same
  // value, and each local dst row (mapped to global) is a subsequence of
  // the global CSR row in the SAME ORDER — the property that makes per-row
  // reductions order-identical between ego net and full graph.
  for (std::size_t i = 0; i < net.blocks.size(); ++i) {
    const auto& b = net.blocks[i];
    for (index_t d = 0; d < net.dst_size(i); ++d) {
      const index_t gd = net.vertices[static_cast<std::size_t>(d)];
      index_t cursor = adj.row_begin(gd);
      for (index_t e = b.row_begin(d); e < b.row_end(d); ++e) {
        const index_t gc =
            net.vertices[static_cast<std::size_t>(b.col_at(e))];
        while (cursor < adj.row_end(gd) && adj.col_at(cursor) != gc) ++cursor;
        ASSERT_LT(cursor, adj.row_end(gd))
            << "sampled edge not found in order in the global row";
        EXPECT_EQ(b.val_at(e), adj.val_at(cursor));
        ++cursor;
      }
    }
  }
}

template <typename T>
bool same_csr(const CsrMatrix<T>& a, const CsrMatrix<T>& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols() || a.nnz() != b.nnz()) {
    return false;
  }
  for (index_t r = 0; r < a.rows(); ++r) {
    if (a.row_begin(r) != b.row_begin(r) || a.row_end(r) != b.row_end(r)) {
      return false;
    }
    for (index_t e = a.row_begin(r); e < a.row_end(r); ++e) {
      if (a.col_at(e) != b.col_at(e) || a.val_at(e) != b.val_at(e)) {
        return false;
      }
    }
  }
  return true;
}

TEST(ServingSampler, ReplaysExactlyFromSeed) {
  const auto adj = serving_graph<double>(70, 800, 31, ModelKind::kVA);
  const NeighborSampler sampler(3, 2);
  const auto a = sampler.sample(adj, 12, 1234);
  const auto b = sampler.sample(adj, 12, 1234);
  EXPECT_EQ(a.vertices, b.vertices);
  EXPECT_EQ(a.level_sizes, b.level_sizes);
  for (std::size_t i = 0; i < a.blocks.size(); ++i) {
    EXPECT_TRUE(same_csr(a.blocks[i], b.blocks[i]));
  }
  const auto c = sampler.sample(adj, 12, 1235);
  bool any_diff = c.vertices != a.vertices;
  for (std::size_t i = 0; !any_diff && i < a.blocks.size(); ++i) {
    any_diff = !same_csr(a.blocks[i], c.blocks[i]);
  }
  EXPECT_TRUE(any_diff) << "different seeds should sample differently";
}

TEST(ServingSampler, RequestSeedDerivesFromIdNotThread) {
  // Pure function of (base, id); distinct ids give distinct streams.
  EXPECT_EQ(derive_request_seed(7, 0), derive_request_seed(7, 0));
  EXPECT_NE(derive_request_seed(7, 0), derive_request_seed(7, 1));
  EXPECT_NE(derive_request_seed(7, 0), derive_request_seed(8, 0));

  const auto adj = serving_graph<double>(50, 500, 41, ModelKind::kVA);
  const NeighborSampler sampler(2, 2, /*base_seed=*/77);
  const auto via_request = sampler.sample_for_request<double>(adj, 9, 5);
  const auto via_seed = sampler.sample(adj, 9, derive_request_seed(77, 5));
  EXPECT_EQ(via_request.vertices, via_seed.vertices);
}

// ---- queue / batch window -------------------------------------------------

TEST(ServingQueue, MaxBatchClosesBatchInFifoOrder) {
  RequestQueue<float> q(64);
  for (std::uint64_t i = 0; i < 5; ++i) {
    InferenceRequest<float> r;
    r.id = i;
    ASSERT_TRUE(q.try_push(std::move(r)));
  }
  std::vector<InferenceRequest<float>> batch;
  ASSERT_TRUE(q.pop_batch(3, std::chrono::nanoseconds(0), batch));
  ASSERT_EQ(batch.size(), 3u);
  for (std::uint64_t i = 0; i < 3; ++i) EXPECT_EQ(batch[i].id, i);
  ASSERT_TRUE(q.pop_batch(3, std::chrono::nanoseconds(0), batch));
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].id, 3u);
  EXPECT_EQ(batch[1].id, 4u);
}

TEST(ServingQueue, WindowCoalescesLateArrivals) {
  RequestQueue<float> q(64);
  {
    InferenceRequest<float> r;
    r.id = 0;
    ASSERT_TRUE(q.try_push(std::move(r)));
  }
  std::thread producer([&q] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    InferenceRequest<float> r;
    r.id = 1;
    ASSERT_TRUE(q.try_push(std::move(r)));
  });
  std::vector<InferenceRequest<float>> batch;
  // A generous 2 s window: the batch must wait for the late arrival and
  // contain both, in arrival order.
  ASSERT_TRUE(q.pop_batch(2, std::chrono::seconds(2), batch));
  producer.join();
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].id, 0u);
  EXPECT_EQ(batch[1].id, 1u);
}

TEST(ServingQueue, ZeroWindowFlushesWhatIsQueued) {
  RequestQueue<float> q(64);
  for (std::uint64_t i = 0; i < 2; ++i) {
    InferenceRequest<float> r;
    r.id = i;
    ASSERT_TRUE(q.try_push(std::move(r)));
  }
  std::vector<InferenceRequest<float>> batch;
  ASSERT_TRUE(q.pop_batch(16, std::chrono::nanoseconds(0), batch));
  EXPECT_EQ(batch.size(), 2u);
}

TEST(ServingQueue, CloseWithoutDrainReturnsLeftovers) {
  RequestQueue<float> q(64);
  for (std::uint64_t i = 0; i < 4; ++i) {
    InferenceRequest<float> r;
    r.id = i;
    ASSERT_TRUE(q.try_push(std::move(r)));
  }
  auto leftovers = q.close(/*drain=*/false);
  ASSERT_EQ(leftovers.size(), 4u);
  for (std::uint64_t i = 0; i < 4; ++i) EXPECT_EQ(leftovers[i].id, i);
  std::vector<InferenceRequest<float>> batch;
  EXPECT_FALSE(q.pop_batch(4, std::chrono::nanoseconds(0), batch));
  InferenceRequest<float> r;
  EXPECT_FALSE(q.push(std::move(r)));
}

TEST(ServingQueue, CloseWithDrainServesQueuedThenStops) {
  RequestQueue<float> q(64);
  for (std::uint64_t i = 0; i < 3; ++i) {
    InferenceRequest<float> r;
    r.id = i;
    ASSERT_TRUE(q.try_push(std::move(r)));
  }
  EXPECT_TRUE(q.close(/*drain=*/true).empty());
  std::vector<InferenceRequest<float>> batch;
  ASSERT_TRUE(q.pop_batch(8, std::chrono::seconds(1), batch));
  EXPECT_EQ(batch.size(), 3u);
  EXPECT_FALSE(q.pop_batch(8, std::chrono::nanoseconds(0), batch));
}

// ---- cache ----------------------------------------------------------------

TEST(ServingCache, ExactHitMissEvictionAccounting) {
  VertexCache<float> cache(/*capacity=*/2, /*num_shards=*/1);
  float row[2];
  auto loader = [](index_t v, float* dst) {
    dst[0] = static_cast<float>(v);
    dst[1] = static_cast<float>(v) * 2.0f;
  };
  EXPECT_FALSE(cache.fetch(10, row, 2, loader));  // miss
  EXPECT_TRUE(cache.fetch(10, row, 2, loader));   // hit
  EXPECT_EQ(row[0], 10.0f);
  EXPECT_EQ(row[1], 20.0f);
  EXPECT_FALSE(cache.fetch(11, row, 2, loader));  // miss
  EXPECT_FALSE(cache.fetch(12, row, 2, loader));  // miss, evicts 10 (LRU)
  EXPECT_FALSE(cache.fetch(10, row, 2, loader));  // miss again, evicts 11
  EXPECT_TRUE(cache.fetch(12, row, 2, loader));   // still resident
  const auto s = cache.stats();
  EXPECT_EQ(s.hits, 2u);
  EXPECT_EQ(s.misses, 4u);
  EXPECT_EQ(s.evictions, 2u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(ServingCache, LruRefreshOnHitProtectsHotRows) {
  VertexCache<float> cache(2, 1);
  float row[1];
  auto loader = [](index_t v, float* dst) { dst[0] = static_cast<float>(v); };
  cache.fetch(1, row, 1, loader);  // miss: {1}
  cache.fetch(2, row, 1, loader);  // miss: {2, 1}
  cache.fetch(1, row, 1, loader);  // hit, refreshes 1: {1, 2}
  cache.fetch(3, row, 1, loader);  // miss, evicts LRU = 2
  EXPECT_TRUE(cache.fetch(1, row, 1, loader)) << "hot row must survive";
  EXPECT_FALSE(cache.fetch(2, row, 1, loader)) << "cold row must be gone";
}

TEST(ServingCache, InvalidateDropsRowsKeepsCounters) {
  VertexCache<float> cache(8, 2);
  float row[1];
  auto loader = [](index_t v, float* dst) { dst[0] = static_cast<float>(v); };
  cache.fetch(1, row, 1, loader);
  cache.fetch(1, row, 1, loader);
  const auto before = cache.stats();
  cache.invalidate();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.fetch(1, row, 1, loader)) << "post-invalidate is a miss";
  const auto after = cache.stats();
  EXPECT_EQ(after.hits, before.hits);
  EXPECT_EQ(after.misses, before.misses + 1);
}

// ---- batched forward == sequential forward, bitwise -----------------------

class ServingBitwise : public ::testing::TestWithParam<ModelKind> {};

TEST_P(ServingBitwise, BatchedForwardEqualsSequentialBitwise) {
  const ModelKind kind = GetParam();
  const auto adj = serving_graph<float>(90, 1100, 61, kind);
  GnnConfig cfg;
  cfg.kind = kind;
  cfg.in_features = 12;
  cfg.layer_widths = {10, 6};
  cfg.seed = 3;
  const GnnModel<float> model(cfg);
  const auto x = testing::random_dense<float>(90, 12, 8);
  const NeighborSampler sampler(4, 2, /*base_seed=*/123);

  // A batch of 6 requests (with a repeated vertex: same vertex, different
  // request id, different sample) through the batched path...
  const std::vector<index_t> vertices = {3, 40, 3, 88, 17, 55};
  std::vector<SampledEgoNet<float>> nets;
  for (std::size_t r = 0; r < vertices.size(); ++r) {
    nets.push_back(sampler.sample_for_request<float>(
        adj, vertices[r], static_cast<std::uint64_t>(r)));
  }
  std::vector<const SampledEgoNet<float>*> ptrs;
  for (const auto& n : nets) ptrs.push_back(&n);
  const BatchBlocks<float> bb =
      serve::build_batch(std::span<const SampledEgoNet<float>* const>(ptrs));
  Workspace<float> ws;
  DenseMatrix<float> x0(static_cast<index_t>(bb.input_vertices.size()), 12);
  gather_rows(x, std::span<const index_t>(bb.input_vertices), x0);
  DenseMatrix<float> out;
  serve::forward_batch(model, bb, x0, ws, out);
  ASSERT_EQ(out.rows(), static_cast<index_t>(vertices.size()));

  // ...must match each request run alone, bit for bit.
  Workspace<float> ws2;
  for (std::size_t r = 0; r < vertices.size(); ++r) {
    const auto solo = serve::serve_sequential(
        model, adj, x, sampler, vertices[r],
        derive_request_seed(123, static_cast<std::uint64_t>(r)), ws2);
    ASSERT_EQ(solo.size(), static_cast<std::size_t>(out.cols()));
    const auto row = out.row(static_cast<index_t>(r));
    for (std::size_t j = 0; j < solo.size(); ++j) {
      EXPECT_EQ(row[j], solo[j])
          << to_string(kind) << " request " << r << " element " << j
          << " differs between batched and sequential";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllModels, ServingBitwise,
                         ::testing::Values(ModelKind::kVA, ModelKind::kAGNN,
                                           ModelKind::kGAT, ModelKind::kGCN,
                                           ModelKind::kGIN),
                         [](const auto& param_info) {
                           return to_string(param_info.param);
                         });

// ---- end-to-end server ----------------------------------------------------

TEST(ServingServer, RepliesMatchSequentialOracleBitwise) {
  const auto adj = serving_graph<float>(100, 1200, 71, ModelKind::kGAT);
  GnnConfig cfg;
  cfg.kind = ModelKind::kGAT;
  cfg.in_features = 8;
  cfg.layer_widths = {8, 5};
  const GnnModel<float> model(cfg);
  const auto x = testing::random_dense<float>(100, 8, 9);

  ServeConfig sc;
  sc.num_threads = 2;
  sc.max_batch = 8;
  sc.batch_window = std::chrono::milliseconds(2);
  sc.fanout = 5;
  sc.sample_seed = 99;
  serve::InferenceServer<float> server(model, adj, x, sc);

  std::vector<std::future<InferenceReply<float>>> futures;
  std::vector<index_t> vertices;
  Rng rng(4);
  for (int i = 0; i < 40; ++i) {
    vertices.push_back(static_cast<index_t>(rng.next_bounded(100)));
    futures.push_back(server.submit(vertices.back()));
  }

  const NeighborSampler oracle(sc.fanout, 2, sc.sample_seed);
  Workspace<float> ws;
  for (std::size_t i = 0; i < futures.size(); ++i) {
    auto reply = futures[i].get();
    ASSERT_EQ(reply.status, serve::ReplyStatus::kOk);
    EXPECT_EQ(reply.request_id, i) << "ids are assigned in submission order";
    EXPECT_EQ(reply.vertex, vertices[i]);
    EXPECT_GE(reply.batch_size, 1);
    EXPECT_GT(reply.sampled_vertices, 0);
    EXPECT_GT(reply.latency_ns, 0u);
    const auto solo =
        serve::serve_sequential(model, adj, x, oracle, vertices[i],
                                reply.sample_seed, ws);
    ASSERT_EQ(solo.size(), reply.output.size());
    for (std::size_t j = 0; j < solo.size(); ++j) {
      EXPECT_EQ(reply.output[j], solo[j]);
    }
  }
  server.stop(/*drain=*/true);
  EXPECT_EQ(server.completed(), 40u);
  EXPECT_GT(server.cache().stats().hits + server.cache().stats().misses, 0u);
}

TEST(ServingServer, OutputsIdenticalAcrossThreadCounts) {
  const auto adj = serving_graph<float>(80, 900, 81, ModelKind::kAGNN);
  GnnConfig cfg;
  cfg.kind = ModelKind::kAGNN;
  cfg.in_features = 6;
  cfg.layer_widths = {6, 4};
  const GnnModel<float> model(cfg);
  const auto x = testing::random_dense<float>(80, 6, 10);

  std::vector<index_t> vertices;
  Rng rng(12);
  for (int i = 0; i < 24; ++i) {
    vertices.push_back(static_cast<index_t>(rng.next_bounded(80)));
  }

  auto run = [&](std::size_t threads) {
    ServeConfig sc;
    sc.num_threads = threads;
    sc.max_batch = 4;
    sc.batch_window = std::chrono::milliseconds(1);
    sc.fanout = 3;
    sc.sample_seed = 7;
    serve::InferenceServer<float> server(model, adj, x, sc);
    std::vector<std::future<InferenceReply<float>>> futures;
    for (index_t v : vertices) futures.push_back(server.submit(v));
    std::vector<std::vector<float>> outputs;
    for (auto& f : futures) {
      auto reply = f.get();
      EXPECT_EQ(reply.status, serve::ReplyStatus::kOk);
      outputs.push_back(reply.output);
    }
    return outputs;
  };

  const auto one = run(1);
  const auto four = run(4);
  ASSERT_EQ(one.size(), four.size());
  for (std::size_t i = 0; i < one.size(); ++i) {
    EXPECT_EQ(one[i], four[i])
        << "request " << i << ": reply depends on thread count";
  }
}

TEST(ServingServer, SubmitAfterStopIsRejected) {
  const auto adj = serving_graph<float>(20, 60, 91, ModelKind::kVA);
  GnnConfig cfg;
  cfg.kind = ModelKind::kVA;
  cfg.in_features = 4;
  cfg.layer_widths = {4};
  const GnnModel<float> model(cfg);
  const auto x = testing::random_dense<float>(20, 4, 2);
  ServeConfig sc;
  sc.num_threads = 1;
  serve::InferenceServer<float> server(model, adj, x, sc);
  server.stop(/*drain=*/true);
  auto reply = server.submit(3).get();
  EXPECT_EQ(reply.status, serve::ReplyStatus::kRejected);
  auto maybe = server.try_submit(3);
  ASSERT_TRUE(maybe.has_value());
  EXPECT_EQ(maybe->get().status, serve::ReplyStatus::kRejected);
}

// ---- zipf load shape ------------------------------------------------------

TEST(ServingZipf, SkewsMassTowardFewVertices) {
  serve::ZipfSampler zipf(1000, 1.1, /*perm_seed=*/3);
  Rng rng(5);
  std::vector<int> counts(1000, 0);
  const int draws = 20000;
  for (int i = 0; i < draws; ++i) {
    const index_t v = zipf.sample(rng);
    ASSERT_GE(v, 0);
    ASSERT_LT(v, 1000);
    ++counts[static_cast<std::size_t>(v)];
  }
  std::sort(counts.begin(), counts.end(), std::greater<>());
  int top10 = 0;
  for (int i = 0; i < 10; ++i) top10 += counts[static_cast<std::size_t>(i)];
  // Under s=1.1 the top-10 ranks carry >40% of the mass; uniform would
  // give 1%. Generous margin keeps this deterministic-seed test robust.
  EXPECT_GT(top10, draws / 4);
}

}  // namespace
}  // namespace agnn
