// Chaos suite for the simulated cluster: deterministic fault injection,
// structured failure agreement (CommError on every rank, never a deadlock),
// and checkpoint-recovery that reproduces the fault-free training run.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <tuple>
#include <vector>

#include "comm/communicator.hpp"
#include "comm/fault_injection.hpp"
#include "core/model.hpp"
#include "core/serialization.hpp"
#include "dist/dist_engine.hpp"
#include "dist/recovery.hpp"
#include "obs/trace.hpp"
#include "test_utils.hpp"

namespace agnn::comm {
namespace {

// ---- spec parsing ---------------------------------------------------------

TEST(FaultSpec, ParsesAndRoundTrips) {
  const std::string spec = "delay@r0:s3:500us;abort@r1:s12;timeout@r2:s7";
  const FaultPlan plan = FaultPlan::parse(spec);
  ASSERT_EQ(plan.size(), 3u);
  EXPECT_EQ(plan.event(0).kind, FaultKind::kStragglerDelay);
  EXPECT_EQ(plan.event(0).rank, 0);
  EXPECT_EQ(plan.event(0).superstep, 3u);
  EXPECT_EQ(plan.event(0).delay_us, 500u);
  EXPECT_EQ(plan.event(1).kind, FaultKind::kRankAbort);
  EXPECT_EQ(plan.event(1).rank, 1);
  EXPECT_EQ(plan.event(1).superstep, 12u);
  EXPECT_EQ(plan.event(2).kind, FaultKind::kCollectiveTimeout);
  EXPECT_EQ(plan.spec(), spec);
  // The round trip is a fixpoint: parse(spec()) == spec().
  EXPECT_EQ(FaultPlan::parse(plan.spec()).spec(), spec);
}

TEST(FaultSpec, BareDelayDefaultsToOneMillisecond) {
  const FaultPlan plan = FaultPlan::parse("delay@r2:s5");
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan.event(0).delay_us, 1000u);
  EXPECT_EQ(plan.spec(), "delay@r2:s5:1000us");
}

TEST(FaultSpec, EmptyAndSeparatorOnlySpecsAreEmptyPlans) {
  EXPECT_TRUE(FaultPlan::parse("").empty());
  EXPECT_TRUE(FaultPlan::parse(";;").empty());
}

TEST(FaultSpec, RejectsMalformedSpecs) {
  EXPECT_THROW(FaultPlan::parse("explode@r0:s1"), std::logic_error);
  EXPECT_THROW(FaultPlan::parse("abort"), std::logic_error);
  EXPECT_THROW(FaultPlan::parse("abort@x0:s1"), std::logic_error);
  EXPECT_THROW(FaultPlan::parse("abort@r0"), std::logic_error);
  EXPECT_THROW(FaultPlan::parse("abort@r0:s1:100us"), std::logic_error);
  EXPECT_THROW(FaultPlan::parse("delay@r0:s1:100"), std::logic_error);
  EXPECT_THROW(FaultPlan::parse("delay@r0:s1:100usx"), std::logic_error);
}

TEST(FaultSpec, RandomPlansAreSeedDeterministic) {
  const FaultPlan a = FaultPlan::random(17, 4, 100);
  const FaultPlan b = FaultPlan::random(17, 4, 100);
  EXPECT_EQ(a.spec(), b.spec());
  ASSERT_GE(a.size(), 1u);
  int hard = 0;
  for (const FaultEvent& ev : a.events()) {
    EXPECT_GE(ev.rank, 0);
    EXPECT_LT(ev.rank, 4);
    EXPECT_GE(ev.superstep, 1 + 100u / 4);
    EXPECT_LE(ev.superstep, 1 + 75u);
    if (ev.kind != FaultKind::kStragglerDelay) ++hard;
  }
  EXPECT_LE(hard, 1);  // bounded-retry recovery must always converge
  // Distinct seeds should (essentially always) give distinct plans.
  bool any_different = false;
  for (std::uint64_t s = 1; s <= 8 && !any_different; ++s) {
    any_different = FaultPlan::random(s, 4, 100).spec() != a.spec();
  }
  EXPECT_TRUE(any_different);
}

// ---- fault firing at collectives ------------------------------------------

struct FirePoint {
  FaultKind kind;
  int rank;    // faulted rank
  int nranks;  // world size
};

class FaultFiring : public ::testing::TestWithParam<FirePoint> {};

// The canonical chaos body: a loop of allreduces. A delay completes the
// run; abort/timeout must surface CommError on EVERY rank — no deadlock,
// bounded by the collective timeout.
TEST_P(FaultFiring, EveryRankObservesTheFault) {
  const FirePoint p = GetParam();
  RunOptions opts;
  FaultEvent ev;
  ev.kind = p.kind;
  ev.rank = p.rank;
  ev.superstep = 6;  // mid-loop; each allreduce charges 2*ceil(log2 g) steps
  ev.delay_us = 300;
  opts.faults.add(ev);
  opts.timeout = std::chrono::milliseconds(250);

  std::atomic<int> comm_errors{0};
  std::atomic<int> completed{0};
  const auto snaps = SpmdRuntime::run(p.nranks, opts, [&](Communicator& world) {
    std::vector<double> buf(8, 1.0);
    try {
      for (int i = 0; i < 12; ++i) world.allreduce_sum(std::span<double>(buf));
      completed.fetch_add(1);
    } catch (const CommError& e) {
      EXPECT_EQ(e.kind(), p.kind) << e.what();
      comm_errors.fetch_add(1);
    }
  });

  if (p.kind == FaultKind::kStragglerDelay) {
    EXPECT_EQ(completed.load(), p.nranks);
    EXPECT_EQ(comm_errors.load(), 0);
    // Peers of the straggler observed the stall as barrier wait time.
    double total_wait = 0;
    for (const auto& s : snaps) total_wait += s.wait_seconds;
    EXPECT_GT(total_wait, 0.0);
  } else {
    EXPECT_EQ(comm_errors.load(), p.nranks) << "fault must surface on all ranks";
    EXPECT_EQ(completed.load(), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FaultFiring,
    ::testing::Values(FirePoint{FaultKind::kStragglerDelay, 0, 2},
                      FirePoint{FaultKind::kStragglerDelay, 3, 4},
                      FirePoint{FaultKind::kRankAbort, 0, 2},
                      FirePoint{FaultKind::kRankAbort, 1, 2},
                      FirePoint{FaultKind::kRankAbort, 2, 4},
                      FirePoint{FaultKind::kRankAbort, 0, 9},
                      FirePoint{FaultKind::kCollectiveTimeout, 0, 2},
                      FirePoint{FaultKind::kCollectiveTimeout, 3, 4},
                      FirePoint{FaultKind::kCollectiveTimeout, 5, 9}),
    [](const ::testing::TestParamInfo<FirePoint>& tpi) {
      return std::string(to_string(tpi.param.kind)) + "_r" +
             std::to_string(tpi.param.rank) + "_p" +
             std::to_string(tpi.param.nranks);
    });

TEST(FaultFiringMore, UnhandledAbortPropagatesOutOfRun) {
  RunOptions opts;
  opts.faults = FaultPlan::parse("abort@r1:s4");
  opts.timeout = std::chrono::milliseconds(250);
  EXPECT_THROW(SpmdRuntime::run(4,
                                opts,
                                [&](Communicator& world) {
                                  std::vector<double> buf(4, 1.0);
                                  for (int i = 0; i < 10; ++i) {
                                    world.allreduce_sum(std::span<double>(buf));
                                  }
                                }),
               CommError);
}

TEST(FaultFiringMore, FaultsInSplitGroupsSurfaceEverywhere) {
  // The failure flag is runtime-wide: a fault fired inside a row
  // sub-communicator must also unwind ranks blocked in world collectives.
  RunOptions opts;
  opts.faults = FaultPlan::parse("abort@r3:s2");
  opts.timeout = std::chrono::milliseconds(250);
  std::atomic<int> comm_errors{0};
  SpmdRuntime::run(4, opts, [&](Communicator& world) {
    auto row = world.split(world.rank() / 2, world.rank() % 2);
    std::vector<double> buf(4, 1.0);
    try {
      for (int i = 0; i < 10; ++i) {
        row.allreduce_sum(std::span<double>(buf));
        world.barrier();
      }
    } catch (const CommError&) {
      comm_errors.fetch_add(1);
    }
  });
  EXPECT_EQ(comm_errors.load(), 4);
}

TEST(FaultFiringMore, DeterministicReplayOfTraceInstants) {
  // Same plan + same program => the same fault instants at the same logical
  // (rank, superstep) coordinates, run after run.
  using Key = std::tuple<std::string, std::int32_t, std::uint64_t>;
  const auto run_once = [&] {
    obs::Tracer::instance().clear();
    obs::Tracer::set_enabled(true);
    RunOptions opts;
    opts.faults = FaultPlan::parse("delay@r0:s4:200us;abort@r2:s8");
    opts.timeout = std::chrono::milliseconds(250);
    std::atomic<int> errors{0};
    SpmdRuntime::run(4, opts, [&](Communicator& world) {
      std::vector<double> buf(4, 1.0);
      try {
        for (int i = 0; i < 10; ++i) world.allreduce_sum(std::span<double>(buf));
      } catch (const CommError&) {
        errors.fetch_add(1);
      }
    });
    obs::Tracer::set_enabled(false);
    EXPECT_EQ(errors.load(), 4);
    std::vector<Key> marks;
    for (const obs::TraceEvent& ev : obs::Tracer::instance().collect()) {
      if (ev.category != obs::SpanCategory::kFault) continue;
      if (std::string(ev.name) == "fault.declared") continue;  // racy origin
      marks.emplace_back(ev.name, ev.rank, ev.superstep);
    }
    std::sort(marks.begin(), marks.end());
    obs::Tracer::instance().clear();
    return marks;
  };
  const auto first = run_once();
  const auto second = run_once();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
  // The injected faults are present at their scheduled coordinates.
  EXPECT_TRUE(std::count(first.begin(), first.end(), Key{"fault.delay", 0, 4}) ==
              1)
      << "missing delay instant";
  bool has_abort = false;
  for (const auto& [name, rank, step] : first) {
    if (name == "fault.abort" && rank == 2) has_abort = true;
  }
  EXPECT_TRUE(has_abort);
}

TEST(FaultFiringMore, EnvSpecDrivesTheDefaultRunOverload) {
  ASSERT_EQ(setenv("AGNN_FAULTS", "abort@r0:s3", 1), 0);
  ASSERT_EQ(setenv("AGNN_COMM_TIMEOUT_MS", "250", 1), 0);
  std::atomic<int> errors{0};
  SpmdRuntime::run(2, [&](Communicator& world) {
    std::vector<double> buf(4, 1.0);
    try {
      for (int i = 0; i < 10; ++i) world.allreduce_sum(std::span<double>(buf));
    } catch (const CommError&) {
      errors.fetch_add(1);
    }
  });
  unsetenv("AGNN_FAULTS");
  unsetenv("AGNN_COMM_TIMEOUT_MS");
  EXPECT_EQ(errors.load(), 2);
  // An explicit RunOptions is authoritative: with the env cleared this is
  // plain healthy execution.
  SpmdRuntime::run(2, RunOptions{}, [&](Communicator& world) {
    std::vector<double> buf(4, 1.0);
    world.allreduce_sum(std::span<double>(buf));
  });
}

}  // namespace
}  // namespace agnn::comm

// ---- checkpoint recovery ---------------------------------------------------

namespace agnn::dist {
namespace {

GnnConfig gat_config() {
  GnnConfig cfg;
  cfg.kind = ModelKind::kGAT;
  cfg.in_features = 4;
  cfg.layer_widths = {4, 4};
  cfg.hidden_activation = Activation::kTanh;
  cfg.seed = 4242;
  return cfg;
}

struct ChaosTrainResult {
  std::vector<double> losses;
  std::vector<double> params;
  int restores = 0;
  std::uint64_t supersteps = 0;
};

// Trains 4-rank GAT under `plan` with recovery; returns the loss trajectory
// and final parameters (identical on all ranks; rank 0 reports).
ChaosTrainResult chaos_train(const comm::FaultPlan& plan, int epochs,
                             const RecoveryOptions& ropts = {}) {
  const auto g = testing::small_graph<double>(24, 120, 17 + 24);
  const auto x = testing::random_dense<double>(24, 4, 19);
  std::vector<index_t> labels(24);
  Rng rng(23);
  for (auto& l : labels) l = static_cast<index_t>(rng.next_bounded(4));

  comm::RunOptions opts;
  opts.faults = plan;
  // Finite deadline only for chaos runs; clean baselines must never trip a
  // spurious timeout under slow (sanitized) builds.
  if (!plan.empty()) opts.timeout = std::chrono::milliseconds(400);
  ChaosTrainResult result;
  std::mutex mu;
  const auto snaps = comm::SpmdRuntime::run(4, opts, [&](comm::Communicator& world) {
    GnnModel<double> model(gat_config());
    DistGnnEngine<double> engine(world, g.adj, model);
    SgdOptimizer<double> opt(0.05, 0.9);  // momentum => optimizer state blob
    const auto report = train_with_recovery<double>(
        world, engine, model, opt, x, labels, epochs, {}, ropts);
    if (world.rank() == 0) {
      std::lock_guard<std::mutex> lk(mu);
      result.losses = report.losses;
      result.restores = report.restores;
      collect_params(model, result.params);
    }
  });
  result.supersteps = comm::max_supersteps(snaps);
  return result;
}

TEST(ChaosRecovery, AbortMidTrainingRecoversToFaultFreeResult) {
  const int epochs = 8;
  const auto clean = chaos_train(comm::FaultPlan{}, epochs);
  ASSERT_EQ(clean.restores, 0);
  ASSERT_GT(clean.supersteps, 0u);

  // Schedule an abort in the middle of the superstep range, on each rank in
  // turn: recovery must land on the exact fault-free trajectory every time.
  for (int faulted = 0; faulted < 4; ++faulted) {
    comm::FaultPlan plan;
    plan.add({comm::FaultKind::kRankAbort, faulted, clean.supersteps / 2, 0});
    RecoveryOptions ropts;
    ropts.checkpoint_every = 2;
    const auto chaos = chaos_train(plan, epochs, ropts);
    EXPECT_EQ(chaos.restores, 1) << "plan " << plan.spec();
    ASSERT_EQ(chaos.losses.size(), clean.losses.size());
    for (std::size_t e = 0; e < clean.losses.size(); ++e) {
      EXPECT_NEAR(chaos.losses[e], clean.losses[e], 1e-9)
          << "plan " << plan.spec() << " epoch " << e;
    }
    ASSERT_EQ(chaos.params.size(), clean.params.size());
    for (std::size_t i = 0; i < clean.params.size(); ++i) {
      EXPECT_NEAR(chaos.params[i], clean.params[i], 1e-9)
          << "plan " << plan.spec() << " param " << i;
    }
  }
}

TEST(ChaosRecovery, StragglerDoesNotPerturbTraining) {
  const int epochs = 6;
  const auto clean = chaos_train(comm::FaultPlan{}, epochs);
  comm::FaultPlan plan = comm::FaultPlan::parse("delay@r1:s5:400us;delay@r3:s9:400us");
  const auto chaos = chaos_train(plan, epochs);
  EXPECT_EQ(chaos.restores, 0);
  ASSERT_EQ(chaos.losses.size(), clean.losses.size());
  for (std::size_t e = 0; e < clean.losses.size(); ++e) {
    // 1e-12, not bitwise: OpenMP reductions may reassociate run-to-run.
    EXPECT_NEAR(chaos.losses[e], clean.losses[e], 1e-12) << "epoch " << e;
  }
}

TEST(ChaosRecovery, TimeoutFaultAlsoRecovers) {
  const int epochs = 6;
  const auto clean = chaos_train(comm::FaultPlan{}, epochs);
  comm::FaultPlan plan;
  plan.add({comm::FaultKind::kCollectiveTimeout, 2, clean.supersteps / 2, 0});
  const auto chaos = chaos_train(plan, epochs);
  EXPECT_EQ(chaos.restores, 1);
  for (std::size_t e = 0; e < clean.losses.size(); ++e) {
    EXPECT_NEAR(chaos.losses[e], clean.losses[e], 1e-9) << "epoch " << e;
  }
}

TEST(ChaosRecovery, GivesUpPastMaxRestores) {
  comm::FaultPlan plan;
  // More aborts than allowed restores. Both on the same rank: the scan
  // fires (and throws) the first before marking the second, so the second
  // abort is guaranteed to land in the *retried* attempt.
  plan.add({comm::FaultKind::kRankAbort, 0, 4, 0});
  plan.add({comm::FaultKind::kRankAbort, 0, 8, 0});
  RecoveryOptions ropts;
  ropts.max_restores = 1;
  EXPECT_THROW(chaos_train(plan, 8, ropts), comm::CommError);
}

TEST(ChaosRecovery, PersistsCheckpointFileOnRankZero) {
  const std::string path = ::testing::TempDir() + "chaos_ckpt.bin";
  std::remove(path.c_str());
  RecoveryOptions ropts;
  ropts.checkpoint_every = 2;
  ropts.checkpoint_path = path;
  const auto clean = chaos_train(comm::FaultPlan{}, 6, ropts);
  ASSERT_TRUE(checkpoint_exists(path));
  GnnModel<double> model(gat_config());
  std::vector<double> opt_state;
  const CheckpointMeta meta = load_checkpoint(path, model, &opt_state);
  // Last periodic checkpoint before the end of the 6-epoch run.
  EXPECT_EQ(meta.epoch, 4);
  EXPECT_FALSE(opt_state.empty());  // momentum SGD carries state
  std::remove(path.c_str());
  (void)clean;
}

TEST(ChaosRecovery, ParamSnapshotRoundTripsBitwise) {
  GnnModel<double> a(gat_config());
  GnnModel<double> b(gat_config());
  // Perturb b so the restore provably overwrites it.
  b.layer(0).weights().data()[0] += 1.0;
  b.layer(1).attention_params()[1] -= 0.5;
  std::vector<double> blob;
  collect_params(a, blob);
  EXPECT_FALSE(blob.empty());
  restore_params(b, blob);
  std::vector<double> blob_b;
  collect_params(b, blob_b);
  EXPECT_EQ(blob, blob_b);
  std::vector<double> bad(blob.begin(), blob.end() - 1);
  EXPECT_THROW(restore_params(b, bad), std::logic_error);
}

}  // namespace
}  // namespace agnn::dist
