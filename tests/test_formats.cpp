// The blocked sparse format layer (DESIGN.md §13): SELL-C-σ and BCSR.
//
//   1. AGNN_FORMAT parsing and the env fallback.
//   2. SELL-C-σ structural invariants: σ-window sort, depth-major slot
//      addressing, dead pads, src() a bijection onto the CSR nnz range.
//   3. Lossless CSR -> SELL -> CSR round trips on the adversarial shapes
//      (empty matrix, empty rows, hub rows wider than C, row counts not a
//      multiple of C, duplicate entries).
//   4. BCSR round trips and the strict-ascending convertibility contract
//      (duplicates -> valid() == false -> dispatch falls back to CSR).
//   5. The format axis of the equivalence sweep: every dispatched kernel
//      bitwise-identical to the scalar CSR reference under format x
//      schedule-policy x graph family.
//   6. The pattern-only conversion caches on CsrMatrix: reuse, transfer on
//      copy, invalidation on in-place pattern rebuild, value freshness after
//      vals_mutable() writes.
//   7. kAuto's size threshold.
//   8. Upfront shape asserts naming the right kernel (spmmm regression).

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <tuple>
#include <vector>

#include "graph/graph.hpp"
#include "graph/kronecker.hpp"
#include "tensor/bcsr_matrix.hpp"
#include "tensor/format.hpp"
#include "tensor/fused.hpp"
#include "tensor/sell_matrix.hpp"
#include "tensor/sparse_ops.hpp"
#include "tensor/spmm.hpp"
#include "test_utils.hpp"

namespace agnn {
namespace {

using testing::random_dense;

class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) {
      had_ = true;
      old_ = old;
    }
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_) {
      ::setenv(name_, old_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  bool had_ = false;
  std::string old_;
};

// ---- graph families ---------------------------------------------------------
// The shapes the conversions must survive: a hub row far wider than C, rows
// that are multiples of nothing, interleaved and trailing empty rows,
// power-law skew, and duplicate entries (representable in CSR, not in BCSR).

enum Family : int {
  kFamilyStar = 0,    // hub row of width 60 >> C = 8
  kFamilyChain,       // uniform degree <= 3, n % C != 0
  kFamilyEmptyRows,   // interleaved + trailing empty rows
  kFamilyKron,        // power-law degrees through the standard pipeline
  kFamilyDuplicates,  // duplicate (i, j) entries: SELL fine, BCSR invalid
  kFamilyCount,
};

const char* family_name(int f) {
  switch (f) {
    case kFamilyStar: return "star";
    case kFamilyChain: return "chain";
    case kFamilyEmptyRows: return "empty_rows";
    case kFamilyKron: return "kron";
    case kFamilyDuplicates: return "duplicates";
  }
  return "?";
}

CsrMatrix<double> family_graph(int family, std::uint64_t seed) {
  CooMatrix<double> coo;
  Rng rng(seed);
  switch (family) {
    case kFamilyStar: {
      const index_t n = 61;  // 61 % 8 != 0
      coo.n_rows = coo.n_cols = n;
      for (index_t j = 1; j < n; ++j) {
        coo.push_back(0, j, rng.next_uniform(0.1, 1.0));
        coo.push_back(j, 0, rng.next_uniform(0.1, 1.0));
      }
      for (index_t i = 0; i < n; ++i) {
        coo.push_back(i, i, rng.next_uniform(0.1, 1.0));
      }
      return CsrMatrix<double>::from_coo(coo);
    }
    case kFamilyChain: {
      const index_t n = 97;
      coo.n_rows = coo.n_cols = n;
      for (index_t i = 0; i + 1 < n; ++i) {
        coo.push_back(i, i + 1, rng.next_uniform(0.1, 1.0));
        coo.push_back(i + 1, i, rng.next_uniform(0.1, 1.0));
      }
      for (index_t i = 0; i < n; ++i) {
        coo.push_back(i, i, rng.next_uniform(0.1, 1.0));
      }
      return CsrMatrix<double>::from_coo(coo);
    }
    case kFamilyEmptyRows: {
      // Edges only among even rows of the first half; odd rows and the whole
      // second half (including the final rows) stay empty.
      const index_t n = 70;
      coo.n_rows = coo.n_cols = n;
      for (index_t e = 0; e < 120; ++e) {
        const auto i = 2 * static_cast<index_t>(rng.next_bounded(17));
        const auto j = 2 * static_cast<index_t>(rng.next_bounded(17));
        coo.push_back(i, j, rng.next_uniform(0.1, 1.0));
      }
      coo.sum_duplicates();
      return CsrMatrix<double>::from_coo(coo);
    }
    case kFamilyKron: {
      graph::BuildOptions opt;
      opt.add_self_loops = true;
      auto g = graph::build_graph<double>(
          graph::generate_kronecker({.scale = 7, .edges = 1500, .seed = seed}),
          opt);
      auto a = g.adj;
      auto v = a.vals_mutable();
      for (auto& x : v) x = rng.next_uniform(0.1, 1.0);
      return a;
    }
    case kFamilyDuplicates:
    default: {
      // from_coo keeps duplicates: push several copies of some coordinates.
      const index_t n = 23;
      coo.n_rows = coo.n_cols = n;
      for (index_t i = 0; i < n; ++i) {
        coo.push_back(i, i, rng.next_uniform(0.1, 1.0));
        coo.push_back(i, (i * 3 + 1) % n, rng.next_uniform(0.1, 1.0));
        coo.push_back(i, (i * 3 + 1) % n, rng.next_uniform(0.1, 1.0));
      }
      return CsrMatrix<double>::from_coo(coo);
    }
  }
}

bool csr_bits_equal(const CsrMatrix<double>& a, const CsrMatrix<double>& b) {
  if (!a.same_pattern(b)) return false;
  for (index_t e = 0; e < a.nnz(); ++e) {
    if (std::bit_cast<std::uint64_t>(a.val_at(e)) !=
        std::bit_cast<std::uint64_t>(b.val_at(e))) {
      return false;
    }
  }
  return true;
}

bool dense_bits_equal(const DenseMatrix<double>& a, const DenseMatrix<double>& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (index_t i = 0; i < a.size(); ++i) {
    if (std::bit_cast<std::uint64_t>(a.data()[i]) !=
        std::bit_cast<std::uint64_t>(b.data()[i])) {
      return false;
    }
  }
  return true;
}

// ---- 1. parsing -------------------------------------------------------------

TEST(SparseFormatParse, AcceptsAllSpellings) {
  SparseFormat f{};
  EXPECT_TRUE(parse_sparse_format("csr", f));
  EXPECT_EQ(f, SparseFormat::kCsr);
  EXPECT_TRUE(parse_sparse_format("", f));
  EXPECT_EQ(f, SparseFormat::kCsr);
  EXPECT_TRUE(parse_sparse_format("sell", f));
  EXPECT_EQ(f, SparseFormat::kSell);
  EXPECT_TRUE(parse_sparse_format("sell-c-sigma", f));
  EXPECT_EQ(f, SparseFormat::kSell);
  EXPECT_TRUE(parse_sparse_format("bcsr", f));
  EXPECT_EQ(f, SparseFormat::kBcsr);
  EXPECT_TRUE(parse_sparse_format("auto", f));
  EXPECT_EQ(f, SparseFormat::kAuto);
}

TEST(SparseFormatParse, RejectsUnknownSpellingsWithoutClobber) {
  SparseFormat f = SparseFormat::kSell;
  EXPECT_FALSE(parse_sparse_format("SELL", f));
  EXPECT_FALSE(parse_sparse_format("ellpack", f));
  EXPECT_FALSE(parse_sparse_format("csr ", f));
  EXPECT_EQ(f, SparseFormat::kSell) << "rejects must not clobber out";
}

TEST(SparseFormatParse, EnvSelectsFormat) {
  {
    ScopedEnv e("AGNN_FORMAT", nullptr);
    EXPECT_EQ(sparse_format_from_env(), SparseFormat::kCsr);
  }
  {
    ScopedEnv e("AGNN_FORMAT", "sell");
    EXPECT_EQ(sparse_format_from_env(), SparseFormat::kSell);
  }
  {
    ScopedEnv e("AGNN_FORMAT", "bcsr");
    EXPECT_EQ(sparse_format_from_env(), SparseFormat::kBcsr);
  }
  {
    // Garbage falls back to the scalar default rather than aborting.
    ScopedEnv e("AGNN_FORMAT", "hyb");
    EXPECT_EQ(sparse_format_from_env(), SparseFormat::kCsr);
  }
}

TEST(SparseFormatParse, RoundTripsToString) {
  for (const auto f : {SparseFormat::kCsr, SparseFormat::kSell,
                       SparseFormat::kBcsr, SparseFormat::kAuto}) {
    SparseFormat back{};
    ASSERT_TRUE(parse_sparse_format(to_string(f), back));
    EXPECT_EQ(back, f);
  }
}

// ---- 2. SELL structural invariants ------------------------------------------

TEST(SellInvariants, WindowSortSlotMapAndPads) {
  for (int fam = 0; fam < kFamilyCount; ++fam) {
    const auto a = family_graph(fam, 211 + static_cast<std::uint64_t>(fam));
    // A σ smaller than most test graphs so several windows exist.
    const index_t C = 4, sigma = 16;
    const auto s = SellCSigmaMatrix<double>::pattern_from_csr(a, C, sigma);
    ASSERT_EQ(s.rows(), a.rows()) << family_name(fam);
    ASSERT_EQ(s.nnz(), a.nnz()) << family_name(fam);
    const index_t lanes = s.chunks() * C;
    ASSERT_GE(lanes, a.rows());
    ASSERT_LT(lanes - a.rows(), C) << "only the last chunk may pad lanes";

    // Within every σ window lane lengths are non-increasing (pad lanes at
    // the very end read as length 0 and keep the property).
    for (index_t w = 0; w < lanes; w += sigma) {
      const index_t e = std::min<index_t>(w + sigma, lanes);
      for (index_t l = w + 1; l < e; ++l) {
        EXPECT_LE(s.lane_len()[static_cast<std::size_t>(l)],
                  s.lane_len()[static_cast<std::size_t>(l - 1)])
            << family_name(fam) << ": window sort violated at lane " << l;
      }
    }

    // Each live lane carries its row's true nnz; the lane→row map is a
    // bijection onto [0, n).
    std::vector<int> row_seen(static_cast<std::size_t>(a.rows()), 0);
    for (index_t l = 0; l < lanes; ++l) {
      const index_t row = s.row_of_lane()[static_cast<std::size_t>(l)];
      if (row < 0) {
        EXPECT_EQ(s.lane_len()[static_cast<std::size_t>(l)], 0);
        continue;
      }
      row_seen[static_cast<std::size_t>(row)]++;
      EXPECT_EQ(s.lane_len()[static_cast<std::size_t>(l)], a.row_nnz(row));
    }
    for (index_t i = 0; i < a.rows(); ++i) {
      ASSERT_EQ(row_seen[static_cast<std::size_t>(i)], 1) << family_name(fam);
    }

    // src() maps live slots bijectively onto [0, nnz) in depth order =
    // CSR intra-row order; pad slots are dead (src -1, col 0).
    std::vector<int> nnz_seen(static_cast<std::size_t>(a.nnz()), 0);
    for (index_t c = 0; c < s.chunks(); ++c) {
      const index_t base = s.chunk_ptr()[static_cast<std::size_t>(c)];
      const index_t width =
          (s.chunk_ptr()[static_cast<std::size_t>(c) + 1] - base) / C;
      for (index_t lane = 0; lane < C; ++lane) {
        const std::size_t gl = static_cast<std::size_t>(c * C + lane);
        const index_t row = s.row_of_lane()[gl];
        const index_t len = s.lane_len()[gl];
        for (index_t j = 0; j < width; ++j) {
          const std::size_t slot = static_cast<std::size_t>(base + j * C + lane);
          if (j < len) {
            const index_t e = s.src()[slot];
            ASSERT_EQ(e, a.row_begin(row) + j)
                << family_name(fam) << ": depth order must be CSR order";
            nnz_seen[static_cast<std::size_t>(e)]++;
            EXPECT_EQ(s.col()[slot],
                      a.col_idx()[static_cast<std::size_t>(e)]);
          } else {
            EXPECT_EQ(s.src()[slot], -1) << "pad slots must be dead";
            EXPECT_EQ(s.col()[slot], 0);
          }
        }
      }
    }
    for (index_t e = 0; e < a.nnz(); ++e) {
      ASSERT_EQ(nnz_seen[static_cast<std::size_t>(e)], 1)
          << family_name(fam) << ": src must cover nnz " << e << " once";
    }
  }
}

// ---- 3. SELL round trips ----------------------------------------------------

TEST(SellRoundTrip, AdversarialShapesAreLossless) {
  for (int fam = 0; fam < kFamilyCount; ++fam) {
    const auto a = family_graph(fam, 223 + static_cast<std::uint64_t>(fam));
    for (const auto& [C, sigma] : {std::pair<index_t, index_t>{8, 128},
                                  {4, 16},
                                  {8, 8},
                                  {3, 9}}) {
      const auto s = SellCSigmaMatrix<double>::from_csr(a, C, sigma);
      EXPECT_TRUE(csr_bits_equal(s.to_csr(), a))
          << family_name(fam) << " C=" << C << " sigma=" << sigma;
    }
  }
}

TEST(SellRoundTrip, EmptyAndAllEmptyRowMatrices) {
  {
    CooMatrix<double> coo;
    coo.n_rows = coo.n_cols = 0;
    const auto a = CsrMatrix<double>::from_coo(coo);
    const auto s = SellCSigmaMatrix<double>::from_csr(a);
    EXPECT_EQ(s.chunks(), 0);
    EXPECT_EQ(s.slots(), 0);
    EXPECT_TRUE(csr_bits_equal(s.to_csr(), a));
  }
  {
    CooMatrix<double> coo;
    coo.n_rows = coo.n_cols = 13;  // all rows empty, 13 % 8 != 0
    const auto a = CsrMatrix<double>::from_coo(coo);
    const auto s = SellCSigmaMatrix<double>::from_csr(a);
    EXPECT_EQ(s.nnz(), 0);
    EXPECT_EQ(s.slots(), 0) << "empty rows must not allocate slots";
    EXPECT_TRUE(csr_bits_equal(s.to_csr(), a));
  }
}

// ---- 4. BCSR round trips and convertibility ---------------------------------

TEST(BcsrRoundTrip, SortedGraphsAreLossless) {
  for (int fam = 0; fam < kFamilyCount; ++fam) {
    if (fam == kFamilyDuplicates) continue;
    const auto a = family_graph(fam, 227 + static_cast<std::uint64_t>(fam));
    for (const auto& [br, bc] : {std::pair<index_t, index_t>{4, 8},
                                {2, 2},
                                {1, 4},
                                {3, 5}}) {
      const auto b = BcsrMatrix<double>::from_csr(a, br, bc);
      ASSERT_TRUE(b.valid()) << family_name(fam) << " " << br << "x" << bc;
      EXPECT_GE(b.slots(), b.nnz());
      EXPECT_TRUE(csr_bits_equal(b.to_csr(), a))
          << family_name(fam) << " " << br << "x" << bc;
    }
  }
}

TEST(BcsrRoundTrip, DuplicateEntriesAreRejectedNotMerged) {
  const auto a = family_graph(kFamilyDuplicates, 229);
  // Sanity: the graph really has a duplicate column within some row.
  bool has_dup = false;
  for (index_t i = 0; i < a.rows() && !has_dup; ++i) {
    for (index_t e = a.row_begin(i) + 1; e < a.row_end(i); ++e) {
      has_dup |= a.col_at(e) == a.col_at(e - 1);
    }
  }
  ASSERT_TRUE(has_dup);
  const auto b = BcsrMatrix<double>::pattern_from_csr(a);
  EXPECT_FALSE(b.valid())
      << "a CSR with duplicate columns is not BCSR-representable";
}

TEST(BcsrRoundTrip, EmptyMatrix) {
  CooMatrix<double> coo;
  coo.n_rows = coo.n_cols = 9;
  const auto a = CsrMatrix<double>::from_coo(coo);
  const auto b = BcsrMatrix<double>::from_csr(a);
  ASSERT_TRUE(b.valid());
  EXPECT_EQ(b.blocks(), 0);
  EXPECT_TRUE(csr_bits_equal(b.to_csr(), a));
}

// ---- 5. the format axis of the equivalence sweep ----------------------------
// The blocked kernels promise bitwise identity with the scalar CSR kernels
// under a row-parallel schedule, so every comparison here is exact — any
// reassociation is a bug. Two sweeps:
//
//   * FormatEquivalence: each AGNN_FORMAT against the seed scalar path,
//     all families. Covers the dispatched kernels AND the fallbacks (BCSR
//     on duplicate rows, kAuto below its threshold).
//   * SellScheduleIndependence: AGNN_FORMAT=sell under every schedule
//     policy. The blocked paths own each output row in exactly one chunk,
//     so the schedule knob must not change a single bit — unlike the scalar
//     chunked policies, which reassociate split hub rows.

struct FormatSweepInputs {
  CsrMatrix<double> a;
  DenseMatrix<double> h, x;
  std::vector<double> s1, s2;
};

FormatSweepInputs make_format_inputs(int family) {
  FormatSweepInputs in;
  in.a = family_graph(family, 233 + static_cast<std::uint64_t>(family));
  const index_t n = in.a.rows();
  in.h = random_dense<double>(n, 5, 239);
  in.x = random_dense<double>(n, 4, 241);
  in.s1.resize(static_cast<std::size_t>(n));
  in.s2.resize(static_cast<std::size_t>(n));
  Rng rng(251);
  for (auto& v : in.s1) v = rng.next_uniform(-1, 1);
  for (auto& v : in.s2) v = rng.next_uniform(-1, 1);
  return in;
}

struct FormatSweepOutputs {
  DenseMatrix<double> spmm_out, va, gat;
  CsrMatrix<double> sddmm_out, sddmm_unw;
};

FormatSweepOutputs run_dispatched_kernels(const FormatSweepInputs& in) {
  FormatSweepOutputs o;
  spmm(in.a, in.h, o.spmm_out);
  sddmm(in.a, in.h, in.h, o.sddmm_out);
  sddmm_unweighted(in.a, in.h, in.h, o.sddmm_unw);
  fused_va_aggregate(in.a, in.h, in.x, o.va);
  fused_gat_aggregate<double>(in.a, in.s1, in.s2, 0.2, in.x, o.gat);
  return o;
}

void expect_outputs_bitwise(const FormatSweepOutputs& got,
                            const FormatSweepOutputs& ref) {
  EXPECT_TRUE(dense_bits_equal(got.spmm_out, ref.spmm_out)) << "spmm";
  EXPECT_TRUE(csr_bits_equal(got.sddmm_out, ref.sddmm_out)) << "sddmm";
  EXPECT_TRUE(csr_bits_equal(got.sddmm_unw, ref.sddmm_unw))
      << "sddmm_unweighted";
  EXPECT_TRUE(dense_bits_equal(got.va, ref.va)) << "fused_va_aggregate";
  EXPECT_TRUE(dense_bits_equal(got.gat, ref.gat)) << "fused_gat_aggregate";
}

class FormatEquivalence
    : public ::testing::TestWithParam<std::tuple<const char*, int>> {};

TEST_P(FormatEquivalence, DispatchedKernelsMatchScalarCsrBitwise) {
  const char* format = std::get<0>(GetParam());
  const auto in = make_format_inputs(std::get<1>(GetParam()));
  ScopedEnv pol("AGNN_SCHEDULE", "row");
  FormatSweepOutputs ref;
  {
    ScopedEnv fmt("AGNN_FORMAT", nullptr);
    ref = run_dispatched_kernels(in);
  }
  ScopedEnv fmt("AGNN_FORMAT", format);
  expect_outputs_bitwise(run_dispatched_kernels(in), ref);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FormatEquivalence,
    ::testing::Combine(::testing::Values("sell", "bcsr", "auto"),
                       ::testing::Range(0, static_cast<int>(kFamilyCount))),
    [](const ::testing::TestParamInfo<std::tuple<const char*, int>>& pi) {
      return std::string(std::get<0>(pi.param)) + "_" +
             family_name(std::get<1>(pi.param));
    });

class SellScheduleIndependence
    : public ::testing::TestWithParam<std::tuple<const char*, int>> {};

TEST_P(SellScheduleIndependence, ScheduleKnobNeverChangesBlockedResults) {
  const char* policy = std::get<0>(GetParam());
  const auto in = make_format_inputs(std::get<1>(GetParam()));
  FormatSweepOutputs ref;
  {
    ScopedEnv fmt("AGNN_FORMAT", nullptr);
    ScopedEnv pol("AGNN_SCHEDULE", "row");
    ref = run_dispatched_kernels(in);
  }
  ScopedEnv fmt("AGNN_FORMAT", "sell");
  ScopedEnv pol("AGNN_SCHEDULE", policy);
  ScopedEnv grain("AGNN_SCHEDULE_GRAIN", "8");
  expect_outputs_bitwise(run_dispatched_kernels(in), ref);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SellScheduleIndependence,
    ::testing::Combine(::testing::Values("row", "edge", "hybrid"),
                       ::testing::Range(0, static_cast<int>(kFamilyCount))),
    [](const ::testing::TestParamInfo<std::tuple<const char*, int>>& pi) {
      return std::string(std::get<0>(pi.param)) + "_" +
             family_name(std::get<1>(pi.param));
    });

// In-place value mutation between calls must be visible to the blocked
// paths: the cached conversion is pattern-only and values are read through
// src() from the live CSR array.
TEST(FormatEquivalence, ValueMutationStaysFresh) {
  auto a = family_graph(kFamilyKron, 257);
  const auto h = random_dense<double>(a.rows(), 6, 263);
  ScopedEnv fmt("AGNN_FORMAT", "sell");
  DenseMatrix<double> first;
  spmm(a, h, first);  // builds and caches the SELL conversion
  auto v = a.vals_mutable();
  Rng rng(269);
  for (auto& x : v) x = rng.next_uniform(-2.0, 2.0);
  DenseMatrix<double> got, want;
  spmm(a, h, got);  // cached pattern + new values
  {
    ScopedEnv off("AGNN_FORMAT", nullptr);
    spmm(a, h, want);
  }
  EXPECT_TRUE(dense_bits_equal(got, want))
      << "cached conversions must see vals_mutable() writes";
  EXPECT_FALSE(dense_bits_equal(got, first)) << "values really changed";
}

// ---- 6. the conversion caches on CsrMatrix ----------------------------------

TEST(FormatCache, ReusesAndTransfersOnCopy) {
  const auto a = family_graph(kFamilyStar, 271);
  const auto s1 = sell_for(a);
  const auto s2 = sell_for(a);
  EXPECT_EQ(s1.get(), s2.get()) << "second call must hit the cache";
  const auto b1 = bcsr_for(a);
  EXPECT_EQ(bcsr_for(a).get(), b1.get());
  const CsrMatrix<double> b = a;  // same pattern -> conversions stay valid
  EXPECT_EQ(b.cached_sell().get(), s1.get());
  EXPECT_EQ(b.cached_bcsr().get(), b1.get());
}

TEST(FormatCache, PatternRebuildInvalidates) {
  const auto a = family_graph(kFamilyStar, 277);
  CsrMatrix<double> t = a.transposed();
  const auto s = sell_for(t);
  ASSERT_NE(s.get(), nullptr);
  ASSERT_NE(t.cached_sell().get(), nullptr);
  a.transposed_into(t);  // rebuilds t's pattern in place
  EXPECT_EQ(t.cached_sell().get(), nullptr)
      << "an in-place pattern rebuild must drop the stale conversion";
  EXPECT_EQ(t.cached_bcsr().get(), nullptr);
}

// ---- 7. the kAuto threshold -------------------------------------------------

TEST(FormatAuto, SmallMatricesStayOnTheScalarPath) {
  ScopedEnv fmt("AGNN_FORMAT", "auto");
  const auto small = family_graph(kFamilyChain, 281);
  ASSERT_LT(small.nnz(), kFormatAutoMinNnz);
  EXPECT_EQ(detail::dispatch_format(small), SparseFormat::kCsr);
  const auto big = testing::random_sparse<double>(200, 0.5, 283);
  ASSERT_GE(big.nnz(), kFormatAutoMinNnz);
  EXPECT_EQ(detail::dispatch_format(big), SparseFormat::kSell);
}

TEST(FormatAuto, DegenerateMatricesStayOnTheScalarPath) {
  ScopedEnv fmt("AGNN_FORMAT", "sell");
  CooMatrix<double> coo;
  coo.n_rows = coo.n_cols = 5;
  const auto empty = CsrMatrix<double>::from_coo(coo);
  EXPECT_EQ(detail::dispatch_format(empty), SparseFormat::kCsr);
}

// ---- 8. upfront shape asserts (spmmm regression) ----------------------------
// A k-mismatch used to surface from the inner spmm/matmul with a message
// blaming the wrong kernel; the asserts now name spmmm itself.

bool message_names(const std::logic_error& e, const char* kernel) {
  return std::string(e.what()).find(kernel) != std::string::npos;
}

TEST(ShapeAsserts, SpmmmNamesItself) {
  const auto a = testing::random_sparse<double>(12, 0.3, 307);
  const auto h = random_dense<double>(12, 5, 311);
  const auto w_bad = random_dense<double>(6, 3, 313);  // h.cols() != w.rows()
  DenseMatrix<double> scratch, out;
  try {
    spmmm(a, h, w_bad, scratch, out);
    FAIL() << "expected a shape assert";
  } catch (const std::logic_error& e) {
    EXPECT_TRUE(message_names(e, "spmmm")) << e.what();
  }
  const auto h_bad = random_dense<double>(7, 5, 317);  // a.cols() != h.rows()
  const auto w = random_dense<double>(5, 3, 331);
  try {
    spmmm(a, h_bad, w, scratch, out);
    FAIL() << "expected a shape assert";
  } catch (const std::logic_error& e) {
    EXPECT_TRUE(message_names(e, "spmmm")) << e.what();
  }
  try {
    spmmm(a, h, w, out, out);  // aliased scratch
    FAIL() << "expected an alias assert";
  } catch (const std::logic_error& e) {
    EXPECT_TRUE(message_names(e, "spmmm")) << e.what();
  }
}

TEST(ShapeAsserts, AggregateAndMspmmValidateUpfront) {
  const auto a = testing::random_sparse<double>(12, 0.3, 337);
  const auto h_bad = random_dense<double>(7, 5, 347);
  DenseMatrix<double> out;
  try {
    aggregate(a, h_bad, Aggregation::kMin, out);
    FAIL() << "expected a shape assert";
  } catch (const std::logic_error& e) {
    EXPECT_TRUE(message_names(e, "aggregate")) << e.what();
  }
  const auto x = random_dense<double>(12, 4, 349);
  const auto y = random_dense<double>(12, 3, 353);
  DenseMatrix<double> scratch;
  try {
    mspmm(x, a, y, scratch, scratch);
    FAIL() << "expected an alias assert";
  } catch (const std::logic_error& e) {
    EXPECT_TRUE(message_names(e, "mspmm")) << e.what();
  }
}

}  // namespace
}  // namespace agnn
