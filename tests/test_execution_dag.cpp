// Tests for the execution-DAG fusion planner (Section 6.2 / Figure 5): the
// planner must fuse every virtual intermediate of every model's forward and
// backward DAG into an SDDMM-like kernel, and the memory estimator must
// quantify the n^2 -> nnz collapse.
#include <gtest/gtest.h>

#include "core/execution_dag.hpp"

namespace agnn::ir {
namespace {

// Find the node id with the given name.
int find(const ExecutionDag& dag, const std::string& name) {
  for (const auto& n : dag.nodes()) {
    if (n.name == name) return n.id;
  }
  ADD_FAILURE() << "node not found: " << name;
  return -1;
}

TEST(ExecutionDag, VaForwardFusesTheDotProductSampling) {
  const auto dag = build_va_forward();
  const auto plan = plan_fusions(dag);
  EXPECT_TRUE(plan.all_virtual_fused());
  ASSERT_EQ(plan.kernels.size(), 1u);
  // The fused kernel: H H^T (virtual) -> Psi (sparse sampling).
  const auto& k = plan.kernels.front();
  ASSERT_EQ(k.path.size(), 2u);
  EXPECT_EQ(k.path[0], find(dag, "H H^T"));
  EXPECT_EQ(k.terminal(), find(dag, "Psi = A .* HH^T"));
  EXPECT_EQ(dag.node(k.terminal()).producer, OpClass::kSDDMM);
}

TEST(ExecutionDag, VaBackwardFusesTheNComputation) {
  const auto dag = build_va_backward();
  const auto plan = plan_fusions(dag);
  EXPECT_TRUE(plan.all_virtual_fused());
  ASSERT_EQ(plan.kernels.size(), 1u);
  EXPECT_EQ(plan.kernels.front().terminal(), find(dag, "N = A .* MH^T"));
}

TEST(ExecutionDag, AgnnForwardFusesBothVirtualChains) {
  const auto dag = build_agnn_forward();
  const auto plan = plan_fusions(dag);
  EXPECT_TRUE(plan.all_virtual_fused());
  // Two virtual chains (H H^T and n n^T) merge into the cosine division;
  // both end at the same sparse sampling node.
  ASSERT_EQ(plan.kernels.size(), 2u);
  for (const auto& k : plan.kernels) {
    EXPECT_EQ(k.terminal(), find(dag, "Psi = A .* cos"));
  }
}

TEST(ExecutionDag, GatForwardFusesTheRankOneChain) {
  const auto dag = build_gat_forward();
  const auto plan = plan_fusions(dag);
  EXPECT_TRUE(plan.all_virtual_fused());
  ASSERT_EQ(plan.kernels.size(), 1u);
  const auto& k = plan.kernels.front();
  // C -> LeakyReLU(C) -> E: a three-node fused chain, matching the fused
  // psi_gat kernel which computes LeakyReLU(s1_i + s2_j) per edge.
  ASSERT_EQ(k.path.size(), 3u);
  EXPECT_EQ(k.path[0], find(dag, "C = s1 1^T + 1 s2^T"));
  EXPECT_EQ(k.path[1], find(dag, "LeakyReLU(C)"));
  EXPECT_EQ(k.terminal(), find(dag, "E = A .* LeakyReLU(C)"));
}

TEST(ExecutionDag, GatBackwardFusesTheDPsiSampling) {
  const auto dag = build_gat_backward();
  const auto plan = plan_fusions(dag);
  EXPECT_TRUE(plan.all_virtual_fused());
  ASSERT_EQ(plan.kernels.size(), 1u);
  EXPECT_EQ(plan.kernels.front().terminal(),
            find(dag, "dPsi = pattern(A) .* GH'^T"));
}

TEST(ExecutionDag, GcnHasNoVirtualIntermediates) {
  const auto dag = build_gcn_forward();
  const auto plan = plan_fusions(dag);
  EXPECT_TRUE(plan.kernels.empty());
  EXPECT_TRUE(plan.all_virtual_fused());
}

TEST(ExecutionDag, PlannerFlagsUnfusableVirtuals) {
  // A virtual matrix consumed by a dense op (no sparse sampling anywhere):
  // the planner must refuse, because executing this DAG would materialize
  // an n x n dense tensor.
  ExecutionDag dag("bad");
  const int h = dag.add_input("H", TensorClass::kDenseTall);
  const int hx = dag.add_op("H H^T", TensorClass::kVirtualDense, OpClass::kMatMul,
                            {h, h});
  dag.add_op("sum rows", TensorClass::kDenseTall, OpClass::kRowReduce, {hx});
  const auto plan = plan_fusions(dag);
  EXPECT_FALSE(plan.all_virtual_fused());
  ASSERT_EQ(plan.unfused_virtual.size(), 1u);
  EXPECT_EQ(plan.unfused_virtual.front(), hx);
}

TEST(ExecutionDag, InvalidInputReferenceThrows) {
  ExecutionDag dag("bad");
  EXPECT_THROW(dag.add_op("x", TensorClass::kDenseTall, OpClass::kMatMul, {42}),
               std::logic_error);
}

TEST(ExecutionDag, ConsumersAreTracked) {
  const auto dag = build_va_forward();
  const int h = find(dag, "H");
  const auto cons = dag.consumers(h);
  // H feeds: H H^T (as both operands, counted once) and Psi H.
  EXPECT_EQ(cons.size(), 2u);
}

class MemoryEstimateSweep
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(MemoryEstimateSweep, FusionCollapsesQuadraticTerm) {
  const auto [n, k, nnz] = GetParam();
  using Builder = ExecutionDag (*)();
  for (const Builder dag_builder :
       {Builder{&build_va_forward}, Builder{&build_agnn_forward},
        Builder{&build_gat_forward}}) {
    const auto dag = dag_builder();
    const auto est = estimate_memory(dag, n, k, nnz);
    // Unfused must carry at least one n^2 term; fused must not.
    EXPECT_GE(est.unfused_bytes, n * n * 4) << dag.name();
    EXPECT_LT(est.fused_bytes, est.unfused_bytes) << dag.name();
    // For n >> k and sparse graphs the saving is dramatic.
    if (n >= 1e4 && nnz <= n * 100) {
      EXPECT_GT(est.saving_factor(), 10.0) << dag.name();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MemoryEstimateSweep,
                         ::testing::Values(std::tuple{1e3, 16.0, 1e4},
                                           std::tuple{1e4, 16.0, 1e5},
                                           std::tuple{1e6, 128.0, 1e7}));

TEST(ExecutionDag, MemoryEstimateMatchesHandCount) {
  // VA forward: A (nnz) + H (nk) + W (k^2) + HH^T (n^2 virtual) +
  // Psi (nnz) + PsiH (nk) + Z (nk).
  const auto dag = build_va_forward();
  const double n = 100, k = 4, nnz = 500, b = 4;
  const auto est = estimate_memory(dag, n, k, nnz, b);
  const double expected_unfused =
      b * (nnz + n * k + k * k + n * n + nnz + n * k + n * k);
  EXPECT_DOUBLE_EQ(est.unfused_bytes, expected_unfused);
  EXPECT_DOUBLE_EQ(est.fused_bytes, expected_unfused - b * n * n);
}

}  // namespace
}  // namespace agnn::ir
