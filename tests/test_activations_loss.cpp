// Tests for the activation functions (and their derivatives) and the losses
// bootstrapping the backward recursion.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>

#include "core/activations.hpp"
#include "core/loss.hpp"
#include "test_utils.hpp"

namespace agnn {
namespace {

class ActivationSweep : public ::testing::TestWithParam<Activation> {};

TEST_P(ActivationSweep, DerivativeMatchesFiniteDifference) {
  const Activation act = GetParam();
  const double eps = 1e-6;
  // Probe points away from the ReLU kink.
  for (double z : {-2.0, -0.7, -0.1, 0.1, 0.9, 3.0}) {
    const double numeric = (apply_activation(act, z + eps) -
                            apply_activation(act, z - eps)) / (2 * eps);
    EXPECT_NEAR(activation_derivative(act, z), numeric, 1e-6)
        << to_string(act) << " at z=" << z;
  }
}

INSTANTIATE_TEST_SUITE_P(AllActivations, ActivationSweep,
                         ::testing::Values(Activation::kIdentity, Activation::kRelu,
                                           Activation::kLeakyRelu, Activation::kTanh,
                                           Activation::kSigmoid));

TEST(Activations, ReluClampsNegative) {
  EXPECT_DOUBLE_EQ(apply_activation(Activation::kRelu, -3.0), 0.0);
  EXPECT_DOUBLE_EQ(apply_activation(Activation::kRelu, 3.0), 3.0);
}

TEST(Activations, LeakyReluSlope) {
  EXPECT_DOUBLE_EQ(apply_activation(Activation::kLeakyRelu, -2.0, 0.1), -0.2);
  EXPECT_DOUBLE_EQ(apply_activation(Activation::kLeakyRelu, 2.0, 0.1), 2.0);
}

TEST(Activations, ActivateMatrixElementwise) {
  DenseMatrix<double> z(2, 2, std::vector<double>{-1.0, 0.5, 2.0, -0.25});
  const auto h = activate(Activation::kRelu, z);
  EXPECT_DOUBLE_EQ(h(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(h(0, 1), 0.5);
  EXPECT_DOUBLE_EQ(h(1, 0), 2.0);
  EXPECT_DOUBLE_EQ(h(1, 1), 0.0);
}

TEST(Activations, BackwardAppliesChainRule) {
  DenseMatrix<double> z(1, 3, std::vector<double>{-1.0, 1.0, 2.0});
  DenseMatrix<double> gamma(1, 3, std::vector<double>{10.0, 20.0, 30.0});
  const auto g = activation_backward(Activation::kRelu, z, gamma);
  EXPECT_DOUBLE_EQ(g(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(g(0, 1), 20.0);
  EXPECT_DOUBLE_EQ(g(0, 2), 30.0);
}

TEST(Loss, CrossEntropyUniformLogitsIsLogC) {
  const index_t n = 5, c = 4;
  DenseMatrix<double> h(n, c, 0.0);
  std::vector<index_t> labels(static_cast<std::size_t>(n), 1);
  const auto res = softmax_cross_entropy<double>(h, labels);
  EXPECT_NEAR(res.value, std::log(static_cast<double>(c)), 1e-12);
}

TEST(Loss, CrossEntropyPerfectPredictionNearZero) {
  DenseMatrix<double> h(2, 3, 0.0);
  h(0, 1) = 100.0;
  h(1, 2) = 100.0;
  std::vector<index_t> labels{1, 2};
  const auto res = softmax_cross_entropy<double>(h, labels);
  EXPECT_NEAR(res.value, 0.0, 1e-9);
}

TEST(Loss, CrossEntropyGradientMatchesFiniteDifference) {
  auto h = testing::random_dense<double>(6, 4, 77);
  std::vector<index_t> labels{0, 1, 2, 3, 1, 2};
  const auto res = softmax_cross_entropy<double>(h, labels);
  const double eps = 1e-6;
  for (index_t i = 0; i < h.size(); ++i) {
    const double saved = h.data()[i];
    h.data()[i] = saved + eps;
    const double lp = softmax_cross_entropy<double>(h, labels).value;
    h.data()[i] = saved - eps;
    const double lm = softmax_cross_entropy<double>(h, labels).value;
    h.data()[i] = saved;
    EXPECT_NEAR(res.grad.data()[i], (lp - lm) / (2 * eps), 1e-7);
  }
}

TEST(Loss, CrossEntropyMaskExcludesVertices) {
  auto h = testing::random_dense<double>(4, 3, 79);
  std::vector<index_t> labels{0, 1, 2, 0};
  std::vector<std::uint8_t> mask{true, false, true, false};
  const auto res = softmax_cross_entropy<double>(h, labels, mask);
  // Masked rows contribute zero gradient.
  for (index_t j = 0; j < 3; ++j) {
    EXPECT_DOUBLE_EQ(res.grad(1, j), 0.0);
    EXPECT_DOUBLE_EQ(res.grad(3, j), 0.0);
  }
  // Value equals the mean over the two active rows.
  double manual = 0;
  for (index_t i : {index_t(0), index_t(2)}) {
    double mx = h(i, 0);
    for (index_t j = 1; j < 3; ++j) mx = std::max(mx, h(i, j));
    double sum = 0;
    for (index_t j = 0; j < 3; ++j) sum += std::exp(h(i, j) - mx);
    manual += std::log(sum) + mx - h(i, labels[static_cast<std::size_t>(i)]);
  }
  EXPECT_NEAR(res.value, manual / 2.0, 1e-12);
}

TEST(Loss, CrossEntropyExplicitNormalizer) {
  auto h = testing::random_dense<double>(4, 3, 81);
  std::vector<index_t> labels{0, 1, 2, 0};
  const auto res_auto = softmax_cross_entropy<double>(h, labels);
  const auto res_scaled = softmax_cross_entropy<double>(h, labels, {}, 8);
  EXPECT_NEAR(res_scaled.value, res_auto.value / 2.0, 1e-12);
  EXPECT_NEAR(res_scaled.grad(0, 0), res_auto.grad(0, 0) / 2.0, 1e-12);
}

// The parallel loss reduction sums explicit per-thread partials in
// thread-index order over a static row partition, so repeated evaluations
// of the same batch are bitwise identical — not merely close.
TEST(Loss, CrossEntropyRepeatedRunsBitwiseIdentical) {
  const auto h = testing::random_dense<double>(257, 7, 83);
  std::vector<index_t> labels(257);
  Rng rng(89);
  for (auto& l : labels) l = static_cast<index_t>(rng.next_bounded(7));
  const auto first = softmax_cross_entropy<double>(h, labels);
  for (int rep = 0; rep < 4; ++rep) {
    const auto again = softmax_cross_entropy<double>(h, labels);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(first.value),
              std::bit_cast<std::uint64_t>(again.value))
        << "loss value drifted on repeat " << rep;
  }
}

TEST(Loss, MseKnownValue) {
  DenseMatrix<double> h(2, 1, std::vector<double>{1.0, 3.0});
  DenseMatrix<double> y(2, 1, std::vector<double>{0.0, 1.0});
  const auto res = mse_loss(h, y);
  // (0.5*1 + 0.5*4) / 2 = 1.25
  EXPECT_DOUBLE_EQ(res.value, 1.25);
  EXPECT_DOUBLE_EQ(res.grad(0, 0), 0.5);
  EXPECT_DOUBLE_EQ(res.grad(1, 0), 1.0);
}

TEST(Loss, ArgmaxAndAccuracy) {
  DenseMatrix<double> h(3, 3, 0.0);
  h(0, 2) = 1.0;
  h(1, 0) = 1.0;
  h(2, 1) = 1.0;
  const auto pred = argmax_rows(h);
  EXPECT_EQ(pred, (std::vector<index_t>{2, 0, 1}));
  std::vector<index_t> labels{2, 0, 0};
  EXPECT_NEAR(accuracy(h, labels), 2.0 / 3.0, 1e-12);
  std::vector<std::uint8_t> mask{true, true, false};
  EXPECT_NEAR(accuracy(h, labels, mask), 1.0, 1e-12);
}

}  // namespace
}  // namespace agnn
