// The closed-form volume predictions must match the engines' measured
// volumes EXACTLY (byte-for-byte) — the strongest possible check that the
// implementation realizes the Section 7 communication scheme and nothing
// more.
#include <gtest/gtest.h>

#include "baseline/dist_local_engine.hpp"
#include "comm/communicator.hpp"
#include "core/model.hpp"
#include "dist/dist_1d_engine.hpp"
#include "dist/dist_engine.hpp"
#include "dist/dist_summa_engine.hpp"
#include "dist/volume_model.hpp"
#include "graph/graph.hpp"
#include "test_utils.hpp"

namespace agnn::dist {
namespace {

GnnConfig config_for(ModelKind kind, index_t k, int layers) {
  GnnConfig cfg;
  cfg.kind = kind;
  cfg.in_features = k;
  cfg.layer_widths.assign(static_cast<std::size_t>(layers), k);
  cfg.seed = 1;
  return cfg;
}

struct VolumeCase {
  ModelKind kind;
  int ranks;
  index_t n;  // divisible by sqrt(ranks) for exactness
  index_t k;
  int layers;
};

class ExactVolumeSweep : public ::testing::TestWithParam<VolumeCase> {};

TEST_P(ExactVolumeSweep, GlobalEngineMatchesClosedFormExactly) {
  const auto& p = GetParam();
  const auto g = testing::small_graph<double>(p.n, 6 * p.n, 7);
  const CsrMatrix<double> adj =
      p.kind == ModelKind::kGCN ? graph::sym_normalize(g.adj) : g.adj;
  const auto x = testing::random_dense<double>(p.n, p.k, 9);

  const auto stats = comm::SpmdRuntime::run(p.ranks, [&](comm::Communicator& world) {
    GnnModel<double> model(config_for(p.kind, p.k, p.layers));
    DistGnnEngine<double> engine(world, adj, model);
    comm::reset_all_stats(world);
    engine.forward(x, nullptr);
  });
  const double predicted_bytes =
      p.layers * predicted_global_forward_words(p.kind, p.n, p.k, p.ranks) *
      sizeof(double);
  // Diagonal grid ranks are their own transpose partner, so their block
  // exchanges are free; the prediction is exact for the max (off-diagonal)
  // rank when n divides evenly.
  EXPECT_EQ(static_cast<double>(comm::max_bytes_sent(stats)), predicted_bytes)
      << to_string(p.kind) << " p=" << p.ranks;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ExactVolumeSweep,
    ::testing::Values(VolumeCase{ModelKind::kGCN, 4, 32, 4, 2},
                      VolumeCase{ModelKind::kVA, 4, 32, 4, 2},
                      VolumeCase{ModelKind::kVA, 9, 36, 8, 1},
                      VolumeCase{ModelKind::kAGNN, 4, 32, 4, 2},
                      VolumeCase{ModelKind::kAGNN, 16, 32, 4, 3},
                      VolumeCase{ModelKind::kGAT, 4, 32, 4, 2},
                      VolumeCase{ModelKind::kGAT, 9, 36, 8, 1},
                      VolumeCase{ModelKind::kGIN, 4, 32, 4, 2},
                      VolumeCase{ModelKind::kGIN, 9, 36, 3, 2},
                      VolumeCase{ModelKind::kGCN, 16, 64, 8, 3}),
    [](const auto& info) {
      return std::string(to_string(info.param.kind)) + "_p" +
             std::to_string(info.param.ranks) + "_n" + std::to_string(info.param.n) +
             "_k" + std::to_string(info.param.k) + "_L" +
             std::to_string(info.param.layers);
    });

TEST(VolumeModel, SingleRankIsFree) {
  EXPECT_EQ(predicted_global_forward_words(ModelKind::kGAT, 100, 16, 1), 0.0);
  EXPECT_EQ(predicted_1d_forward_words(100, 16, 1, ModelKind::kGAT), 0.0);
  EXPECT_EQ(predicted_summa_forward_words(ModelKind::kGAT, 100, 16,
                                          GridShape{DistPolicy::k2D, 1, 1, 1}),
            0.0);
}

// The per-rank protocol replay must match the SUMMA engines byte-for-byte
// on every family shape — including the rectangular, prime, and
// depth-replicated grids, with a vertex count (23) nothing divides.
TEST(VolumeModel, SummaFamilyMatchesMeasuredExactly) {
  const index_t n = 23, k = 4;
  const int layers = 2;
  const auto g = testing::small_graph<double>(n, 5 * n, 123);
  const auto x = testing::random_dense<double>(n, k, 13);
  const GridShape shapes[] = {
      {DistPolicy::k2D, 2, 2, 1}, {DistPolicy::k2D, 3, 2, 1},
      {DistPolicy::k2D, 2, 3, 1}, {DistPolicy::k2D, 3, 1, 1},
      {DistPolicy::k2D, 1, 3, 1}, {DistPolicy::k3D, 3, 2, 2},
      {DistPolicy::k3D, 2, 2, 2}, {DistPolicy::k3D, 2, 1, 4},
  };
  for (const ModelKind kind : {ModelKind::kGCN, ModelKind::kGIN, ModelKind::kVA,
                               ModelKind::kAGNN, ModelKind::kGAT}) {
    const CsrMatrix<double> adj =
        kind == ModelKind::kGCN ? graph::sym_normalize(g.adj) : g.adj;
    for (const GridShape& shape : shapes) {
      const auto stats =
          comm::SpmdRuntime::run(shape.size(), [&](comm::Communicator& world) {
            GnnModel<double> model(config_for(kind, k, layers));
            DistSummaEngine<double> engine(world, adj, model, shape);
            comm::reset_all_stats(world);
            engine.forward(x, nullptr);
          });
      const double predicted_bytes =
          layers * predicted_summa_forward_words(kind, n, k, shape) *
          sizeof(double);
      EXPECT_EQ(static_cast<double>(comm::max_bytes_sent(stats)),
                predicted_bytes)
          << to_string(kind) << " " << shape.describe();
    }
  }
}

// Same byte-exactness for the 1D row-block engine, whose only volume is the
// parameter broadcast plus the per-layer allgather.
TEST(VolumeModel, OneDMatchesMeasuredExactly) {
  const index_t n = 23, k = 4;
  const int layers = 2;
  const auto g = testing::small_graph<double>(n, 5 * n, 123);
  const auto x = testing::random_dense<double>(n, k, 13);
  for (const ModelKind kind : {ModelKind::kGCN, ModelKind::kGIN, ModelKind::kVA,
                               ModelKind::kAGNN, ModelKind::kGAT}) {
    const CsrMatrix<double> adj =
        kind == ModelKind::kGCN ? graph::sym_normalize(g.adj) : g.adj;
    for (const int p : {2, 3, 5}) {
      const auto stats =
          comm::SpmdRuntime::run(p, [&](comm::Communicator& world) {
            GnnModel<double> model(config_for(kind, k, layers));
            Dist1dGlobalEngine<double> engine(world, adj, model);
            comm::reset_all_stats(world);
            engine.forward(x, nullptr);
          });
      const double predicted_bytes =
          layers * predicted_1d_forward_words(n, k, p, kind) * sizeof(double);
      EXPECT_EQ(static_cast<double>(comm::max_bytes_sent(stats)),
                predicted_bytes)
          << to_string(kind) << " p=" << p;
    }
  }
}

// The policy dispatcher must agree with the per-family replays it routes to.
TEST(VolumeModel, PolicyDispatchMatchesFamilyReplays) {
  const index_t n = 96, k = 8;
  EXPECT_EQ(predicted_policy_forward_words(DistPolicy::k1D, ModelKind::kVA, n,
                                           k, 6),
            predicted_1d_forward_words(n, k, 6, ModelKind::kVA));
  EXPECT_EQ(predicted_policy_forward_words(DistPolicy::k1_5D, ModelKind::kGAT,
                                           n, k, 9),
            predicted_global_forward_words(ModelKind::kGAT, n, k, 9));
  EXPECT_EQ(predicted_policy_forward_words(DistPolicy::k2D, ModelKind::kGIN, n,
                                           k, 6),
            predicted_summa_forward_words(ModelKind::kGIN, n, k,
                                          grid_for(DistPolicy::k2D, 6)));
  EXPECT_EQ(
      predicted_policy_forward_words(DistPolicy::k3D, ModelKind::kAGNN, n, k,
                                     8, /*depth_hint=*/2),
      predicted_summa_forward_words(ModelKind::kAGNN, n, k,
                                    grid_for(DistPolicy::k3D, 8, 2)));
}

// Every family member's exact replay must stay within a fixed constant of
// its closed-form asymptotic bound across a sweep — the policy-generalized
// Section 7.1 statement.
TEST(VolumeModel, PolicyBoundsDominateAsConstantFactor) {
  for (const index_t n : {64, 256, 1024}) {
    for (const index_t k : {4, 16, 64}) {
      for (const int p : {4, 6, 16, 24, 64}) {
        for (const ModelKind kind : {ModelKind::kVA, ModelKind::kAGNN,
                                     ModelKind::kGAT, ModelKind::kGCN,
                                     ModelKind::kGIN}) {
          for (const DistPolicy policy :
               {DistPolicy::k1D, DistPolicy::k1_5D, DistPolicy::k2D,
                DistPolicy::k3D}) {
            if (!policy_accepts(policy, p)) continue;
            const double exact =
                predicted_policy_forward_words(policy, kind, n, k, p);
            const double bound = policy_bound_words(policy, n, k, p);
            EXPECT_LT(exact, 7.0 * bound)
                << to_string(policy) << " " << to_string(kind) << " n=" << n
                << " k=" << k << " p=" << p;
          }
        }
      }
    }
  }
}

// The asymptotic ladder: at a fixed rank count, each richer member's bound
// is no worse than the one below it (1D >= 1.5D on squares; 2D >= 3D).
TEST(VolumeModel, FamilyBoundsFormALadder) {
  const index_t n = 4096, k = 32;
  for (const int p : {16, 64}) {
    const double b1 = policy_bound_words(DistPolicy::k1D, n, k, p);
    const double b15 = policy_bound_words(DistPolicy::k1_5D, n, k, p);
    const double b2 = policy_bound_words(DistPolicy::k2D, n, k, p);
    const double b3 = policy_bound_words(DistPolicy::k3D, n, k, p, 2);
    EXPECT_GE(b1, b15) << p;
    EXPECT_GE(b1, b2) << p;
    EXPECT_GE(b2, b3) << p;
  }
}

TEST(VolumeModel, Section7BoundDominatesAsConstantFactor) {
  // The engine's exact volume must stay within a fixed constant of the
  // Section 7 bound across a sweep of (n, k, p).
  for (const index_t n : {64, 256, 1024}) {
    for (const index_t k : {4, 16, 64}) {
      for (const int p : {4, 16, 64}) {
        for (const ModelKind kind : {ModelKind::kVA, ModelKind::kAGNN,
                                     ModelKind::kGAT, ModelKind::kGCN,
                                     ModelKind::kGIN}) {
          const double exact = predicted_global_forward_words(kind, n, k, p);
          const double bound = section7_bound_words(n, k, p);
          EXPECT_LT(exact, 7.0 * bound)
              << to_string(kind) << " n=" << n << " k=" << k << " p=" << p;
        }
      }
    }
  }
}

TEST(VolumeModel, LocalEnginePredictionMatchesMeasuredExactly) {
  const index_t n = 36, k = 8;
  const auto g = testing::small_graph<double>(n, 250, 13);
  const auto x = testing::random_dense<double>(n, k, 15);
  for (const int ranks : {2, 3, 4}) {
    for (const ModelKind kind : {ModelKind::kGCN, ModelKind::kVA, ModelKind::kGAT}) {
      const CsrMatrix<double> adj =
          kind == ModelKind::kGCN ? graph::sym_normalize(g.adj) : g.adj;
      const auto stats =
          comm::SpmdRuntime::run(ranks, [&](comm::Communicator& world) {
            GnnModel<double> model(config_for(kind, k, 1));
            baseline::DistLocalEngine<double> engine(world, adj, model);
            comm::reset_all_stats(world);
            engine.forward(x, nullptr);
          });
      const double predicted = predicted_local_forward_bytes(
          adj, ranks, k, /*has_attention_vector=*/kind == ModelKind::kGAT);
      EXPECT_EQ(static_cast<double>(comm::max_bytes_sent(stats)), predicted)
          << to_string(kind) << " p=" << ranks;
    }
  }
}

TEST(VolumeModel, GlobalScalesDownLocalDoesNot) {
  // As p grows at fixed n, the global per-rank prediction shrinks ~1/sqrt(p)
  // while the dense-graph local prediction stays ~n*k.
  const index_t n = 144, k = 16;
  const double g4 = predicted_global_forward_words(ModelKind::kVA, n, k, 4);
  const double g16 = predicted_global_forward_words(ModelKind::kVA, n, k, 16);
  const double g144 = predicted_global_forward_words(ModelKind::kVA, n, k, 144);
  EXPECT_GT(g4, 1.8 * g16);
  EXPECT_GT(g16, 2.0 * g144);
}

}  // namespace
}  // namespace agnn::dist
