// The core equivalence claim of the paper's Section 4: the GLOBAL tensor
// formulations compute exactly what the established LOCAL (message-passing)
// formulations compute. Every model's global-formulation layer is checked
// against the per-edge local engine, in inference and training mode, across
// graph shapes, feature widths, and layer counts.
#include <gtest/gtest.h>

#include "baseline/local_engine.hpp"
#include "core/model.hpp"
#include "graph/graph.hpp"
#include "test_utils.hpp"

namespace agnn {
namespace {

struct ForwardCase {
  ModelKind kind;
  index_t n;
  index_t m;
  index_t k;
  int layers;
};

class GlobalVsLocalSweep : public ::testing::TestWithParam<ForwardCase> {};

TEST_P(GlobalVsLocalSweep, GlobalFormulationMatchesLocalFormulation) {
  const auto& p = GetParam();
  const auto g = testing::small_graph<double>(p.n, p.m, 1234 + p.n);
  GnnConfig cfg;
  cfg.kind = p.kind;
  cfg.in_features = p.k;
  cfg.layer_widths.assign(static_cast<std::size_t>(p.layers), p.k);
  cfg.hidden_activation = Activation::kRelu;
  cfg.seed = 99;
  GnnModel<double> model(cfg);
  const auto x = testing::random_dense<double>(p.n, p.k, 4321);

  const CsrMatrix<double> adj =
      p.kind == ModelKind::kGCN ? graph::sym_normalize(g.adj) : g.adj;
  const auto h_global = model.infer(adj, x);
  const auto h_local = baseline::local_infer(model, adj, x);
  testing::expect_matrix_near(h_global, h_local, 1e-8, to_string(p.kind));
}

TEST_P(GlobalVsLocalSweep, TrainingModeForwardMatchesInference) {
  const auto& p = GetParam();
  const auto g = testing::small_graph<double>(p.n, p.m, 777 + p.n);
  GnnConfig cfg;
  cfg.kind = p.kind;
  cfg.in_features = p.k;
  cfg.layer_widths.assign(static_cast<std::size_t>(p.layers), p.k);
  cfg.seed = 5;
  GnnModel<double> model(cfg);
  const auto x = testing::random_dense<double>(p.n, p.k, 6);
  const CsrMatrix<double> adj =
      p.kind == ModelKind::kGCN ? graph::sym_normalize(g.adj) : g.adj;

  std::vector<LayerCache<double>> caches;
  const auto h_train = model.forward(adj, x, caches);
  const auto h_infer = model.infer(adj, x);
  testing::expect_matrix_near(h_train, h_infer, 1e-9, "train vs infer");
  ASSERT_EQ(caches.size(), static_cast<std::size_t>(p.layers));
  for (const auto& cache : caches) {
    EXPECT_EQ(cache.z.rows(), p.n);
    EXPECT_EQ(cache.h_in.rows(), p.n);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Models, GlobalVsLocalSweep,
    ::testing::Values(ForwardCase{ModelKind::kVA, 30, 150, 8, 2},
                      ForwardCase{ModelKind::kVA, 50, 400, 16, 3},
                      ForwardCase{ModelKind::kAGNN, 30, 150, 8, 2},
                      ForwardCase{ModelKind::kAGNN, 50, 400, 16, 3},
                      ForwardCase{ModelKind::kGAT, 30, 150, 8, 2},
                      ForwardCase{ModelKind::kGAT, 50, 400, 16, 3},
                      ForwardCase{ModelKind::kGCN, 30, 150, 8, 2},
                      ForwardCase{ModelKind::kGCN, 50, 400, 16, 3},
                      ForwardCase{ModelKind::kGIN, 30, 150, 8, 2},
                      ForwardCase{ModelKind::kGIN, 50, 400, 16, 3},
                      ForwardCase{ModelKind::kGAT, 12, 40, 4, 4},
                      ForwardCase{ModelKind::kVA, 12, 40, 4, 1}),
    [](const auto& info) {
      return std::string(to_string(info.param.kind)) + "_n" +
             std::to_string(info.param.n) + "_k" + std::to_string(info.param.k) +
             "_L" + std::to_string(info.param.layers);
    });

TEST(ModelsForward, LayerRejectsWrongFeatureWidth) {
  const auto g = testing::small_graph<double>(10, 40, 1);
  GnnConfig cfg;
  cfg.kind = ModelKind::kVA;
  cfg.in_features = 8;
  cfg.layer_widths = {8};
  GnnModel<double> model(cfg);
  const auto x = testing::random_dense<double>(10, 5, 2);  // wrong width
  EXPECT_THROW(model.infer(g.adj, x), std::logic_error);
}

TEST(ModelsForward, DifferentWidthsAcrossLayers) {
  const auto g = testing::small_graph<double>(20, 80, 3);
  GnnConfig cfg;
  cfg.kind = ModelKind::kGAT;
  cfg.in_features = 12;
  cfg.layer_widths = {8, 6, 4};
  GnnModel<double> model(cfg);
  const auto x = testing::random_dense<double>(20, 12, 4);
  const auto h = model.infer(g.adj, x);
  EXPECT_EQ(h.rows(), 20);
  EXPECT_EQ(h.cols(), 4);
  // Cross-check against the local engine on a non-square width stack too.
  const auto h_local = baseline::local_infer(model, g.adj, x);
  testing::expect_matrix_near(h, h_local, 1e-8, "GAT widths");
}

TEST(ModelsForward, GcnEqualsVaWithConstantAttentionWeights) {
  // Sanity link between the model families: with H H^T == all-ones (H a
  // single constant column), VA's Psi collapses to A itself, so VA == GCN
  // when GCN runs on the raw (unnormalized) adjacency.
  const auto g = testing::small_graph<double>(15, 60, 7);
  GnnConfig cfg;
  cfg.kind = ModelKind::kVA;
  cfg.in_features = 1;
  cfg.layer_widths = {1};
  cfg.output_activation = Activation::kIdentity;
  cfg.seed = 11;
  GnnModel<double> va(cfg);
  cfg.kind = ModelKind::kGCN;
  GnnModel<double> gcn(cfg);
  // Same seed -> same W.
  ASSERT_EQ(va.layer(0).weights(), gcn.layer(0).weights());
  DenseMatrix<double> x(15, 1, 1.0);  // h_i = 1 -> <h_i, h_j> = 1
  testing::expect_matrix_near(va.infer(g.adj, x), gcn.infer(g.adj, x), 1e-9,
                              "VA == GCN for constant features");
}

TEST(ModelsForward, GatAttentionIsInvariantToUniformScoreShift) {
  // Adding a constant to every attention logit leaves softmax unchanged —
  // shift s2 by a constant and the output must not move.
  const auto gph = testing::small_graph<double>(18, 70, 13);
  GnnConfig cfg;
  cfg.kind = ModelKind::kGAT;
  cfg.in_features = 6;
  cfg.layer_widths = {6};
  cfg.attention_slope = 1.0;  // linear "LeakyReLU" so the shift is exact
  GnnModel<double> model(cfg);
  const auto x = testing::random_dense<double>(18, 6, 14);
  const auto h1 = model.infer(gph.adj, x);
  // Shift: fold a constant into s2 by adding c * (H' pseudo-inverse)... the
  // clean way: recompute via the fused kernel directly.
  const auto& layer = model.layer(0);
  const auto hp = matmul(x, layer.weights());
  const std::span<const double> a_all(layer.attention_params());
  const auto a1 = a_all.subspan(0, 6);
  const auto a2 = a_all.subspan(6);
  std::vector<double> s1 = matvec(hp, a1);
  std::vector<double> s2 = matvec(hp, a2);
  auto psi_base = psi_gat<double>(gph.adj, s1, s2, 1.0);
  for (auto& v : s2) v += 3.25;
  for (auto& v : s1) v -= 3.25;
  auto psi_shift = psi_gat<double>(gph.adj, s1, s2, 1.0);
  testing::expect_sparse_near(psi_base.psi, psi_shift.psi, 1e-9, "shift invariance");
  (void)h1;
}

}  // namespace
}  // namespace agnn
