// Concurrency stress for the serving layer — the suite the sanitizer matrix
// (TSan above all) runs to catch ordering bugs the unit tests can't see.
//
// Invariants under many producers x many server workers:
//   * no lost replies:       every submitted future becomes ready;
//   * no duplicated replies: request ids are unique across all replies;
//   * per-client dispatch order (1 server worker): a client's requests are
//     dispatched in its submission order — the FIFO/contiguous-prefix
//     guarantee of RequestQueue::pop_batch;
//   * clean drain shutdown:  stop(drain=true) completes everything queued;
//   * cancel shutdown:       stop(drain=false) fails queued requests with
//     kCancelled and completed + cancelled == submitted;
//   * replies stay correct under contention: spot-checked against the
//     sequential oracle (id-derived seeds make that possible mid-stress).
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <map>
#include <set>
#include <thread>

#include "graph/graph.hpp"
#include "serve/server.hpp"
#include "test_utils.hpp"

namespace agnn {
namespace {

using serve::InferenceReply;
using serve::ReplyStatus;
using serve::ServeConfig;

struct ServingFixture {
  CsrMatrix<float> adj;
  GnnModel<float> model;
  DenseMatrix<float> x;

  static ServingFixture make(std::uint64_t seed) {
    GnnConfig cfg;
    cfg.kind = ModelKind::kGAT;
    cfg.in_features = 4;
    cfg.layer_widths = {4, 3};
    cfg.seed = 17;
    auto g = testing::small_graph<float>(40, 200, seed);
    return {std::move(g.adj), GnnModel<float>(cfg),
            testing::random_dense<float>(40, 4, seed + 1)};
  }
};

struct ClientLog {
  std::vector<index_t> vertices;
  std::vector<std::future<InferenceReply<float>>> futures;
};

TEST(ServingStress, ManyProducersManyWorkersLoseNothing) {
  auto fx = ServingFixture::make(100);
  ServeConfig sc;
  sc.num_threads = 3;
  sc.max_batch = 8;
  sc.batch_window = std::chrono::microseconds(200);
  sc.fanout = 3;
  sc.sample_seed = 5;
  sc.cache_capacity = 16;  // small: force concurrent evictions too
  sc.cache_shards = 2;
  serve::InferenceServer<float> server(fx.model, fx.adj, fx.x, sc);

  constexpr int kClients = 4;
  constexpr int kPerClient = 60;
  std::vector<ClientLog> logs(kClients);
  {
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        Rng rng(static_cast<std::uint64_t>(c) + 1);
        for (int i = 0; i < kPerClient; ++i) {
          const auto v = static_cast<index_t>(rng.next_bounded(40));
          logs[static_cast<std::size_t>(c)].vertices.push_back(v);
          logs[static_cast<std::size_t>(c)].futures.push_back(server.submit(v));
        }
      });
    }
    for (auto& t : clients) t.join();
  }
  server.stop(/*drain=*/true);

  std::set<std::uint64_t> seen_ids;
  const serve::NeighborSampler oracle(sc.fanout, 2, sc.sample_seed);
  Workspace<float> ws;
  int checked = 0;
  for (auto& log : logs) {
    for (std::size_t i = 0; i < log.futures.size(); ++i) {
      ASSERT_EQ(log.futures[i].wait_for(std::chrono::seconds(30)),
                std::future_status::ready)
          << "lost reply";
      auto reply = log.futures[i].get();
      EXPECT_EQ(reply.status, ReplyStatus::kOk);
      EXPECT_EQ(reply.vertex, log.vertices[i]);
      EXPECT_TRUE(seen_ids.insert(reply.request_id).second)
          << "duplicated reply for id " << reply.request_id;
      // Spot-check correctness under contention (every 16th reply).
      if (checked++ % 16 == 0) {
        const auto solo = serve::serve_sequential(
            fx.model, fx.adj, fx.x, oracle, reply.vertex, reply.sample_seed, ws);
        EXPECT_EQ(reply.output, solo);
      }
    }
  }
  EXPECT_EQ(seen_ids.size(),
            static_cast<std::size_t>(kClients) * kPerClient);
  EXPECT_EQ(server.completed(), static_cast<std::uint64_t>(kClients) * kPerClient);
}

TEST(ServingStress, SingleWorkerDispatchesEachClientInSubmissionOrder) {
  auto fx = ServingFixture::make(200);
  ServeConfig sc;
  sc.num_threads = 1;  // the FIFO-dispatch guarantee is per consumer
  sc.max_batch = 4;
  sc.batch_window = std::chrono::microseconds(100);
  sc.fanout = 2;
  serve::InferenceServer<float> server(fx.model, fx.adj, fx.x, sc);

  constexpr int kClients = 4;
  constexpr int kPerClient = 40;
  std::vector<ClientLog> logs(kClients);
  {
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        Rng rng(static_cast<std::uint64_t>(c) + 11);
        for (int i = 0; i < kPerClient; ++i) {
          const auto v = static_cast<index_t>(rng.next_bounded(40));
          logs[static_cast<std::size_t>(c)].vertices.push_back(v);
          logs[static_cast<std::size_t>(c)].futures.push_back(server.submit(v));
        }
      });
    }
    for (auto& t : clients) t.join();
  }
  server.stop(/*drain=*/true);

  for (auto& log : logs) {
    std::uint64_t prev_seq = 0;
    bool first = true;
    std::uint64_t prev_id = 0;
    for (auto& f : log.futures) {
      auto reply = f.get();
      ASSERT_EQ(reply.status, ReplyStatus::kOk);
      if (!first) {
        // A client's submissions are ordered (each submit returns before
        // the next), so both its ids and its dispatch sequence numbers
        // must be strictly increasing with one consumer.
        EXPECT_GT(reply.request_id, prev_id);
        EXPECT_GT(reply.dispatch_seq, prev_seq)
            << "client requests dispatched out of submission order";
      }
      prev_id = reply.request_id;
      prev_seq = reply.dispatch_seq;
      first = false;
    }
  }
}

TEST(ServingStress, CancelShutdownAccountsForEveryRequest) {
  auto fx = ServingFixture::make(300);
  ServeConfig sc;
  sc.num_threads = 1;
  sc.max_batch = 2;
  // A wide batch window so requests pile up behind the slow consumer and
  // stop(false) finds a non-empty queue to cancel.
  sc.batch_window = std::chrono::milliseconds(5);
  sc.fanout = 3;
  serve::InferenceServer<float> server(fx.model, fx.adj, fx.x, sc);

  std::vector<std::future<InferenceReply<float>>> futures;
  constexpr int kRequests = 200;
  for (int i = 0; i < kRequests; ++i) {
    futures.push_back(server.submit(static_cast<index_t>(i % 40)));
  }
  server.stop(/*drain=*/false);

  int ok = 0, cancelled = 0;
  for (auto& f : futures) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(30)), std::future_status::ready)
        << "request neither completed nor cancelled";
    const auto status = f.get().status;
    if (status == ReplyStatus::kOk) {
      ++ok;
    } else {
      EXPECT_EQ(status, ReplyStatus::kCancelled);
      ++cancelled;
    }
  }
  EXPECT_EQ(ok + cancelled, kRequests);
  EXPECT_EQ(server.completed(), static_cast<std::uint64_t>(ok));
  // Post-stop submissions are rejected, not lost.
  EXPECT_EQ(server.submit(0).get().status, ReplyStatus::kRejected);
}

TEST(ServingStress, ConcurrentStopWhileSubmitting) {
  auto fx = ServingFixture::make(400);
  ServeConfig sc;
  sc.num_threads = 2;
  sc.max_batch = 4;
  sc.batch_window = std::chrono::microseconds(100);
  sc.fanout = 2;
  serve::InferenceServer<float> server(fx.model, fx.adj, fx.x, sc);

  std::atomic<int> submitted{0};
  std::vector<std::thread> clients;
  std::vector<std::vector<std::future<InferenceReply<float>>>> futures(3);
  for (int c = 0; c < 3; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(static_cast<std::uint64_t>(c) + 21);
      for (int i = 0; i < 80; ++i) {
        futures[static_cast<std::size_t>(c)].push_back(
            server.submit(static_cast<index_t>(rng.next_bounded(40))));
        submitted.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  // Stop mid-flight; clients race the closing queue.
  while (submitted.load(std::memory_order_relaxed) < 60) {
    std::this_thread::yield();
  }
  server.stop(/*drain=*/true);
  for (auto& t : clients) t.join();

  // Every future resolves: kOk if it made it in before close, kRejected
  // after. Nothing hangs, nothing is dropped on the floor.
  for (auto& per_client : futures) {
    for (auto& f : per_client) {
      ASSERT_EQ(f.wait_for(std::chrono::seconds(30)),
                std::future_status::ready);
      const auto status = f.get().status;
      EXPECT_TRUE(status == ReplyStatus::kOk || status == ReplyStatus::kRejected);
    }
  }
}

TEST(ServingStress, BoundedQueueShedsWithTrySubmitInsteadOfDeadlocking) {
  auto fx = ServingFixture::make(500);
  ServeConfig sc;
  sc.num_threads = 1;
  sc.max_batch = 2;
  sc.batch_window = std::chrono::milliseconds(1);
  sc.queue_capacity = 8;  // tiny: force rejections under burst load
  sc.fanout = 2;
  serve::InferenceServer<float> server(fx.model, fx.adj, fx.x, sc);

  int accepted = 0, shed = 0;
  std::vector<std::future<InferenceReply<float>>> futures;
  for (int i = 0; i < 300; ++i) {
    auto maybe = server.try_submit(static_cast<index_t>(i % 40));
    if (maybe.has_value()) {
      futures.push_back(std::move(*maybe));
      ++accepted;
    } else {
      ++shed;
    }
  }
  server.stop(/*drain=*/true);
  for (auto& f : futures) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(30)), std::future_status::ready);
    EXPECT_EQ(f.get().status, ReplyStatus::kOk);
  }
  EXPECT_EQ(accepted + shed, 300);
  EXPECT_GT(accepted, 0);
  EXPECT_EQ(server.completed(), static_cast<std::uint64_t>(accepted));
}

}  // namespace
}  // namespace agnn
