// The distributed global-formulation engine must reproduce the sequential
// engine exactly: inference outputs, per-step training losses, and the
// post-training weights — for every model, on 1, 4, 9, and 16 simulated
// ranks, including non-divisible vertex counts.
#include <gtest/gtest.h>

#include "comm/communicator.hpp"
#include "core/model.hpp"
#include "dist/dist_engine.hpp"
#include "graph/graph.hpp"
#include "test_utils.hpp"

namespace agnn::dist {
namespace {

struct DistCase {
  ModelKind kind;
  int ranks;  // perfect square
  index_t n;
  index_t k;
  int layers;
};

GnnConfig make_config(const DistCase& p) {
  GnnConfig cfg;
  cfg.kind = p.kind;
  cfg.in_features = p.k;
  cfg.layer_widths.assign(static_cast<std::size_t>(p.layers), p.k);
  cfg.hidden_activation = Activation::kTanh;
  cfg.seed = 4242;
  return cfg;
}

class DistEngineSweep : public ::testing::TestWithParam<DistCase> {};

TEST_P(DistEngineSweep, InferenceMatchesSequential) {
  const auto& p = GetParam();
  const auto g = testing::small_graph<double>(p.n, 5 * p.n, 11 + p.n);
  const CsrMatrix<double> adj =
      p.kind == ModelKind::kGCN ? graph::sym_normalize(g.adj) : g.adj;
  const auto x = testing::random_dense<double>(p.n, p.k, 13);

  GnnModel<double> seq_model(make_config(p));
  const auto ref = seq_model.infer(adj, x);

  comm::SpmdRuntime::run(p.ranks, [&](comm::Communicator& world) {
    GnnModel<double> model(make_config(p));  // same seed -> identical replica
    DistGnnEngine<double> engine(world, adj, model);
    const auto out = engine.infer(x);
    ASSERT_EQ(out.rows(), ref.rows());
    for (index_t i = 0; i < ref.size(); ++i) {
      ASSERT_NEAR(out.data()[i], ref.data()[i], 1e-8)
          << to_string(p.kind) << " rank " << world.rank() << " elem " << i;
    }
  });
}

TEST_P(DistEngineSweep, TrainingMatchesSequential) {
  const auto& p = GetParam();
  const auto g = testing::small_graph<double>(p.n, 5 * p.n, 17 + p.n);
  const CsrMatrix<double> adj =
      p.kind == ModelKind::kGCN ? graph::sym_normalize(g.adj) : g.adj;
  const CsrMatrix<double> adj_t = adj.transposed();
  const auto x = testing::random_dense<double>(p.n, p.k, 19);
  std::vector<index_t> labels(static_cast<std::size_t>(p.n));
  Rng rng(23);
  for (auto& l : labels) {
    l = static_cast<index_t>(rng.next_bounded(static_cast<std::uint64_t>(p.k)));
  }

  // Sequential reference: 3 SGD steps.
  GnnModel<double> seq_model(make_config(p));
  Trainer<double> trainer(seq_model, std::make_unique<SgdOptimizer<double>>(0.05));
  std::vector<double> ref_losses;
  for (int s = 0; s < 3; ++s) {
    ref_losses.push_back(trainer.step(adj, adj_t, x, labels).loss);
  }

  comm::SpmdRuntime::run(p.ranks, [&](comm::Communicator& world) {
    GnnModel<double> model(make_config(p));
    DistGnnEngine<double> engine(world, adj, model);
    SgdOptimizer<double> opt(0.05);
    for (int s = 0; s < 3; ++s) {
      const auto res = engine.train_step(x, labels, opt);
      ASSERT_NEAR(res.loss, ref_losses[static_cast<std::size_t>(s)], 1e-8)
          << to_string(p.kind) << " step " << s << " rank " << world.rank();
    }
    // Post-training weights must match the sequential run on every rank.
    for (std::size_t l = 0; l < model.num_layers(); ++l) {
      const auto& w_dist = model.layer(l).weights();
      const auto& w_seq = seq_model.layer(l).weights();
      for (index_t i = 0; i < w_seq.size(); ++i) {
        ASSERT_NEAR(w_dist.data()[i], w_seq.data()[i], 1e-8)
            << "layer " << l << " W[" << i << "]";
      }
      const auto& a_dist = model.layer(l).attention_params();
      const auto& a_seq = seq_model.layer(l).attention_params();
      for (std::size_t i = 0; i < a_seq.size(); ++i) {
        ASSERT_NEAR(a_dist[i], a_seq[i], 1e-8) << "layer " << l << " a[" << i << "]";
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    Cases, DistEngineSweep,
    ::testing::Values(DistCase{ModelKind::kGCN, 4, 24, 4, 2},
                      DistCase{ModelKind::kVA, 1, 20, 4, 2},
                      DistCase{ModelKind::kVA, 4, 24, 4, 2},
                      DistCase{ModelKind::kVA, 9, 25, 3, 2},
                      DistCase{ModelKind::kAGNN, 4, 24, 4, 2},
                      DistCase{ModelKind::kAGNN, 9, 26, 3, 2},
                      DistCase{ModelKind::kGAT, 1, 20, 4, 2},
                      DistCase{ModelKind::kGAT, 4, 24, 4, 2},
                      DistCase{ModelKind::kGAT, 9, 26, 3, 3},
                      DistCase{ModelKind::kGAT, 16, 33, 4, 2},
                      DistCase{ModelKind::kGCN, 9, 25, 3, 3},
                      DistCase{ModelKind::kGIN, 4, 24, 4, 2},
                      DistCase{ModelKind::kGIN, 9, 26, 3, 2},
                      DistCase{ModelKind::kVA, 16, 33, 4, 2}),
    [](const auto& info) {
      return std::string(to_string(info.param.kind)) + "_p" +
             std::to_string(info.param.ranks) + "_n" + std::to_string(info.param.n) +
             "_L" + std::to_string(info.param.layers);
    });

TEST(DistEngine, MaskedTrainingMatchesSequential) {
  const index_t n = 24, k = 3;
  const auto g = testing::small_graph<double>(n, 100, 29);
  const CsrMatrix<double> adj_t = g.adj.transposed();
  const auto x = testing::random_dense<double>(n, k, 31);
  std::vector<index_t> labels(static_cast<std::size_t>(n));
  std::vector<std::uint8_t> mask(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    labels[static_cast<std::size_t>(i)] = i % k;
    mask[static_cast<std::size_t>(i)] = (i % 3) != 0;
  }
  GnnConfig cfg;
  cfg.kind = ModelKind::kGAT;
  cfg.in_features = k;
  cfg.layer_widths = {k, k};
  cfg.seed = 71;
  GnnModel<double> seq(cfg);
  Trainer<double> trainer(seq, std::make_unique<SgdOptimizer<double>>(0.02));
  const double ref_loss = trainer.step(g.adj, adj_t, x, labels, mask).loss;

  comm::SpmdRuntime::run(4, [&](comm::Communicator& world) {
    GnnModel<double> model(cfg);
    DistGnnEngine<double> engine(world, g.adj, model);
    SgdOptimizer<double> opt(0.02);
    const auto res = engine.train_step(x, labels, opt, mask);
    EXPECT_NEAR(res.loss, ref_loss, 1e-9);
  });
}

TEST(DistEngine, NonSquareRankCountRejected) {
  // The 1.5D engine requires a perfect-square rank count (square grid); the
  // check fires deterministically on every rank before any collective, and
  // the structured error must name the family members that DO accept the
  // count so the failure is actionable.
  for (const int p : {2, 3, 6, 8, 12}) {
    try {
      ProcessGrid::side_for(p);
      FAIL() << "side_for must reject non-square p=" << p;
    } catch (const std::logic_error& e) {
      const std::string msg = e.what();
      EXPECT_NE(msg.find("AGNN_DIST=1d"), std::string::npos) << msg;
      EXPECT_NE(msg.find("AGNN_DIST=2d"), std::string::npos) << msg;
      EXPECT_NE(msg.find("AGNN_DIST=3d"), std::string::npos) << msg;
    }
  }
  EXPECT_EQ(ProcessGrid::try_side_for(12), std::nullopt);
  EXPECT_EQ(ProcessGrid::try_side_for(9), 3);
}

}  // namespace
}  // namespace agnn::dist
