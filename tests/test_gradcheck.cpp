// Finite-difference validation of every analytic backward pass: VA (the
// paper's Eq. 11-13), AGNN and GAT (derived in this repo), and GCN — for
// the weight matrices W, the attention parameters a, and the input features.
// All in double precision with smooth activations (tanh) to keep the
// numeric differentiation well-conditioned.
#include <gtest/gtest.h>

#include "core/gradcheck.hpp"
#include "core/model.hpp"
#include "graph/graph.hpp"
#include "test_utils.hpp"

namespace agnn {
namespace {

struct GradCase {
  ModelKind kind;
  int layers;
  index_t k;
};

class BackwardSweep : public ::testing::TestWithParam<GradCase> {};

// Builds the model/graph/task and returns max relative gradient error over
// all parameters and the input features.
void run_gradcheck(const GradCase& p) {
  const index_t n = 14;
  const auto g = testing::small_graph<double>(n, 60, 100 + p.k);
  const CsrMatrix<double> adj =
      p.kind == ModelKind::kGCN ? graph::sym_normalize(g.adj) : g.adj;
  const CsrMatrix<double> adj_t = adj.transposed();

  GnnConfig cfg;
  cfg.kind = p.kind;
  cfg.in_features = p.k;
  cfg.layer_widths.assign(static_cast<std::size_t>(p.layers), p.k);
  cfg.hidden_activation = Activation::kTanh;
  cfg.output_activation = Activation::kIdentity;
  cfg.mlp_activation = Activation::kTanh;  // smooth for finite differences
  cfg.gin_epsilon = 0.3;
  cfg.seed = 2024;
  GnnModel<double> model(cfg);

  auto x = testing::random_dense<double>(n, p.k, 31);
  std::vector<index_t> labels(static_cast<std::size_t>(n));
  Rng rng(7);
  for (auto& l : labels) l = static_cast<index_t>(rng.next_bounded(
                               static_cast<std::uint64_t>(p.k)));

  const auto loss_fn = [&]() {
    const auto h = model.infer(adj, x);
    return static_cast<double>(softmax_cross_entropy<double>(h, labels).value);
  };

  // Analytic gradients.
  std::vector<LayerCache<double>> caches;
  const auto h = model.forward(adj, x, caches);
  const auto loss = softmax_cross_entropy<double>(h, labels);
  const auto grads = model.backward(adj, adj_t, caches, loss.grad);

  // Check W of every layer.
  for (std::size_t l = 0; l < model.num_layers(); ++l) {
    auto& w = model.layer(l).weights();
    const auto res = gradcheck<double>(w.flat(), grads[l].d_w.flat(), loss_fn, 1e-6);
    EXPECT_LT(res.max_rel_error, 2e-4)
        << to_string(p.kind) << " dW layer " << l
        << " worst idx " << res.worst_index << " abs " << res.max_abs_error;
  }
  // Check W2 of every layer (GIN's second MLP matrix).
  if (p.kind == ModelKind::kGIN) {
    for (std::size_t l = 0; l < model.num_layers(); ++l) {
      auto& w2 = model.layer(l).weights2();
      const auto res = gradcheck<double>(w2.flat(), grads[l].d_w2.flat(), loss_fn, 1e-6);
      EXPECT_LT(res.max_rel_error, 2e-4)
          << "dW2 layer " << l << " abs " << res.max_abs_error;
    }
  }
  // Check a (GAT).
  if (p.kind == ModelKind::kGAT) {
    for (std::size_t l = 0; l < model.num_layers(); ++l) {
      auto& a = model.layer(l).attention_params();
      const auto res = gradcheck<double>(std::span<double>(a),
                                         std::span<const double>(grads[l].d_a),
                                         loss_fn, 1e-6);
      EXPECT_LT(res.max_rel_error, 2e-4)
          << "da layer " << l << " abs " << res.max_abs_error;
    }
  }
  // Check the input features (grads[0].d_h_in is dL/dH^0 pre-activation-
  // composition — since layer 0's input IS x, it is dL/dx directly).
  {
    const auto res = gradcheck<double>(x.flat(), grads[0].d_h_in.flat(), loss_fn, 1e-6);
    EXPECT_LT(res.max_rel_error, 2e-4)
        << to_string(p.kind) << " dX abs " << res.max_abs_error;
  }
}

TEST_P(BackwardSweep, AnalyticGradientsMatchFiniteDifferences) {
  run_gradcheck(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    Models, BackwardSweep,
    ::testing::Values(GradCase{ModelKind::kGCN, 1, 5}, GradCase{ModelKind::kGCN, 3, 4},
                      GradCase{ModelKind::kVA, 1, 5}, GradCase{ModelKind::kVA, 2, 4},
                      GradCase{ModelKind::kVA, 3, 3},
                      GradCase{ModelKind::kAGNN, 1, 5}, GradCase{ModelKind::kAGNN, 2, 4},
                      GradCase{ModelKind::kAGNN, 3, 3},
                      GradCase{ModelKind::kGAT, 1, 5}, GradCase{ModelKind::kGAT, 2, 4},
                      GradCase{ModelKind::kGAT, 3, 3},
                      GradCase{ModelKind::kGIN, 1, 5}, GradCase{ModelKind::kGIN, 2, 4},
                      GradCase{ModelKind::kGIN, 3, 3}),
    [](const auto& info) {
      return std::string(to_string(info.param.kind)) + "_L" +
             std::to_string(info.param.layers) + "_k" + std::to_string(info.param.k);
    });

TEST(Gradcheck, DirectedGraphBackwardVa) {
  // The backward pass runs on the reversed graph (Section 5.2); exercise
  // A != A^T explicitly.
  const index_t n = 12, k = 4;
  graph::BuildOptions opt;
  opt.symmetrize = false;
  opt.add_self_loops = true;  // keep softmax/attention rows non-empty
  const auto g = graph::build_graph<double>(
      graph::generate_erdos_renyi_m(n, 50, 55), opt);
  const CsrMatrix<double> adj = g.adj;
  const CsrMatrix<double> adj_t = adj.transposed();

  GnnConfig cfg;
  cfg.kind = ModelKind::kVA;
  cfg.in_features = k;
  cfg.layer_widths = {k, k};
  cfg.hidden_activation = Activation::kTanh;
  cfg.seed = 8;
  GnnModel<double> model(cfg);
  auto x = testing::random_dense<double>(n, k, 9);
  std::vector<index_t> labels(static_cast<std::size_t>(n), 0);
  for (index_t i = 0; i < n; ++i) labels[static_cast<std::size_t>(i)] = i % k;

  const auto loss_fn = [&]() {
    return static_cast<double>(
        softmax_cross_entropy<double>(model.infer(adj, x), labels).value);
  };
  std::vector<LayerCache<double>> caches;
  const auto h = model.forward(adj, x, caches);
  const auto loss = softmax_cross_entropy<double>(h, labels);
  const auto grads = model.backward(adj, adj_t, caches, loss.grad);
  const auto res = gradcheck<double>(x.flat(), grads[0].d_h_in.flat(), loss_fn, 1e-6);
  EXPECT_LT(res.max_rel_error, 2e-4) << "directed VA dX";
  auto& w = model.layer(0).weights();
  const auto res_w = gradcheck<double>(w.flat(), grads[0].d_w.flat(), loss_fn, 1e-6);
  EXPECT_LT(res_w.max_rel_error, 2e-4) << "directed VA dW";
}

TEST(Gradcheck, WeightedAdjacencyBackward) {
  // Non-binary adjacency values exercise the A-value multipliers in every
  // backward pass (the edge-weight factors of the Hadamard filters).
  const index_t n = 12, k = 4;
  const auto g = testing::small_graph<double>(n, 50, 202);
  CsrMatrix<double> adj = g.adj;
  {
    Rng rng(203);
    auto v = adj.vals_mutable();
    for (auto& x : v) x = rng.next_uniform(0.3, 2.0);
  }
  const CsrMatrix<double> adj_t = adj.transposed();
  for (const ModelKind kind : {ModelKind::kVA, ModelKind::kAGNN, ModelKind::kGAT,
                               ModelKind::kGCN, ModelKind::kGIN}) {
    GnnConfig cfg;
    cfg.kind = kind;
    cfg.in_features = k;
    cfg.layer_widths = {k, k};
    cfg.hidden_activation = Activation::kTanh;
    cfg.mlp_activation = Activation::kTanh;
    cfg.seed = 204;
    GnnModel<double> model(cfg);
    auto x = testing::random_dense<double>(n, k, 205);
    std::vector<index_t> labels(static_cast<std::size_t>(n));
    for (index_t i = 0; i < n; ++i) labels[static_cast<std::size_t>(i)] = i % k;
    const auto loss_fn = [&]() {
      return static_cast<double>(
          softmax_cross_entropy<double>(model.infer(adj, x), labels).value);
    };
    std::vector<LayerCache<double>> caches;
    const auto h = model.forward(adj, x, caches);
    const auto loss = softmax_cross_entropy<double>(h, labels);
    const auto grads = model.backward(adj, adj_t, caches, loss.grad);
    const auto res = gradcheck<double>(x.flat(), grads[0].d_h_in.flat(), loss_fn, 1e-6);
    EXPECT_LT(res.max_rel_error, 2e-4) << "weighted " << to_string(kind) << " dX";
    auto& w = model.layer(0).weights();
    const auto res_w = gradcheck<double>(w.flat(), grads[0].d_w.flat(), loss_fn, 1e-6);
    EXPECT_LT(res_w.max_rel_error, 2e-4) << "weighted " << to_string(kind) << " dW";
  }
}

TEST(Gradcheck, MseLossBackwardThroughModel) {
  const index_t n = 10, k = 3;
  const auto g = testing::small_graph<double>(n, 40, 66);
  const CsrMatrix<double> adj_t = g.adj.transposed();
  GnnConfig cfg;
  cfg.kind = ModelKind::kGAT;
  cfg.in_features = k;
  cfg.layer_widths = {k};
  cfg.hidden_activation = Activation::kTanh;
  cfg.output_activation = Activation::kTanh;
  cfg.seed = 3;
  GnnModel<double> model(cfg);
  auto x = testing::random_dense<double>(n, k, 4);
  const auto target = testing::random_dense<double>(n, k, 5);

  const auto loss_fn = [&]() {
    return static_cast<double>(mse_loss(model.infer(g.adj, x), target).value);
  };
  std::vector<LayerCache<double>> caches;
  const auto h = model.forward(g.adj, x, caches);
  const auto loss = mse_loss(h, target);
  const auto grads = model.backward(g.adj, adj_t, caches, loss.grad);
  const auto res = gradcheck<double>(x.flat(), grads[0].d_h_in.flat(), loss_fn, 1e-6);
  EXPECT_LT(res.max_rel_error, 2e-4);
}

}  // namespace
}  // namespace agnn
