// Tests for the artifact-style command-line parser.
#include <gtest/gtest.h>

#include "core/cli.hpp"

namespace agnn {
namespace {

CliArgs parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return CliArgs(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, ShortOptionsWithValues) {
  const auto a = parse({"-m", "GAT", "-v", "1024"});
  EXPECT_EQ(a.get_string("-m", ""), "GAT");
  EXPECT_EQ(a.get_long("-v", 0), 1024);
}

TEST(Cli, LongOptionsWithEquals) {
  const auto a = parse({"--features=32", "--model=VA"});
  EXPECT_EQ(a.get_long("--features", 0), 32);
  EXPECT_EQ(a.get_string("--model", ""), "VA");
}

TEST(Cli, FlagsWithoutValues) {
  const auto a = parse({"--inference", "-m", "AGNN"});
  EXPECT_TRUE(a.get_flag("--inference"));
  EXPECT_FALSE(a.get_flag("--training"));
  EXPECT_EQ(a.get_string("-m", ""), "AGNN");
}

TEST(Cli, ShortLongAliasPreference) {
  const auto a = parse({"-v", "100", "--vertices", "200"});
  // Short spelling wins when both are given.
  EXPECT_EQ(a.get_long("-v", "--vertices", 0), 100);
  const auto b = parse({"--vertices", "200"});
  EXPECT_EQ(b.get_long("-v", "--vertices", 0), 200);
  const auto c = parse({});
  EXPECT_EQ(c.get_long("-v", "--vertices", 7), 7);
}

TEST(Cli, DefaultsWhenAbsent) {
  const auto a = parse({});
  EXPECT_EQ(a.get_string("-m", "VA"), "VA");
  EXPECT_EQ(a.get_long("--repeat", 10), 10);
}

TEST(Cli, NonIntegerValueThrows) {
  const auto a = parse({"-v", "abc"});
  EXPECT_THROW(a.get_long("-v", 0), std::logic_error);
}

TEST(Cli, NegativeNumbersAsValues) {
  const auto a = parse({"--seed=-5"});
  EXPECT_EQ(a.get_long("--seed", 0), -5);
}

TEST(Cli, MalformedPositionalThrows) {
  std::vector<const char*> argv{"prog", "stray"};
  EXPECT_THROW(CliArgs(2, argv.data()), std::logic_error);
}

}  // namespace
}  // namespace agnn
