// Unit and property tests for COO and CSR containers.
#include <gtest/gtest.h>

#include "tensor/coo_matrix.hpp"
#include "tensor/csr_matrix.hpp"
#include "test_utils.hpp"

namespace agnn {
namespace {

CooMatrix<double> example_coo() {
  CooMatrix<double> coo;
  coo.n_rows = 3;
  coo.n_cols = 3;
  coo.push_back(2, 0, 5.0);
  coo.push_back(0, 1, 1.0);
  coo.push_back(0, 2, 2.0);
  coo.push_back(1, 1, 3.0);
  return coo;
}

TEST(CooMatrix, SortOrdersRowMajor) {
  auto coo = example_coo();
  coo.sort();
  EXPECT_EQ(coo.rows[0], 0);
  EXPECT_EQ(coo.cols[0], 1);
  EXPECT_EQ(coo.rows[3], 2);
  EXPECT_EQ(coo.cols[3], 0);
}

TEST(CooMatrix, SumDuplicatesAccumulates) {
  CooMatrix<double> coo;
  coo.n_rows = coo.n_cols = 2;
  coo.push_back(0, 0, 1.0);
  coo.push_back(0, 0, 2.0);
  coo.push_back(1, 1, 4.0);
  coo.sum_duplicates();
  EXPECT_EQ(coo.nnz(), 2);
  EXPECT_DOUBLE_EQ(coo.vals[0], 3.0);
}

TEST(CooMatrix, DedupBinaryClampsToOne) {
  CooMatrix<float> coo;
  coo.n_rows = coo.n_cols = 2;
  coo.push_back(0, 1, 1.0f);
  coo.push_back(0, 1, 1.0f);
  coo.push_back(0, 1, 1.0f);
  coo.dedup_binary();
  ASSERT_EQ(coo.nnz(), 1);
  EXPECT_FLOAT_EQ(coo.vals[0], 1.0f);
}

TEST(CooMatrix, RemoveSelfLoops) {
  CooMatrix<float> coo;
  coo.n_rows = coo.n_cols = 3;
  coo.push_back(0, 0, 1.0f);
  coo.push_back(0, 1, 1.0f);
  coo.push_back(2, 2, 1.0f);
  coo.remove_self_loops();
  ASSERT_EQ(coo.nnz(), 1);
  EXPECT_EQ(coo.rows[0], 0);
  EXPECT_EQ(coo.cols[0], 1);
}

TEST(CsrMatrix, FromCooRoundTrip) {
  const auto coo = example_coo();
  const auto csr = CsrMatrix<double>::from_coo(coo);
  EXPECT_EQ(csr.rows(), 3);
  EXPECT_EQ(csr.nnz(), 4);
  EXPECT_EQ(csr.row_nnz(0), 2);
  EXPECT_EQ(csr.row_nnz(1), 1);
  EXPECT_EQ(csr.row_nnz(2), 1);
  auto back = csr.to_coo();
  back.sort();
  auto sorted = coo;
  sorted.sort();
  EXPECT_EQ(back.rows, sorted.rows);
  EXPECT_EQ(back.cols, sorted.cols);
  EXPECT_EQ(back.vals, sorted.vals);
}

TEST(CsrMatrix, FromCooOutOfRangeThrows) {
  CooMatrix<double> coo;
  coo.n_rows = coo.n_cols = 2;
  coo.push_back(0, 5, 1.0);
  EXPECT_THROW(CsrMatrix<double>::from_coo(coo), std::logic_error);
}

TEST(CsrMatrix, ToDense) {
  const auto csr = CsrMatrix<double>::from_coo(example_coo());
  const auto d = csr.to_dense();
  EXPECT_DOUBLE_EQ(d(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(d(0, 2), 2.0);
  EXPECT_DOUBLE_EQ(d(1, 1), 3.0);
  EXPECT_DOUBLE_EQ(d(2, 0), 5.0);
  EXPECT_DOUBLE_EQ(d(0, 0), 0.0);
}

TEST(CsrMatrix, TransposeMatchesDenseTranspose) {
  const auto a = testing::random_sparse<double>(17, 0.2, 3);
  const auto at = a.transposed();
  const auto d = a.to_dense();
  const auto dt = at.to_dense();
  for (index_t i = 0; i < 17; ++i) {
    for (index_t j = 0; j < 17; ++j) EXPECT_DOUBLE_EQ(dt(j, i), d(i, j));
  }
}

TEST(CsrMatrix, TransposeInvolution) {
  const auto a = testing::random_sparse<double>(23, 0.15, 5);
  const auto att = a.transposed().transposed();
  EXPECT_TRUE(a.same_pattern(att));
  for (index_t e = 0; e < a.nnz(); ++e) {
    EXPECT_DOUBLE_EQ(a.val_at(e), att.val_at(e));
  }
}

TEST(CsrMatrix, WithValuesKeepsPattern) {
  const auto a = testing::random_sparse<float>(9, 0.3, 7);
  const auto ones = a.with_values(1.0f);
  EXPECT_TRUE(a.same_pattern(ones));
  for (index_t e = 0; e < ones.nnz(); ++e) EXPECT_FLOAT_EQ(ones.val_at(e), 1.0f);
}

class CsrBlockSweep : public ::testing::TestWithParam<int> {};

TEST_P(CsrBlockSweep, BlockMatchesDenseSlice) {
  const index_t n = 20;
  const auto a = testing::random_sparse<double>(n, 0.25, GetParam());
  const auto d = a.to_dense();
  const index_t r0 = 3, r1 = 15, c0 = 5, c1 = 18;
  const auto blk = a.block(r0, r1, c0, c1);
  EXPECT_EQ(blk.rows(), r1 - r0);
  EXPECT_EQ(blk.cols(), c1 - c0);
  const auto bd = blk.to_dense();
  for (index_t i = 0; i < blk.rows(); ++i) {
    for (index_t j = 0; j < blk.cols(); ++j) {
      EXPECT_DOUBLE_EQ(bd(i, j), d(r0 + i, c0 + j));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsrBlockSweep, ::testing::Values(1, 2, 3, 4, 5));

TEST(CsrMatrix, BlocksTileTheMatrix) {
  const index_t n = 16;
  const auto a = testing::random_sparse<double>(n, 0.3, 11);
  index_t total = 0;
  for (index_t bi = 0; bi < 4; ++bi) {
    for (index_t bj = 0; bj < 4; ++bj) {
      total += a.block(bi * 4, (bi + 1) * 4, bj * 4, (bj + 1) * 4).nnz();
    }
  }
  EXPECT_EQ(total, a.nnz());
}

TEST(CsrMatrix, CastPreservesPattern) {
  const auto a = testing::random_sparse<double>(8, 0.4, 13);
  const auto f = a.cast<float>();
  EXPECT_EQ(f.nnz(), a.nnz());
  for (index_t e = 0; e < a.nnz(); ++e) {
    EXPECT_FLOAT_EQ(f.val_at(e), static_cast<float>(a.val_at(e)));
  }
}

TEST(CsrMatrix, EmptyMatrix) {
  CooMatrix<double> coo;
  coo.n_rows = coo.n_cols = 4;
  const auto csr = CsrMatrix<double>::from_coo(coo);
  EXPECT_EQ(csr.nnz(), 0);
  EXPECT_EQ(csr.transposed().nnz(), 0);
  EXPECT_EQ(csr.block(0, 4, 0, 4).nnz(), 0);
}

}  // namespace
}  // namespace agnn
