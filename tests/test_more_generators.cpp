// Tests for the Watts–Strogatz and Barabási–Albert generators and their
// structural properties (clustering / small-world behavior, power-law-ish
// degree concentration).
#include <gtest/gtest.h>

#include <cmath>

#include "graph/algorithms.hpp"
#include "graph/graph.hpp"
#include "core/model.hpp"
#include "graph/small_world.hpp"
#include "test_utils.hpp"

namespace agnn::graph {
namespace {

TEST(WattsStrogatz, ZeroBetaIsRingLattice) {
  const auto el = generate_watts_strogatz({.n = 20, .k = 4, .beta = 0.0, .seed = 1});
  EXPECT_EQ(el.size(), 40);  // n * k/2
  const auto g = build_graph<double>(el);
  // Pure lattice: every vertex has degree exactly k.
  for (index_t v = 0; v < 20; ++v) EXPECT_EQ(g.adj.row_nnz(v), 4);
  // Edges connect ring neighbors at distance <= k/2.
  for (index_t v = 0; v < 20; ++v) {
    for (index_t e = g.adj.row_begin(v); e < g.adj.row_end(v); ++e) {
      const index_t u = g.adj.col_at(e);
      const index_t d = std::min((u - v + 20) % 20, (v - u + 20) % 20);
      EXPECT_LE(d, 2);
    }
  }
}

TEST(WattsStrogatz, FullRewiringDestroysLattice) {
  const auto el = generate_watts_strogatz({.n = 200, .k = 6, .beta = 1.0, .seed = 3});
  const auto g = build_graph<double>(el);
  // With beta = 1 long-range edges dominate: count edges with ring
  // distance > k/2 — must be the majority.
  index_t long_range = 0, total = 0;
  for (index_t v = 0; v < 200; ++v) {
    for (index_t e = g.adj.row_begin(v); e < g.adj.row_end(v); ++e) {
      const index_t u = g.adj.col_at(e);
      const index_t d = std::min((u - v + 200) % 200, (v - u + 200) % 200);
      ++total;
      if (d > 3) ++long_range;
    }
  }
  EXPECT_GT(long_range * 2, total);
}

TEST(WattsStrogatz, SmallBetaShrinksDiameterKeepsClustering) {
  // The defining small-world effect: a few rewired edges collapse the BFS
  // eccentricity while triangles (clustering) largely survive.
  const auto ring = build_graph<double>(
      generate_watts_strogatz({.n = 400, .k = 8, .beta = 0.0, .seed = 5}));
  const auto sw = build_graph<double>(
      generate_watts_strogatz({.n = 400, .k = 8, .beta = 0.1, .seed = 5}));
  auto ecc = [](const CsrMatrix<double>& adj) {
    const auto levels = bfs_levels(adj, 0);
    index_t mx = 0;
    for (const auto l : levels) mx = std::max(mx, l);
    return mx;
  };
  EXPECT_LT(ecc(sw.adj), ecc(ring.adj) / 2);
  const auto tri_ring = count_triangles(ring.adj);
  const auto tri_sw = count_triangles(sw.adj);
  EXPECT_GT(tri_sw, tri_ring / 3);  // clustering largely preserved
  EXPECT_GT(tri_ring, 0u);
}

TEST(WattsStrogatz, ValidatesParameters) {
  EXPECT_THROW(generate_watts_strogatz({.n = 2, .k = 2}), std::logic_error);
  EXPECT_THROW(generate_watts_strogatz({.n = 10, .k = 3}), std::logic_error);
  EXPECT_THROW(generate_watts_strogatz({.n = 10, .k = 12}), std::logic_error);
  EXPECT_THROW(generate_watts_strogatz({.n = 10, .k = 4, .beta = 2.0}),
               std::logic_error);
}

TEST(BarabasiAlbert, EdgeCountAndConnectivity) {
  const auto el = generate_barabasi_albert({.n = 300, .m = 3, .seed = 7});
  // Seed clique C(4,2)=6 edges + 3 per subsequent vertex.
  EXPECT_EQ(el.size(), 6 + (300 - 4) * 3);
  const auto g = build_graph<double>(el);
  // Growth attaches every vertex: a single connected component.
  const auto labels = connected_components(g.adj);
  for (const auto l : labels) EXPECT_EQ(l, 0);
}

TEST(BarabasiAlbert, PreferentialAttachmentConcentratesDegree) {
  const auto g = build_graph<double>(
      generate_barabasi_albert({.n = 1000, .m = 3, .seed = 11}));
  const double avg = static_cast<double>(g.num_edges()) /
                     static_cast<double>(g.num_vertices());
  // Hubs: max degree far above average (scale-free-like tail), unlike an
  // Erdős–Rényi graph of the same size.
  EXPECT_GT(static_cast<double>(g.max_degree()), 6.0 * avg);
  // Early vertices accumulate the most degree.
  index_t early_heavy = 0;
  for (index_t v = 0; v < 10; ++v) {
    if (static_cast<double>(g.adj.row_nnz(v)) > 2.0 * avg) ++early_heavy;
  }
  EXPECT_GE(early_heavy, 5);
}

TEST(BarabasiAlbert, DeterministicAndValidated) {
  const auto a = generate_barabasi_albert({.n = 50, .m = 2, .seed = 13});
  const auto b = generate_barabasi_albert({.n = 50, .m = 2, .seed = 13});
  EXPECT_EQ(a.src, b.src);
  EXPECT_EQ(a.dst, b.dst);
  EXPECT_THROW(generate_barabasi_albert({.n = 5, .m = 5}), std::logic_error);
  EXPECT_THROW(generate_barabasi_albert({.n = 5, .m = 0}), std::logic_error);
}

TEST(BarabasiAlbert, WorksAsGnnSubstrate) {
  // End-to-end smoke: the generated graph runs through a GAT layer.
  const auto g = build_graph<double>(
      generate_barabasi_albert({.n = 128, .m = 2, .seed = 17}));
  GnnConfig cfg;
  cfg.kind = ModelKind::kGAT;
  cfg.in_features = 4;
  cfg.layer_widths = {4};
  GnnModel<double> model(cfg);
  const auto x = testing::random_dense<double>(128, 4, 19);
  const auto h = model.infer(g.adj, x);
  for (index_t i = 0; i < h.size(); ++i) EXPECT_TRUE(std::isfinite(h.data()[i]));
}

}  // namespace
}  // namespace agnn::graph
