// Unit tests for the optimizers: plain SGD (the paper's W := W - alpha Y),
// momentum, weight decay, and Adam.
#include <gtest/gtest.h>

#include <cmath>

#include "core/optimizer.hpp"

namespace agnn {
namespace {

TEST(Sgd, PlainStepIsPaperUpdateRule) {
  SgdOptimizer<double> opt(0.5);
  std::vector<double> p{1.0, -2.0};
  std::vector<double> g{0.2, 0.4};
  opt.step(0, p, g);
  EXPECT_DOUBLE_EQ(p[0], 1.0 - 0.5 * 0.2);
  EXPECT_DOUBLE_EQ(p[1], -2.0 - 0.5 * 0.4);
}

TEST(Sgd, MomentumAccumulatesVelocity) {
  SgdOptimizer<double> opt(1.0, 0.9);
  std::vector<double> p{0.0};
  std::vector<double> g{1.0};
  opt.step(0, p, g);  // v = 1,   p = -1
  EXPECT_DOUBLE_EQ(p[0], -1.0);
  opt.step(0, p, g);  // v = 1.9, p = -2.9
  EXPECT_DOUBLE_EQ(p[0], -2.9);
}

TEST(Sgd, WeightDecayShrinksParameters) {
  SgdOptimizer<double> opt(0.1, 0.0, 0.5);
  std::vector<double> p{2.0};
  std::vector<double> g{0.0};
  opt.step(0, p, g);
  EXPECT_DOUBLE_EQ(p[0], 2.0 - 0.1 * (0.5 * 2.0));
}

TEST(Sgd, SlotsAreIndependent) {
  SgdOptimizer<double> opt(1.0, 0.9);
  std::vector<double> p1{0.0}, p2{0.0};
  std::vector<double> g{1.0};
  opt.step(0, p1, g);
  opt.step(1, p2, g);
  opt.step(0, p1, g);
  // Slot 1 got one step, slot 0 two with momentum.
  EXPECT_DOUBLE_EQ(p2[0], -1.0);
  EXPECT_DOUBLE_EQ(p1[0], -2.9);
}

TEST(Sgd, ResetClearsVelocity) {
  SgdOptimizer<double> opt(1.0, 0.9);
  std::vector<double> p{0.0};
  std::vector<double> g{1.0};
  opt.step(0, p, g);
  opt.reset();
  opt.step(0, p, g);
  EXPECT_DOUBLE_EQ(p[0], -2.0);  // no momentum carry-over
}

TEST(Sgd, SizeMismatchThrows) {
  SgdOptimizer<double> opt(0.1);
  std::vector<double> p{1.0, 2.0};
  std::vector<double> g{1.0};
  EXPECT_THROW(opt.step(0, p, g), std::logic_error);
}

TEST(Adam, FirstStepIsScaledSignOfGradient) {
  // With bias correction, step 1 moves by ~lr * sign(g).
  AdamOptimizer<double> opt(0.1);
  std::vector<double> p{0.0, 0.0};
  std::vector<double> g{5.0, -0.001};
  opt.step(0, p, g);
  EXPECT_NEAR(p[0], -0.1, 1e-6);
  EXPECT_NEAR(p[1], 0.1, 1e-3);
}

TEST(Adam, ConvergesOnQuadratic) {
  // Minimize f(x) = (x - 3)^2 — Adam must land near 3.
  AdamOptimizer<double> opt(0.1);
  std::vector<double> x{0.0};
  for (int i = 0; i < 500; ++i) {
    std::vector<double> g{2.0 * (x[0] - 3.0)};
    opt.step(0, x, g);
  }
  EXPECT_NEAR(x[0], 3.0, 1e-2);
}

TEST(Adam, DeterministicAcrossInstances) {
  auto run = [] {
    AdamOptimizer<double> opt(0.05);
    std::vector<double> x{1.0, -1.0};
    for (int i = 0; i < 20; ++i) {
      std::vector<double> g{x[0] * 0.5, x[1] * 0.25};
      opt.step(0, x, g);
    }
    return x;
  };
  EXPECT_EQ(run(), run());
}

TEST(Adam, ResetRestartsMoments) {
  AdamOptimizer<double> opt(0.1);
  std::vector<double> p{0.0};
  std::vector<double> g{1.0};
  opt.step(0, p, g);
  const double after_one = p[0];
  opt.reset();
  std::vector<double> q{0.0};
  opt.step(0, q, g);
  EXPECT_DOUBLE_EQ(q[0], after_one);
}

}  // namespace
}  // namespace agnn
