// The async collectives (ibroadcast / iallreduce_sum) are the blocking
// collectives split at their first rendezvous: the result must be BITWISE
// identical, the volume/superstep accounting must be identical, and the
// pipelined post-compute-wait pattern the SUMMA engines use must hold up
// under fault injection. Anything weaker would let the overlap optimization
// silently change what the engines compute.
#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "comm/communicator.hpp"

namespace agnn::comm {
namespace {

std::vector<double> pattern(int rank, std::size_t words, double salt) {
  std::vector<double> v(words);
  for (std::size_t i = 0; i < words; ++i) {
    v[i] = salt + static_cast<double>(rank) * 1e3 +
           static_cast<double>(i) * 0.37;
  }
  return v;
}

void expect_bitwise_equal(const std::vector<double>& got,
                          const std::vector<double>& want, const char* what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(got[i]),
              std::bit_cast<std::uint64_t>(want[i]))
        << what << " word " << i;
  }
}

TEST(AsyncCollectives, IbroadcastBitwiseEqualsBroadcast) {
  for (const int p : {2, 3, 4, 7}) {
    SpmdRuntime::run(p, [&](Communicator& world) {
      for (int root = 0; root < world.size(); ++root) {
        auto blocking = pattern(world.rank(), 33, 1.5);
        auto async = blocking;
        world.broadcast(std::span<double>(blocking), root);
        auto h = world.ibroadcast(std::span<double>(async), root);
        h.wait();
        if (world.rank() == 0) {
          expect_bitwise_equal(async, blocking, "ibroadcast");
        }
      }
    });
  }
}

TEST(AsyncCollectives, IallreduceBitwiseEqualsAllreduce) {
  for (const int p : {2, 4, 5}) {
    SpmdRuntime::run(p, [&](Communicator& world) {
      auto blocking = pattern(world.rank(), 41, -2.25);
      auto async = blocking;
      world.allreduce_sum(std::span<double>(blocking));
      auto h = world.iallreduce_sum(std::span<double>(async));
      h.wait();
      if (world.rank() == 0) {
        expect_bitwise_equal(async, blocking, "iallreduce_sum");
      }
    });
  }
}

// The handle must charge exactly what the blocking form charges, per rank:
// same bytes, same supersteps. Run the same schedule both ways and compare
// the runtime's volume snapshots.
TEST(AsyncCollectives, AccountingIdenticalToBlockingForms) {
  constexpr int kRanks = 6;
  constexpr std::size_t kWords = 29;
  const auto schedule = [&](bool async) {
    return SpmdRuntime::run(kRanks, [&](Communicator& world) {
      auto buf = pattern(world.rank(), kWords, 3.0);
      for (int root = 0; root < world.size(); ++root) {
        if (async) {
          auto h = world.ibroadcast(std::span<double>(buf), root);
          h.wait();
        } else {
          world.broadcast(std::span<double>(buf), root);
        }
      }
      if (async) {
        auto h = world.iallreduce_sum(std::span<double>(buf));
        h.wait();
      } else {
        world.allreduce_sum(std::span<double>(buf));
      }
    });
  };
  const auto blocking = schedule(false);
  const auto async = schedule(true);
  ASSERT_EQ(blocking.size(), async.size());
  for (std::size_t r = 0; r < blocking.size(); ++r) {
    EXPECT_EQ(async[r].bytes_sent, blocking[r].bytes_sent) << "rank " << r;
    EXPECT_EQ(async[r].supersteps, blocking[r].supersteps) << "rank " << r;
  }
}

// Computing between start and wait — the entire point of the split — must
// not perturb the transferred data, even when the compute touches the
// root's OTHER buffers.
TEST(AsyncCollectives, OverlappedComputeDoesNotPerturbTheTransfer) {
  SpmdRuntime::run(4, [&](Communicator& world) {
    auto reference = pattern(world.rank(), 64, 7.0);
    auto buf = reference;
    world.broadcast(std::span<double>(reference), 1);
    auto h = world.ibroadcast(std::span<double>(buf), 1);
    // Local "kernel" work while the broadcast is in flight.
    std::vector<double> scratch(256);
    for (std::size_t i = 0; i < scratch.size(); ++i) {
      scratch[i] = static_cast<double>(i) * 1.0001;
    }
    h.wait();
    if (world.rank() == 0) {
      expect_bitwise_equal(buf, reference, "overlapped ibroadcast");
    }
    EXPECT_GT(scratch[255], 0.0);
  });
}

// The engines' pipelined panel loop: wait stage t, post t+1, compute t. One
// handle in flight per group at a time; results must equal the blocking
// stage loop bitwise.
TEST(AsyncCollectives, PipelinedStageLoopEqualsBlockingLoop) {
  constexpr int kStages = 5;
  constexpr std::size_t kWords = 17;
  SpmdRuntime::run(kStages, [&](Communicator& world) {
    std::vector<std::vector<double>> blocking(kStages);
    std::vector<std::vector<double>> pipelined(kStages);
    for (int t = 0; t < kStages; ++t) {
      blocking[static_cast<std::size_t>(t)] =
          pattern(world.rank(), kWords, 11.0 + t);
      pipelined[static_cast<std::size_t>(t)] =
          blocking[static_cast<std::size_t>(t)];
    }
    for (int t = 0; t < kStages; ++t) {
      world.broadcast(std::span<double>(blocking[static_cast<std::size_t>(t)]),
                      t);
    }
    using Pending = Communicator::Pending<double>;
    std::optional<Pending> cur(
        world.ibroadcast(std::span<double>(pipelined[0]), 0));
    std::optional<Pending> next;
    double compute_sink = 0.0;
    for (int t = 0; t < kStages; ++t) {
      cur->wait();
      if (t + 1 < kStages) {
        next = world.ibroadcast(
            std::span<double>(pipelined[static_cast<std::size_t>(t + 1)]),
            t + 1);
      }
      for (const double v : pipelined[static_cast<std::size_t>(t)]) {
        compute_sink += v;  // stage-t "SpMM" overlapping the t+1 broadcast
      }
      cur = std::move(next);
      next.reset();
    }
    EXPECT_NE(compute_sink, 0.0);
    if (world.rank() == 0) {
      for (int t = 0; t < kStages; ++t) {
        expect_bitwise_equal(pipelined[static_cast<std::size_t>(t)],
                             blocking[static_cast<std::size_t>(t)],
                             "pipelined stage");
      }
    }
  });
}

// Fault-injection points fire for the async forms exactly like the blocking
// ones: a straggler delay at the ibroadcast superstep must leave the result
// bitwise intact (peers absorb the stall as barrier wait time).
TEST(AsyncCollectives, StragglerDelayLeavesResultsBitwiseIntact) {
  RunOptions opts;
  FaultEvent ev;
  ev.kind = FaultKind::kStragglerDelay;
  ev.rank = 1;
  ev.superstep = 2;
  ev.delay_us = 300;
  opts.faults.add(ev);
  opts.timeout = std::chrono::milliseconds(500);

  // The fault-free reference, computed once outside.
  std::vector<double> want = pattern(2, 21, 5.5);  // root 2's buffer

  const auto snaps = SpmdRuntime::run(4, opts, [&](Communicator& world) {
    auto buf = pattern(world.rank(), 21, 5.5);
    for (int round = 0; round < 3; ++round) {
      auto h = world.ibroadcast(std::span<double>(buf), 2);
      h.wait();
    }
    if (world.rank() == 0) {
      expect_bitwise_equal(buf, want, "ibroadcast under straggler");
    }
  });
  double total_wait = 0.0;
  for (const auto& s : snaps) total_wait += s.wait_seconds;
  EXPECT_GT(total_wait, 0.0);
}

// Hard faults must surface on every rank through the async path too — the
// wait() completes the same checked barriers as the blocking form.
TEST(AsyncCollectives, AbortSurfacesOnEveryRank) {
  RunOptions opts;
  opts.faults = FaultPlan::parse("abort@r1:s3");
  opts.timeout = std::chrono::milliseconds(250);
  std::atomic<int> comm_errors{0};
  SpmdRuntime::run(3, opts, [&](Communicator& world) {
    auto buf = pattern(world.rank(), 16, 9.0);
    try {
      for (int round = 0; round < 8; ++round) {
        auto h = world.iallreduce_sum(std::span<double>(buf));
        h.wait();
      }
    } catch (const CommError&) {
      comm_errors.fetch_add(1);
    }
  });
  EXPECT_EQ(comm_errors.load(), 3);
}

TEST(AsyncCollectives, SingleRankHandlesAreTrivialAndFree) {
  const auto snaps = SpmdRuntime::run(1, [&](Communicator& world) {
    auto buf = pattern(0, 50, 1.0);
    const auto before = buf;
    auto hb = world.ibroadcast(std::span<double>(buf), 0);
    hb.wait();
    auto ha = world.iallreduce_sum(std::span<double>(buf));
    ha.wait();
    expect_bitwise_equal(buf, before, "single-rank async");
  });
  EXPECT_EQ(snaps[0].bytes_sent, 0u);
}

TEST(AsyncCollectives, WaitIsIdempotentAndDestructorCompletes) {
  SpmdRuntime::run(3, [&](Communicator& world) {
    auto a = pattern(world.rank(), 12, 2.0);
    auto want = a;
    world.broadcast(std::span<double>(want), 0);
    {
      auto h = world.ibroadcast(std::span<double>(a), 0);
      h.wait();
      h.wait();  // second wait must be a no-op
    }
    if (world.rank() == 0) expect_bitwise_equal(a, want, "idempotent wait");

    // Destructor-completed handle: never explicitly waited. Every rank must
    // still converge (the dtor runs the completion barriers).
    auto b = pattern(world.rank(), 12, 4.0);
    auto want_b = b;
    world.broadcast(std::span<double>(want_b), 1);
    {
      auto h = world.ibroadcast(std::span<double>(b), 1);
      (void)h;
    }
    if (world.rank() == 0) expect_bitwise_equal(b, want_b, "dtor wait");

    // Moved-from handles are inert; the moved-to handle completes.
    auto c = pattern(world.rank(), 12, 6.0);
    auto want_c = c;
    world.broadcast(std::span<double>(want_c), 2);
    auto h1 = world.ibroadcast(std::span<double>(c), 2);
    auto h2 = std::move(h1);
    h2.wait();
    if (world.rank() == 0) expect_bitwise_equal(c, want_c, "moved handle");
  });
}

// Starting any staging collective while a handle is in flight on the same
// group would clobber the staging slots the pending op still reads; the
// guard must reject it on every rank, after which the pending handle still
// completes cleanly.
TEST(AsyncCollectives, BlockingCollectiveRejectedWhileHandleInFlight) {
  SpmdRuntime::run(2, [&](Communicator& world) {
    auto a = pattern(world.rank(), 8, 1.0);
    auto want = a;
    world.broadcast(std::span<double>(want), 0);
    auto h = world.ibroadcast(std::span<double>(a), 0);
    auto other = pattern(world.rank(), 8, 3.0);
    EXPECT_THROW(world.allreduce_sum(std::span<double>(other)),
                 std::logic_error);
    h.wait();
    if (world.rank() == 0) expect_bitwise_equal(a, want, "post-guard wait");
  });
}

}  // namespace
}  // namespace agnn::comm
