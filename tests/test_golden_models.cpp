// Golden-value pinning for every model kind: forward outputs, training
// losses, and first-step weight gradients on a fixed tiny graph, committed
// as data (tests/golden/golden_values.txt). Any unintended numerical change
// anywhere in the stack — kernels, layers, loss, optimizer — shows up as a
// diff against these values.
//
// Regeneration (after an *intended* numerical change):
//     AGNN_REGEN_GOLDEN=1 ./test_golden_models
// rewrites the file in the source tree; commit the diff alongside the change
// that explains it.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "comm/communicator.hpp"
#include "core/model.hpp"
#include "dist/engine_factory.hpp"
#include "graph/graph.hpp"
#include "tensor/tuning_cache.hpp"
#include "test_utils.hpp"

namespace agnn {
namespace {

constexpr const char* kGoldenFile = AGNN_GOLDEN_DIR "/golden_values.txt";

// The pinned workload: 8 nodes, 4 features, 4 classes, 2 layers, 3 SGD
// steps. Small enough that the file is reviewable, deep enough to exercise
// both layer kinds of every model (hidden tanh + identity output).
constexpr index_t kNodes = 8;
constexpr index_t kFeatures = 4;
constexpr int kSteps = 3;

GnnConfig golden_config(ModelKind kind) {
  GnnConfig cfg;
  cfg.kind = kind;
  cfg.in_features = kFeatures;
  cfg.layer_widths = {kFeatures, kFeatures};
  cfg.hidden_activation = Activation::kTanh;
  cfg.seed = 2023;
  return cfg;
}

struct GoldenWorkload {
  CsrMatrix<double> adj;
  CsrMatrix<double> adj_t;
  DenseMatrix<double> x;
  std::vector<index_t> labels;
};

GoldenWorkload make_workload(ModelKind kind) {
  GoldenWorkload w;
  const auto g = testing::small_graph<double>(kNodes, 20, 97);
  w.adj = kind == ModelKind::kGCN ? graph::sym_normalize(g.adj) : g.adj;
  w.adj_t = w.adj.transposed();
  w.x = testing::random_dense<double>(kNodes, kFeatures, 101);
  w.labels.resize(kNodes);
  Rng rng(103);
  for (auto& l : w.labels) {
    l = static_cast<index_t>(rng.next_bounded(kFeatures));
  }
  return w;
}

// One model's pinned quantities, keyed for the golden file.
std::map<std::string, std::vector<double>> compute_quantities(ModelKind kind) {
  const GoldenWorkload w = make_workload(kind);
  std::map<std::string, std::vector<double>> q;

  GnnModel<double> model(golden_config(kind));

  // Forward pass and first-step gradients (pre-update parameters).
  std::vector<LayerCache<double>> caches;
  const DenseMatrix<double> h = model.forward(w.adj, w.x, caches);
  q["forward"] = {h.flat().begin(), h.flat().end()};
  LossResult<double> loss;
  softmax_cross_entropy(h, std::span<const index_t>(w.labels), loss);
  const auto grads = model.backward(w.adj, w.adj_t, caches, loss.grad);
  q["grad_w0"] = {grads[0].d_w.flat().begin(), grads[0].d_w.flat().end()};
  if (!grads[0].d_a.empty()) q["grad_a0"] = grads[0].d_a;

  // Training losses and post-training layer-0 weights.
  Trainer<double> trainer(model, std::make_unique<SgdOptimizer<double>>(0.05));
  q["losses"] = trainer.train(w.adj, w.x, std::span<const index_t>(w.labels),
                              kSteps);
  const auto wf = model.layer(0).weights().flat();
  q["final_w0"] = {wf.begin(), wf.end()};
  return q;
}

using GoldenData = std::map<std::string, std::vector<double>>;

// File format: one record per line, whitespace-separated:
//     <kind>.<key> <count> <value>*      (values printed with %.17g)
GoldenData load_golden() {
  std::ifstream in(kGoldenFile);
  GoldenData data;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ss(line);
    std::string key;
    std::size_t count = 0;
    ss >> key >> count;
    std::vector<double> values(count);
    for (double& v : values) ss >> v;
    EXPECT_FALSE(ss.fail()) << "golden file: bad record " << key;
    data[key] = std::move(values);
  }
  return data;
}

void regenerate() {
  std::ofstream out(kGoldenFile, std::ios::trunc);
  ASSERT_TRUE(out.good()) << "cannot write " << kGoldenFile;
  out << "# Pinned model outputs; regenerate with AGNN_REGEN_GOLDEN=1 "
         "./test_golden_models\n";
  for (ModelKind kind : {ModelKind::kVA, ModelKind::kAGNN, ModelKind::kGAT,
                         ModelKind::kGCN, ModelKind::kGIN}) {
    for (const auto& [key, values] : compute_quantities(kind)) {
      out << to_string(kind) << '.' << key << ' ' << values.size();
      char buf[64];
      for (double v : values) {
        std::snprintf(buf, sizeof(buf), " %.17g", v);
        out << buf;
      }
      out << '\n';
    }
  }
  ASSERT_TRUE(out.good()) << "write failed: " << kGoldenFile;
}

class GoldenModels : public ::testing::TestWithParam<ModelKind> {};

TEST_P(GoldenModels, MatchesPinnedValues) {
  if (std::getenv("AGNN_REGEN_GOLDEN") != nullptr) {
    regenerate();
    GTEST_SKIP() << "regenerated " << kGoldenFile;
  }
  const ModelKind kind = GetParam();
  const GoldenData golden = load_golden();
  ASSERT_FALSE(golden.empty())
      << "missing " << kGoldenFile
      << " — run with AGNN_REGEN_GOLDEN=1 to create it";
  const auto actual = compute_quantities(kind);
  for (const auto& [key, values] : actual) {
    const std::string full = std::string(to_string(kind)) + "." + key;
    const auto it = golden.find(full);
    ASSERT_NE(it, golden.end()) << "golden file lacks " << full;
    ASSERT_EQ(it->second.size(), values.size()) << full;
    for (std::size_t i = 0; i < values.size(); ++i) {
      // abs+rel tolerance: absorbs OpenMP reassociation across thread
      // counts while still catching any real numerical change.
      const double tol = 1e-9 * (1.0 + std::abs(it->second[i]));
      EXPECT_NEAR(values[i], it->second[i], tol) << full << "[" << i << "]";
    }
  }
}

// Every schedule policy must reproduce the same pinned goldens — the values
// were not regenerated for the scheduler work, so this asserts the chunked
// paths stay on the pinned numerical trajectory for all five model kinds.
// AGNN_SCHEDULE_GRAIN=4 forces real splits on the tiny 8-node workload.
TEST_P(GoldenModels, AllPoliciesMatchPinnedValues) {
  if (std::getenv("AGNN_REGEN_GOLDEN") != nullptr) {
    GTEST_SKIP() << "regeneration handled by MatchesPinnedValues";
  }
  const ModelKind kind = GetParam();
  const GoldenData golden = load_golden();
  ASSERT_FALSE(golden.empty()) << "missing " << kGoldenFile;
  ::setenv("AGNN_SCHEDULE_GRAIN", "4", 1);
  for (const char* policy : {"row", "edge", "hybrid"}) {
    ::setenv("AGNN_SCHEDULE", policy, 1);
    const auto actual = compute_quantities(kind);
    for (const auto& [key, values] : actual) {
      const std::string full = std::string(to_string(kind)) + "." + key;
      const auto it = golden.find(full);
      ASSERT_NE(it, golden.end()) << "golden file lacks " << full;
      ASSERT_EQ(it->second.size(), values.size()) << full;
      for (std::size_t i = 0; i < values.size(); ++i) {
        // Same tolerance as the primary golden check: split-row partials
        // reassociate within it.
        const double tol = 1e-9 * (1.0 + std::abs(it->second[i]));
        EXPECT_NEAR(values[i], it->second[i], tol)
            << full << "[" << i << "] under AGNN_SCHEDULE=" << policy;
      }
    }
  }
  ::unsetenv("AGNN_SCHEDULE");
  ::unsetenv("AGNN_SCHEDULE_GRAIN");
}

// The autotuner must reproduce the pinned goldens bitwise relative to the
// untuned run — its candidate space is restricted to the untuned path's
// bitwise-equivalence class (autotune.hpp) — so the same pinned values hold
// at the same tolerance for all five model kinds. The cache starts cold so
// the cold-sampling path itself runs inside the golden workload, then the
// warm second pass must land on identical values.
TEST_P(GoldenModels, TunedMatchesPinnedValues) {
  if (std::getenv("AGNN_REGEN_GOLDEN") != nullptr) {
    GTEST_SKIP() << "regeneration handled by MatchesPinnedValues";
  }
  const ModelKind kind = GetParam();
  const GoldenData golden = load_golden();
  ASSERT_FALSE(golden.empty()) << "missing " << kGoldenFile;
  TuningCache::global().clear();
  ::setenv("AGNN_TUNE", "on", 1);
  for (const char* pass : {"cold", "warm"}) {
    const auto actual = compute_quantities(kind);
    for (const auto& [key, values] : actual) {
      const std::string full = std::string(to_string(kind)) + "." + key;
      const auto it = golden.find(full);
      ASSERT_NE(it, golden.end()) << "golden file lacks " << full;
      ASSERT_EQ(it->second.size(), values.size()) << full;
      for (std::size_t i = 0; i < values.size(); ++i) {
        const double tol = 1e-9 * (1.0 + std::abs(it->second[i]));
        EXPECT_NEAR(values[i], it->second[i], tol)
            << full << "[" << i << "] under AGNN_TUNE=on (" << pass
            << " cache)";
      }
    }
  }
  ::unsetenv("AGNN_TUNE");
  TuningCache::global().clear();
}

// Every distribution policy must land on the same pinned goldens — the
// values were NOT regenerated for the policy-family work, so this asserts
// the 1D/1.5D/2D/3D engines (including the pipelined SUMMA panel loop and
// the depth-replicated 3D gradients) stay on the pinned numerical
// trajectory for all five model kinds. Only the engine-observable keys are
// checked: forward outputs, training losses, and post-training weights.
TEST_P(GoldenModels, AllDistributionPoliciesMatchPinnedValues) {
  if (std::getenv("AGNN_REGEN_GOLDEN") != nullptr) {
    GTEST_SKIP() << "regeneration handled by MatchesPinnedValues";
  }
  const ModelKind kind = GetParam();
  const GoldenData golden = load_golden();
  ASSERT_FALSE(golden.empty()) << "missing " << kGoldenFile;
  const GoldenWorkload w = make_workload(kind);

  struct PolicyCase {
    dist::DistPolicy policy;
    int ranks;
    int depth_hint;
  };
  const PolicyCase cases[] = {{dist::DistPolicy::k1D, 2, 0},
                              {dist::DistPolicy::k1_5D, 4, 0},
                              {dist::DistPolicy::k2D, 4, 0},
                              {dist::DistPolicy::k3D, 8, 2}};
  for (const PolicyCase& pc : cases) {
    std::map<std::string, std::vector<double>> q;
    comm::SpmdRuntime::run(pc.ranks, [&](comm::Communicator& world) {
      GnnModel<double> model(golden_config(kind));
      auto engine = dist::make_dist_engine(pc.policy, world, w.adj, model,
                                           pc.depth_hint);
      const auto h = engine->infer(w.x);
      SgdOptimizer<double> opt(0.05);
      std::vector<double> losses;
      for (int s = 0; s < kSteps; ++s) {
        losses.push_back(
            engine->train_step(w.x, std::span<const index_t>(w.labels), opt)
                .loss);
      }
      if (world.rank() == 0) {
        q["forward"] = {h.flat().begin(), h.flat().end()};
        q["losses"] = losses;
        const auto wf = model.layer(0).weights().flat();
        q["final_w0"] = {wf.begin(), wf.end()};
      }
    });
    for (const auto& [key, values] : q) {
      const std::string full = std::string(to_string(kind)) + "." + key;
      const auto it = golden.find(full);
      ASSERT_NE(it, golden.end()) << "golden file lacks " << full;
      ASSERT_EQ(it->second.size(), values.size()) << full;
      for (std::size_t i = 0; i < values.size(); ++i) {
        // Same tolerance as the primary golden check: distributed partial
        // sums reassociate within it.
        const double tol = 1e-9 * (1.0 + std::abs(it->second[i]));
        EXPECT_NEAR(values[i], it->second[i], tol)
            << full << "[" << i << "] under AGNN_DIST="
            << dist::to_string(pc.policy) << " p=" << pc.ranks;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, GoldenModels,
                         ::testing::Values(ModelKind::kVA, ModelKind::kAGNN,
                                           ModelKind::kGAT, ModelKind::kGCN,
                                           ModelKind::kGIN),
                         [](const ::testing::TestParamInfo<ModelKind>& tpi) {
                           return std::string(to_string(tpi.param));
                         });

}  // namespace
}  // namespace agnn
