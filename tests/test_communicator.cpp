// Tests for the simulated-cluster SPMD runtime: collectives against
// sequential oracles, sub-communicator splits, one-sided windows, and the
// volume-accounting conventions.
#include <gtest/gtest.h>

#include <numeric>

#include "comm/communicator.hpp"
#include "comm/cost_model.hpp"

namespace agnn::comm {
namespace {

class RankSweep : public ::testing::TestWithParam<int> {};

TEST_P(RankSweep, BroadcastDeliversRootBuffer) {
  const int p = GetParam();
  SpmdRuntime::run(p, [&](Communicator& c) {
    std::vector<double> buf(8, c.rank() == 2 % p ? 42.0 : -1.0);
    if (c.rank() == 2 % p) {
      for (std::size_t i = 0; i < buf.size(); ++i) buf[i] = static_cast<double>(i);
    }
    c.broadcast(std::span<double>(buf), 2 % p);
    for (std::size_t i = 0; i < buf.size(); ++i) {
      EXPECT_DOUBLE_EQ(buf[i], static_cast<double>(i)) << "rank " << c.rank();
    }
  });
}

TEST_P(RankSweep, ReduceSumAtRoot) {
  const int p = GetParam();
  SpmdRuntime::run(p, [&](Communicator& c) {
    std::vector<int> buf{c.rank() + 1, 10 * (c.rank() + 1)};
    c.reduce_sum(std::span<int>(buf), 0);
    if (c.rank() == 0) {
      const int expected = p * (p + 1) / 2;
      EXPECT_EQ(buf[0], expected);
      EXPECT_EQ(buf[1], 10 * expected);
    }
  });
}

TEST_P(RankSweep, AllreduceSumEverywhere) {
  const int p = GetParam();
  SpmdRuntime::run(p, [&](Communicator& c) {
    std::vector<double> buf{static_cast<double>(c.rank()), 1.0};
    c.allreduce_sum(std::span<double>(buf));
    EXPECT_DOUBLE_EQ(buf[0], static_cast<double>(p * (p - 1) / 2));
    EXPECT_DOUBLE_EQ(buf[1], static_cast<double>(p));
  });
}

TEST_P(RankSweep, AllreduceMaxEverywhere) {
  const int p = GetParam();
  SpmdRuntime::run(p, [&](Communicator& c) {
    std::vector<double> buf{static_cast<double>(c.rank() % 3),
                            -static_cast<double>(c.rank())};
    c.allreduce_max(std::span<double>(buf));
    EXPECT_DOUBLE_EQ(buf[0], static_cast<double>(std::min(p - 1, 2)));
    EXPECT_DOUBLE_EQ(buf[1], 0.0);
  });
}

TEST_P(RankSweep, AllgathervConcatenatesInRankOrder) {
  const int p = GetParam();
  SpmdRuntime::run(p, [&](Communicator& c) {
    // Variable sizes: rank r contributes r+1 values, all equal to r.
    std::vector<int> mine(static_cast<std::size_t>(c.rank() + 1), c.rank());
    std::vector<std::size_t> offsets;
    const auto all = c.allgatherv(std::span<const int>(mine), &offsets);
    ASSERT_EQ(all.size(), static_cast<std::size_t>(p * (p + 1) / 2));
    std::size_t idx = 0;
    for (int r = 0; r < p; ++r) {
      EXPECT_EQ(offsets[static_cast<std::size_t>(r)], idx);
      for (int i = 0; i <= r; ++i) EXPECT_EQ(all[idx++], r);
    }
  });
}

TEST_P(RankSweep, WindowGetReadsPeerData) {
  const int p = GetParam();
  SpmdRuntime::run(p, [&](Communicator& c) {
    std::vector<double> mine(16);
    for (std::size_t i = 0; i < mine.size(); ++i) {
      mine[i] = 100.0 * c.rank() + static_cast<double>(i);
    }
    auto win = c.expose(std::span<const double>(mine));
    const int peer = (c.rank() + 1) % p;
    std::vector<double> got(4);
    win.get(std::span<double>(got), peer, 3);
    win.close();
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_DOUBLE_EQ(got[i], 100.0 * peer + 3.0 + static_cast<double>(i));
    }
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, RankSweep, ::testing::Values(1, 2, 3, 4, 7, 8));

TEST(Communicator, SplitFormsRowAndColumnGroups) {
  // 2x3 grid: split by row then by column; check sizes and ranks.
  SpmdRuntime::run(6, [&](Communicator& c) {
    const int row = c.rank() / 3, col = c.rank() % 3;
    Communicator row_comm = c.split(row, col);
    Communicator col_comm = c.split(100 + col, row);
    EXPECT_EQ(row_comm.size(), 3);
    EXPECT_EQ(row_comm.rank(), col);
    EXPECT_EQ(col_comm.size(), 2);
    EXPECT_EQ(col_comm.rank(), row);
    // Collectives on subgroups see only group members.
    std::vector<int> buf{1};
    row_comm.allreduce_sum(std::span<int>(buf));
    EXPECT_EQ(buf[0], 3);
    std::vector<int> buf2{c.rank()};
    col_comm.allreduce_sum(std::span<int>(buf2));
    EXPECT_EQ(buf2[0], col + (col + 3));  // ranks (0,col) and (1,col)
  });
}

TEST(Communicator, SplitChargesToGlobalStats) {
  const auto stats = SpmdRuntime::run(4, [&](Communicator& c) {
    Communicator sub = c.split(c.rank() % 2, c.rank());
    std::vector<double> buf(10, 1.0);
    sub.allreduce_sum(std::span<double>(buf));
  });
  for (const auto& s : stats) {
    EXPECT_EQ(s.bytes_sent, 2 * 10 * sizeof(double));
  }
}

TEST(Communicator, VolumeAccountingConventions) {
  constexpr std::size_t kWords = 64;
  const auto stats = SpmdRuntime::run(4, [&](Communicator& c) {
    std::vector<double> buf(kWords, 1.0);
    c.broadcast(std::span<double>(buf), 0);
  });
  // broadcast: every rank charged w bytes, ceil(log2(4)) = 2 supersteps.
  for (const auto& s : stats) {
    EXPECT_EQ(s.bytes_sent, kWords * sizeof(double));
    EXPECT_EQ(s.supersteps, 2u);
  }
}

TEST(Communicator, AllreduceChargesTwiceTheBuffer) {
  constexpr std::size_t kWords = 32;
  const auto stats = SpmdRuntime::run(8, [&](Communicator& c) {
    std::vector<float> buf(kWords, static_cast<float>(c.rank()));
    c.allreduce_sum(std::span<float>(buf));
  });
  for (const auto& s : stats) {
    EXPECT_EQ(s.bytes_sent, 2 * kWords * sizeof(float));
    EXPECT_EQ(s.supersteps, 2u * 3u);
  }
}

TEST(Communicator, WindowChargesTheOwner) {
  const auto stats = SpmdRuntime::run(2, [&](Communicator& c) {
    std::vector<double> mine(100, 1.0);
    auto win = c.expose(std::span<const double>(mine));
    if (c.rank() == 0) {
      std::vector<double> got(40);
      win.get(std::span<double>(got), 1, 0);  // rank 0 pulls from rank 1
    }
    win.close();
  });
  EXPECT_EQ(stats[0].bytes_sent, 0u);  // rank 0 only received
  EXPECT_EQ(stats[1].bytes_sent, 40 * sizeof(double));  // rank 1 sent
}

TEST(Communicator, SelfGetIsFree) {
  const auto stats = SpmdRuntime::run(2, [&](Communicator& c) {
    std::vector<double> mine(10, 1.0);
    auto win = c.expose(std::span<const double>(mine));
    std::vector<double> got(10);
    win.get(std::span<double>(got), c.rank(), 0);
    win.close();
  });
  for (const auto& s : stats) EXPECT_EQ(s.bytes_sent, 0u);
}

TEST(Communicator, SingleRankCollectivesAreFree) {
  const auto stats = SpmdRuntime::run(1, [&](Communicator& c) {
    std::vector<double> buf(100, 1.0);
    c.broadcast(std::span<double>(buf), 0);
    c.allreduce_sum(std::span<double>(buf));
    c.reduce_sum(std::span<double>(buf), 0);
  });
  EXPECT_EQ(stats[0].bytes_sent, 0u);
}

TEST(Communicator, ResetAllStatsZeroesCounters) {
  const auto stats = SpmdRuntime::run(3, [&](Communicator& c) {
    std::vector<double> buf(50, 1.0);
    c.allreduce_sum(std::span<double>(buf));
    reset_all_stats(c);
  });
  for (const auto& s : stats) {
    EXPECT_EQ(s.bytes_sent, 0u);
    EXPECT_EQ(s.supersteps, 0u);
  }
}

TEST(Communicator, ComputeRegionAccumulatesThreadTime) {
  const auto stats = SpmdRuntime::run(2, [&](Communicator& c) {
    ComputeRegion region(c.stats());
    // Busy loop long enough to register on the thread CPU clock.
    volatile double x = 0;
    for (int i = 0; i < 2000000; ++i) x = x + 1.0;
    (void)x;
  });
  for (const auto& s : stats) EXPECT_GT(s.compute_seconds, 0.0);
}

TEST(CostModel, AlphaBetaArithmetic) {
  CostModel m{.alpha = 1e-6, .beta = 1e-9};
  VolumeSnapshot s{.bytes_sent = 1000, .messages = 2, .supersteps = 5,
                   .compute_seconds = 0.25};
  EXPECT_DOUBLE_EQ(m.comm_time(s), 5e-6 + 1000e-9);
  std::vector<VolumeSnapshot> all{s, {.bytes_sent = 2000, .messages = 1,
                                      .supersteps = 1, .compute_seconds = 0.5}};
  // comm_time(s) = 6e-6 dominates comm_time of the second snapshot (3e-6).
  EXPECT_DOUBLE_EQ(m.max_comm_time(all), 5e-6 + 1000e-9);
  EXPECT_DOUBLE_EQ(m.total_time(all), 0.5 + 5e-6 + 1000e-9);
}

TEST(CostModel, SnapshotAggregates) {
  std::vector<VolumeSnapshot> all{{.bytes_sent = 10, .messages = 1, .supersteps = 2,
                                   .compute_seconds = 0.1},
                                  {.bytes_sent = 30, .messages = 2, .supersteps = 7,
                                   .compute_seconds = 0.4}};
  EXPECT_EQ(max_bytes_sent(all), 30u);
  EXPECT_EQ(total_bytes_sent(all), 40u);
  EXPECT_EQ(max_supersteps(all), 7u);
  EXPECT_DOUBLE_EQ(max_compute_seconds(all), 0.4);
}

// Collectives must validate buffer-size agreement on every rank. Before the
// check, a receiver whose buffer was larger than the root's read past the
// root's staged allocation. An assert failure inside a rank thread escapes
// the SpmdRuntime body and terminates, so these are death tests.
TEST(CommunicatorDeath, BroadcastSizeMismatchIsRejected) {
  EXPECT_DEATH(SpmdRuntime::run(2,
                                [&](Communicator& c) {
                                  std::vector<double> buf(
                                      c.rank() == 0 ? 4u : 8u, 1.0);
                                  c.broadcast(std::span<double>(buf), 0);
                                }),
               "sizes\? must match");
}

TEST(CommunicatorDeath, ReduceSumSizeMismatchIsRejected) {
  EXPECT_DEATH(SpmdRuntime::run(3,
                                [&](Communicator& c) {
                                  std::vector<int> buf(
                                      c.rank() == 1 ? 2u : 5u, 1);
                                  c.reduce_sum(std::span<int>(buf), 0);
                                }),
               "sizes\? must match");
}

TEST(CommunicatorDeath, AllreduceSizeMismatchIsRejected) {
  EXPECT_DEATH(SpmdRuntime::run(2,
                                [&](Communicator& c) {
                                  std::vector<double> buf(
                                      c.rank() == 0 ? 3u : 6u, 1.0);
                                  c.allreduce_sum(std::span<double>(buf));
                                }),
               "sizes\? must match");
}

// The allreduce scratch is context-owned and reused; interleaving different
// element types and sizes (including empty) must stay correct call to call.
TEST(Communicator, AllreduceScratchSurvivesSizeAndTypeChanges) {
  SpmdRuntime::run(4, [&](Communicator& c) {
    std::vector<double> big(1024, 1.0);
    c.allreduce_sum(std::span<double>(big));
    for (double v : big) EXPECT_DOUBLE_EQ(v, 4.0);

    std::vector<int> small{c.rank()};
    c.allreduce_sum(std::span<int>(small));
    EXPECT_EQ(small[0], 6);

    std::vector<float> mx{static_cast<float>(c.rank())};
    c.allreduce_max(std::span<float>(mx));
    EXPECT_FLOAT_EQ(mx[0], 3.0f);

    std::vector<double> empty;
    c.allreduce_sum(std::span<double>(empty));  // no-op, must not touch scratch state

    std::vector<double> again(17, static_cast<double>(c.rank()));
    c.allreduce_sum(std::span<double>(again));
    for (double v : again) EXPECT_DOUBLE_EQ(v, 6.0);
  });
}

}  // namespace
}  // namespace agnn::comm
