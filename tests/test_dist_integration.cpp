// Distributed integration tests: mixed layer widths through the 1.5D
// engine, and end-to-end distributed training that actually solves a task
// (not just matching the sequential engine step-for-step).
#include <gtest/gtest.h>

#include "baseline/dist_local_engine.hpp"
#include "comm/communicator.hpp"
#include "core/model.hpp"
#include "dist/dist_engine.hpp"
#include "graph/graph.hpp"
#include "graph/sbm.hpp"
#include "test_utils.hpp"

namespace agnn::dist {
namespace {

TEST(DistIntegration, MixedLayerWidthsMatchSequential) {
  // Widths 7 -> 5 -> 3: exercises every engine path where k_in != k_out.
  const index_t n = 24;
  const auto g = testing::small_graph<double>(n, 110, 211);
  const auto x = testing::random_dense<double>(n, 7, 213);
  std::vector<index_t> labels(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) labels[static_cast<std::size_t>(i)] = i % 3;

  for (const ModelKind kind : {ModelKind::kVA, ModelKind::kAGNN, ModelKind::kGAT,
                               ModelKind::kGCN, ModelKind::kGIN}) {
    GnnConfig cfg;
    cfg.kind = kind;
    cfg.in_features = 7;
    cfg.layer_widths = {5, 3};
    cfg.hidden_activation = Activation::kTanh;
    cfg.mlp_activation = Activation::kTanh;
    cfg.seed = 215;
    const CsrMatrix<double> adj =
        kind == ModelKind::kGCN ? graph::sym_normalize(g.adj) : g.adj;

    GnnModel<double> seq(cfg);
    Trainer<double> trainer(seq, std::make_unique<SgdOptimizer<double>>(0.05));
    const double ref_loss = trainer.step(adj, adj.transposed(), x, labels).loss;
    const auto ref_out = seq.infer(adj, x);

    comm::SpmdRuntime::run(4, [&](comm::Communicator& world) {
      GnnModel<double> model(cfg);
      DistGnnEngine<double> engine(world, adj, model);
      SgdOptimizer<double> opt(0.05);
      ASSERT_NEAR(engine.train_step(x, labels, opt).loss, ref_loss, 1e-9)
          << to_string(kind) << " mixed widths (1.5D)";
      const auto out = engine.infer(x);
      for (index_t i = 0; i < ref_out.size(); ++i) {
        ASSERT_NEAR(out.data()[i], ref_out.data()[i], 1e-8) << to_string(kind);
      }
    });
    comm::SpmdRuntime::run(3, [&](comm::Communicator& world) {
      GnnModel<double> model(cfg);
      baseline::DistLocalEngine<double> engine(world, adj, model);
      SgdOptimizer<double> opt(0.05);
      ASSERT_NEAR(engine.train_step(x, labels, opt).loss, ref_loss, 1e-9)
          << to_string(kind) << " mixed widths (local)";
    });
  }
}

TEST(DistIntegration, DistributedTrainingSolvesPlantedTask) {
  // The distributed engine must not just match steps — a full training run
  // on 9 simulated ranks must reach high accuracy on a learnable task.
  const index_t n = 63;  // not divisible by the grid side
  const auto sbm = graph::generate_sbm(
      {.n = n, .communities = 2, .p_in = 0.3, .p_out = 0.03, .seed = 217});
  graph::BuildOptions opt;
  opt.add_self_loops = true;
  const auto adj = graph::build_graph<double>(sbm.edges, opt).adj;
  DenseMatrix<double> x(n, 4);
  Rng rng(219);
  for (index_t i = 0; i < n; ++i) {
    for (index_t f = 0; f < 4; ++f) {
      x(i, f) = (sbm.labels[static_cast<std::size_t>(i)] == 0 ? 0.5 : -0.5) +
                rng.next_uniform(-1.0, 1.0);
    }
  }
  GnnConfig cfg;
  cfg.kind = ModelKind::kGAT;
  cfg.in_features = 4;
  cfg.layer_widths = {8, 2};
  cfg.hidden_activation = Activation::kTanh;
  cfg.seed = 221;

  comm::SpmdRuntime::run(9, [&](comm::Communicator& world) {
    GnnModel<double> model(cfg);
    DistGnnEngine<double> engine(world, adj, model);
    AdamOptimizer<double> adam(0.01);
    double first = 0, last = 0;
    for (int e = 0; e < 120; ++e) {
      const auto res = engine.train_step(x, sbm.labels, adam);
      if (e == 0) first = res.loss;
      last = res.loss;
    }
    EXPECT_LT(last, 0.3 * first) << "rank " << world.rank();
    const auto h = engine.infer(x);
    EXPECT_GT(accuracy<double>(h, sbm.labels), 0.9);
  });
}

TEST(DistIntegration, InferenceIdenticalAcrossAllFourEngines) {
  // Sequential, 1.5D, 1D, and ghost-exchange engines: one model, one graph,
  // four execution strategies, identical output.
  const index_t n = 30, k = 5;
  const auto g = testing::small_graph<double>(n, 140, 223);
  const auto x = testing::random_dense<double>(n, k, 227);
  GnnConfig cfg;
  cfg.kind = ModelKind::kGAT;
  cfg.in_features = k;
  cfg.layer_widths = {k, k};
  cfg.seed = 229;
  GnnModel<double> seq(cfg);
  const auto ref = seq.infer(g.adj, x);

  comm::SpmdRuntime::run(4, [&](comm::Communicator& world) {
    GnnModel<double> model(cfg);
    DistGnnEngine<double> engine(world, g.adj, model);
    const auto out = engine.infer(x);
    for (index_t i = 0; i < ref.size(); ++i) {
      ASSERT_NEAR(out.data()[i], ref.data()[i], 1e-8) << "1.5D";
    }
  });
  comm::SpmdRuntime::run(5, [&](comm::Communicator& world) {
    GnnModel<double> model(cfg);
    baseline::DistLocalEngine<double> engine(world, g.adj, model);
    const auto out = engine.infer(x);
    for (index_t i = 0; i < ref.size(); ++i) {
      ASSERT_NEAR(out.data()[i], ref.data()[i], 1e-8) << "ghost-exchange";
    }
  });
}

}  // namespace
}  // namespace agnn::dist
