// The 1D-distribution ablation engine must compute exactly what the
// sequential and 1.5D engines compute, while moving Theta(n k) words per
// rank — the gap that justifies the paper's 1.5D choice (Section 6.3).
#include <gtest/gtest.h>

#include "comm/communicator.hpp"
#include "core/model.hpp"
#include "dist/dist_1d_engine.hpp"
#include "dist/dist_engine.hpp"
#include "graph/graph.hpp"
#include "test_utils.hpp"

namespace agnn::dist {
namespace {

struct Case1d {
  ModelKind kind;
  int ranks;
  index_t n;
  index_t k;
  int layers;
};

GnnConfig make_config(const Case1d& p) {
  GnnConfig cfg;
  cfg.kind = p.kind;
  cfg.in_features = p.k;
  cfg.layer_widths.assign(static_cast<std::size_t>(p.layers), p.k);
  cfg.hidden_activation = Activation::kTanh;
  cfg.mlp_activation = Activation::kTanh;
  cfg.seed = 321;
  return cfg;
}

class Dist1dSweep : public ::testing::TestWithParam<Case1d> {};

TEST_P(Dist1dSweep, TrainingMatchesSequential) {
  const auto& p = GetParam();
  const auto g = testing::small_graph<double>(p.n, 5 * p.n, 61 + p.n);
  const CsrMatrix<double> adj =
      p.kind == ModelKind::kGCN ? graph::sym_normalize(g.adj) : g.adj;
  const CsrMatrix<double> adj_t = adj.transposed();
  const auto x = testing::random_dense<double>(p.n, p.k, 63);
  std::vector<index_t> labels(static_cast<std::size_t>(p.n));
  Rng rng(67);
  for (auto& l : labels) {
    l = static_cast<index_t>(rng.next_bounded(static_cast<std::uint64_t>(p.k)));
  }

  GnnModel<double> seq_model(make_config(p));
  Trainer<double> trainer(seq_model, std::make_unique<SgdOptimizer<double>>(0.05));
  std::vector<double> ref_losses;
  for (int s = 0; s < 2; ++s) {
    ref_losses.push_back(trainer.step(adj, adj_t, x, labels).loss);
  }

  comm::SpmdRuntime::run(p.ranks, [&](comm::Communicator& world) {
    GnnModel<double> model(make_config(p));
    Dist1dGlobalEngine<double> engine(world, adj, model);
    SgdOptimizer<double> opt(0.05);
    for (int s = 0; s < 2; ++s) {
      const auto res = engine.train_step(x, labels, opt);
      ASSERT_NEAR(res.loss, ref_losses[static_cast<std::size_t>(s)], 1e-8)
          << to_string(p.kind) << " step " << s;
    }
    for (std::size_t l = 0; l < model.num_layers(); ++l) {
      const auto& w_dist = model.layer(l).weights();
      const auto& w_seq = seq_model.layer(l).weights();
      for (index_t i = 0; i < w_seq.size(); ++i) {
        ASSERT_NEAR(w_dist.data()[i], w_seq.data()[i], 1e-8);
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    Cases, Dist1dSweep,
    ::testing::Values(Case1d{ModelKind::kGCN, 3, 22, 4, 2},
                      Case1d{ModelKind::kVA, 3, 22, 4, 2},
                      Case1d{ModelKind::kVA, 5, 23, 3, 2},
                      Case1d{ModelKind::kAGNN, 3, 22, 4, 2},
                      Case1d{ModelKind::kGAT, 3, 22, 4, 2},
                      Case1d{ModelKind::kGAT, 5, 23, 3, 3},
                      Case1d{ModelKind::kGIN, 3, 22, 4, 2},
                      Case1d{ModelKind::kGIN, 5, 23, 3, 2}),
    [](const auto& info) {
      return std::string(to_string(info.param.kind)) + "_p" +
             std::to_string(info.param.ranks) + "_L" +
             std::to_string(info.param.layers);
    });

TEST(Dist1d, VolumeIsThetaNkPerLayerAndExceeds15dAtScale) {
  const index_t n = 256, k = 8;
  const auto g = testing::small_graph<double>(n, 2000, 71);
  const auto x = testing::random_dense<double>(n, k, 73);
  GnnConfig cfg;
  cfg.kind = ModelKind::kVA;
  cfg.in_features = k;
  cfg.layer_widths = {k, k};
  cfg.seed = 2;

  auto volume_1d = [&](int ranks) {
    const auto stats = comm::SpmdRuntime::run(ranks, [&](comm::Communicator& world) {
      GnnModel<double> model(cfg);
      Dist1dGlobalEngine<double> engine(world, g.adj, model);
      comm::reset_all_stats(world);
      engine.forward(x, nullptr);
    });
    return comm::max_bytes_sent(stats);
  };
  auto volume_15d = [&](int ranks) {
    const auto stats = comm::SpmdRuntime::run(ranks, [&](comm::Communicator& world) {
      GnnModel<double> model(cfg);
      DistGnnEngine<double> engine(world, g.adj, model);
      comm::reset_all_stats(world);
      engine.forward(x, nullptr);
    });
    return comm::max_bytes_sent(stats);
  };

  // 1D forward volume per layer ~ allgather (n - n/p) k + k^2: nearly flat
  // in p.
  const auto v1d_4 = volume_1d(4);
  const auto v1d_16 = volume_1d(16);
  const auto v1d_64 = volume_1d(64);
  const double flat_ratio =
      static_cast<double>(v1d_16) / static_cast<double>(v1d_4);
  EXPECT_GT(flat_ratio, 0.9);
  EXPECT_LT(flat_ratio, 1.4);
  // 1.5D shrinks with sqrt(p): with ~4 block moves per layer it crosses the
  // 1D scheme around p = 16 and wins clearly at p = 64 (the Section 6.3
  // rationale for the 1.5D choice at scale).
  EXPECT_LT(volume_15d(64), v1d_64 / 1.5);
  EXPECT_LT(volume_15d(64), volume_15d(16));
}

}  // namespace
}  // namespace agnn::dist
