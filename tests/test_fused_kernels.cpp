// The fused Psi kernels (Section 6.2) must agree exactly with the unfused
// reference implementations that materialize the virtual dense matrices.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstdlib>

#include "tensor/fused.hpp"
#include "tensor/reference_impls.hpp"
#include "tensor/schedule.hpp"
#include "tensor/spmm.hpp"
#include "test_utils.hpp"

namespace agnn {
namespace {

using testing::random_dense;
using testing::random_sparse;

class FusedSweep : public ::testing::TestWithParam<std::tuple<int, int, double, int>> {};

TEST_P(FusedSweep, VaMatchesUnfused) {
  const auto [n, k, density, seed] = GetParam();
  const auto a = random_sparse<double>(n, density, seed, /*binary=*/true);
  const auto h = random_dense<double>(n, k, seed + 100);
  testing::expect_sparse_near(psi_va(a, h), reference::psi_va_unfused(a, h), 1e-9,
                              "psi_va");
}

TEST_P(FusedSweep, AgnnMatchesUnfused) {
  const auto [n, k, density, seed] = GetParam();
  const auto a = random_sparse<double>(n, density, seed, /*binary=*/true);
  const auto h = random_dense<double>(n, k, seed + 200);
  testing::expect_sparse_near(psi_agnn(a, h), reference::psi_agnn_unfused(a, h),
                              1e-9, "psi_agnn");
}

TEST_P(FusedSweep, GatScoresMatchUnfused) {
  const auto [n, k, density, seed] = GetParam();
  const auto a = random_sparse<double>(n, density, seed, /*binary=*/true);
  const auto hp = random_dense<double>(n, k, seed + 300);
  const auto a1 = random_dense<double>(k, 1, seed + 301);
  const auto a2 = random_dense<double>(k, 1, seed + 302);
  const auto s1 = matvec(hp, std::span<const double>(a1.data(), static_cast<std::size_t>(k)));
  const auto s2 = matvec(hp, std::span<const double>(a2.data(), static_cast<std::size_t>(k)));
  const double slope = 0.2;
  const auto gp = psi_gat<double>(a, s1, s2, slope);
  // Pre-softmax scores against the unfused rank-1 materialization.
  const auto scores_ref = reference::gat_scores_unfused<double>(a, s1, s2, slope);
  // psi_gat caches *pre-activation* C; compare post-activation A ⊙ lrelu(C).
  auto e_fused = gp.scores_pre;
  {
    auto v = e_fused.vals_mutable();
    for (index_t i = 0; i < e_fused.nnz(); ++i) {
      const double c = v[static_cast<std::size_t>(i)];
      v[static_cast<std::size_t>(i)] = (c > 0 ? c : slope * c) * a.val_at(i);
    }
  }
  testing::expect_sparse_near(e_fused, scores_ref, 1e-9, "gat scores");
  // Softmax result against the sparse softmax of the reference scores.
  testing::expect_sparse_near(gp.psi, row_softmax(scores_ref), 1e-9, "gat psi");
}

INSTANTIATE_TEST_SUITE_P(
    Cases, FusedSweep,
    ::testing::Values(std::tuple{5, 3, 0.6, 1}, std::tuple{16, 8, 0.3, 2},
                      std::tuple{40, 16, 0.15, 3}, std::tuple{64, 4, 0.08, 4},
                      std::tuple{10, 1, 0.5, 5}));

TEST(FusedKernels, VaPsiIsSymmetricOnSymmetricGraph) {
  // H H^T is symmetric; if A is symmetric then Psi must be too.
  const auto g = testing::small_graph<double>(30, 120, 7);
  const auto h = random_dense<double>(30, 6, 11);
  const auto psi = psi_va(g.adj, h);
  const auto psi_t = psi.transposed();
  testing::expect_sparse_near(psi, psi_t, 1e-10, "VA symmetry");
}

TEST(FusedKernels, AgnnScoresAreCosinesInUnitRange) {
  const auto g = testing::small_graph<double>(25, 100, 13);
  const auto h = random_dense<double>(25, 8, 17);
  const auto psi = psi_agnn(g.adj, h);
  for (index_t e = 0; e < psi.nnz(); ++e) {
    EXPECT_LE(std::abs(psi.val_at(e)), 1.0 + 1e-9);
  }
  // Self-loops have cosine exactly 1.
  graph::BuildOptions opt;
  opt.add_self_loops = true;
  const auto g2 = graph::build_graph<double>(
      graph::generate_erdos_renyi_m(10, 30, 19), opt);
  const auto h2 = random_dense<double>(10, 4, 23);
  const auto psi2 = psi_agnn(g2.adj, h2);
  for (index_t i = 0; i < psi2.rows(); ++i) {
    for (index_t e = psi2.row_begin(i); e < psi2.row_end(i); ++e) {
      if (psi2.col_at(e) == i) {
        EXPECT_NEAR(psi2.val_at(e), 1.0, 1e-9);
      }
    }
  }
}

// Regression: an all-zero feature row used to produce 0/0 = NaN cosines.
// Cauchy-Schwarz bounds every dot product by the norm product, so clamping
// the denominator must give exactly 0 on degenerate edges and leave all
// other edges untouched.
TEST(FusedKernels, AgnnDegenerateZeroRowYieldsZeroNotNan) {
  const auto a = random_sparse<double>(12, 0.4, 41, /*binary=*/true);
  auto h = random_dense<double>(12, 6, 43);
  for (index_t f = 0; f < h.cols(); ++f) h(3, f) = 0.0;  // degenerate vertex

  const auto psi = psi_agnn(a, h);
  for (index_t i = 0; i < psi.rows(); ++i) {
    for (index_t e = psi.row_begin(i); e < psi.row_end(i); ++e) {
      const double v = psi.val_at(e);
      EXPECT_TRUE(std::isfinite(v)) << "(" << i << "," << psi.col_at(e) << ")";
      if (i == 3 || psi.col_at(e) == 3) {
        EXPECT_EQ(v, 0.0) << "degenerate edge (" << i << "," << psi.col_at(e) << ")";
      }
    }
  }

  // Non-degenerate edges are bitwise unchanged by the eps clamp: compare
  // against the same graph with the zero row replaced by a unit vector.
  auto h2 = h;
  h2(3, 0) = 1.0;
  const auto psi2 = psi_agnn(a, h2);
  for (index_t i = 0; i < psi.rows(); ++i) {
    for (index_t e = psi.row_begin(i); e < psi.row_end(i); ++e) {
      if (i == 3 || psi.col_at(e) == 3) continue;
      EXPECT_EQ(psi.val_at(e), psi2.val_at(e));
    }
  }
}

TEST(FusedKernels, GatPsiRowsAreStochastic) {
  const auto g = testing::small_graph<double>(20, 80, 29);
  const index_t n = 20, k = 5;
  const auto hp = random_dense<double>(n, k, 31);
  const auto s1 = matvec(hp, std::span<const double>(
                                 random_dense<double>(k, 1, 32).data(),
                                 static_cast<std::size_t>(k)));
  std::vector<double> s1v = s1;
  const auto s2 = matvec(hp, std::span<const double>(
                                 random_dense<double>(k, 1, 33).data(),
                                 static_cast<std::size_t>(k)));
  const auto gp = psi_gat<double>(g.adj, s1v, s2, 0.2);
  for (index_t i = 0; i < n; ++i) {
    if (gp.psi.row_nnz(i) == 0) continue;
    double sum = 0;
    for (index_t e = gp.psi.row_begin(i); e < gp.psi.row_end(i); ++e) {
      EXPECT_GE(gp.psi.val_at(e), 0.0);
      sum += gp.psi.val_at(e);
    }
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST(FusedKernels, FusedVaAggregateMatchesTwoKernelPipeline) {
  const auto g = testing::small_graph<double>(35, 150, 37);
  const auto h = random_dense<double>(35, 7, 41);
  const auto x = random_dense<double>(35, 9, 43);
  const auto fused = fused_va_aggregate(g.adj, h, x);
  const auto pipeline = spmm(psi_va(g.adj, h), x);
  testing::expect_matrix_near(fused, pipeline, 1e-9, "fused VA aggregate");
}

TEST(FusedKernels, FusedGatAggregateMatchesTwoKernelPipeline) {
  const auto g = testing::small_graph<double>(28, 120, 47);
  const index_t n = 28, k = 6;
  const auto hp = random_dense<double>(n, k, 53);
  const auto x = random_dense<double>(n, 4, 59);
  Rng rng(61);
  std::vector<double> s1(static_cast<std::size_t>(n)), s2(static_cast<std::size_t>(n));
  for (auto& v : s1) v = rng.next_uniform(-1, 1);
  for (auto& v : s2) v = rng.next_uniform(-1, 1);
  const auto fused = fused_gat_aggregate<double>(g.adj, s1, s2, 0.2, x);
  const auto gp = psi_gat<double>(g.adj, s1, s2, 0.2);
  const auto pipeline = spmm(gp.psi, x);
  testing::expect_matrix_near(fused, pipeline, 1e-9, "fused GAT aggregate");
  (void)hp;
}

// Degenerate graphs through the GAT path — the adversarial families of the
// differential harness (tests/differential), pinned here so the fast unit
// suite covers them even when the fuzz budget is skipped.
CsrMatrix<double> graph_from_edges(
    index_t n, std::initializer_list<std::pair<index_t, index_t>> edges) {
  CooMatrix<double> coo;
  coo.n_rows = coo.n_cols = n;
  for (const auto& [i, j] : edges) coo.push_back(i, j, 1.0);
  return CsrMatrix<double>::from_coo(coo);
}

TEST(FusedKernels, GatHandlesEmptyGraph) {
  const auto a = graph_from_edges(0, {});
  const auto gp = psi_gat<double>(a, {}, {}, 0.2);
  EXPECT_EQ(gp.psi.rows(), 0);
  EXPECT_EQ(gp.psi.nnz(), 0);
  const DenseMatrix<double> x(0, 3, 0.0);
  const auto out = fused_gat_aggregate<double>(a, {}, {}, 0.2, x);
  EXPECT_EQ(out.rows(), 0);
  EXPECT_EQ(out.cols(), 3);
}

TEST(FusedKernels, GatHandlesSingleVertexSelfLoop) {
  const auto a = graph_from_edges(1, {{0, 0}});
  const std::vector<double> s1{-7.0}, s2{3.5};
  const auto gp = psi_gat<double>(a, s1, s2, 0.2);
  ASSERT_EQ(gp.psi.nnz(), 1);
  EXPECT_EQ(gp.psi.val_at(0), 1.0);  // softmax over one edge is exactly 1
  const auto x = random_dense<double>(1, 4, 71);
  const auto out = fused_gat_aggregate<double>(a, s1, s2, 0.2, x);
  for (index_t g = 0; g < 4; ++g) EXPECT_EQ(out(0, g), x(0, g));
}

TEST(FusedKernels, GatHandlesAllIsolatedVertices) {
  const auto a = graph_from_edges(5, {});
  const std::vector<double> s(5, 0.25);
  const auto gp = psi_gat<double>(a, s, s, 0.2);
  EXPECT_EQ(gp.psi.nnz(), 0);
  const auto x = random_dense<double>(5, 3, 73);
  const auto out = fused_gat_aggregate<double>(a, s, s, 0.2, x);
  for (index_t i = 0; i < 5; ++i)
    for (index_t g = 0; g < 3; ++g)
      EXPECT_EQ(out(i, g), 0.0) << "isolated row " << i << " must aggregate to 0";
}

// Repeated runs of the fused aggregates must be bitwise identical under
// every schedule policy: the chunk decomposition is a pure function of
// (row_ptr, policy, grain) and split-row partials fold in fixed piece
// order, so no run-to-run reassociation is possible.
TEST(FusedKernels, ScheduleRepeatedRunsAreBitwiseIdentical) {
  const auto g = testing::small_graph<double>(48, 360, 91);
  const index_t n = g.adj.rows();
  const auto h = random_dense<double>(n, 5, 93);
  const auto x = random_dense<double>(n, 4, 97);
  Rng rng(99);
  std::vector<double> s1(static_cast<std::size_t>(n)), s2(static_cast<std::size_t>(n));
  for (auto& v : s1) v = rng.next_uniform(-1, 1);
  for (auto& v : s2) v = rng.next_uniform(-1, 1);
  const auto bits_equal = [](const DenseMatrix<double>& a,
                             const DenseMatrix<double>& b) {
    if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
    for (index_t i = 0; i < a.size(); ++i) {
      if (std::bit_cast<std::uint64_t>(a.data()[i]) !=
          std::bit_cast<std::uint64_t>(b.data()[i])) {
        return false;
      }
    }
    return true;
  };
  for (const auto policy :
       {SchedulePolicy::kRowParallel, SchedulePolicy::kEdgeBalanced,
        SchedulePolicy::kHybridBinned}) {
    // grain 8 forces splits even on this small graph
    const auto sched = KernelSchedule::build(g.adj.row_ptr(), policy, 8);
    DenseMatrix<double> va_a, va_b, gat_a, gat_b;
    fused_va_aggregate(g.adj, h, x, va_a, &sched);
    fused_va_aggregate(g.adj, h, x, va_b, &sched);
    fused_gat_aggregate<double>(g.adj, s1, s2, 0.2, x, gat_a, &sched);
    fused_gat_aggregate<double>(g.adj, s1, s2, 0.2, x, gat_b, &sched);
    EXPECT_TRUE(bits_equal(va_a, va_b))
        << "fused_va_aggregate not reproducible under " << to_string(policy);
    EXPECT_TRUE(bits_equal(gat_a, gat_b))
        << "fused_gat_aggregate not reproducible under " << to_string(policy);
  }
}

TEST(FusedKernels, GatSelfLoopOnlyAdjacencyIsIdentity) {
  const auto a = graph_from_edges(4, {{0, 0}, {1, 1}, {2, 2}, {3, 3}});
  std::vector<double> s1(4), s2(4);
  Rng rng(79);
  for (auto& v : s1) v = rng.next_uniform(-2, 2);
  for (auto& v : s2) v = rng.next_uniform(-2, 2);
  const auto gp = psi_gat<double>(a, s1, s2, 0.2);
  for (index_t e = 0; e < gp.psi.nnz(); ++e) EXPECT_EQ(gp.psi.val_at(e), 1.0);
  // Psi == I, so aggregation is bitwise the input.
  const auto x = random_dense<double>(4, 6, 83);
  const auto out = fused_gat_aggregate<double>(a, s1, s2, 0.2, x);
  for (index_t i = 0; i < 4; ++i)
    for (index_t g = 0; g < 6; ++g) EXPECT_EQ(out(i, g), x(i, g));
}

}  // namespace
}  // namespace agnn
