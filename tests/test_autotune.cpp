// The autotuner test layer for src/tensor/autotune.hpp + tuning_cache.hpp.
//
//   1. Graph-signature bucketing: deterministic, logarithmic, k-sensitive.
//   2. AGNN_TUNE parsing: strict unknown-value throw, at both the parse
//      function and a live kernel call.
//   3. Cache round-trip: tune -> persist -> simulated restart -> reload with
//      ZERO re-samples (counter-proven), bitwise-identical outputs.
//   4. Corrupt / truncated / version-mismatched cache files are ignored
//      without throwing; valid lines before a corrupt tail still load.
//   5. "Tuned never loses to auto by more than noise" on the bench graph
//      families.
//   6. The both-auto precedence regression: the resolved SCHEDULE owns the
//      AGNN_FORMAT=auto decision (a chunked schedule keeps CSR).
//   7. The choice gauge encoding round-trips through the TraceReport
//      decoder (the cross-layer contract).
//   8. Freeze semantics: a frozen tuner serves warm entries but never
//      samples; explicit env knobs always beat the tuner.
//   9. Serving warmup: the server tunes exactly once at construction and
//      requests never sample (counters prove it).

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <future>
#include <string>
#include <vector>

#include "core/model.hpp"
#include "graph/graph.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_report.hpp"
#include "tensor/coo_matrix.hpp"
#include "serve/server.hpp"
#include "tensor/autotune.hpp"
#include "tensor/fused.hpp"
#include "tensor/sparse_ops.hpp"
#include "tensor/spmm.hpp"
#include "tensor/tuning_cache.hpp"
#include "test_utils.hpp"

namespace agnn {
namespace {

using testing::random_dense;

class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) {
      had_ = true;
      old_ = old;
    }
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_) {
      ::setenv(name_, old_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  bool had_ = false;
  std::string old_;
};

std::uint64_t counter_value(const char* name) {
  const obs::Counter* c = obs::MetricsRegistry::global().find_counter(name);
  return c != nullptr ? c->value() : 0;
}

// Each test starts from an empty in-memory table and no env-loaded file, so
// sample/store counters measure only the test's own activity (the global
// counters themselves are cumulative — always compare deltas).
class Autotune : public ::testing::Test {
 protected:
  void SetUp() override { TuningCache::global().clear(); }
  void TearDown() override { TuningCache::global().clear(); }
};

// A mid-size skewed graph: big enough that every candidate class (chunked
// schedules, SELL, BCSR) is on the table, small enough to sample quickly.
CsrMatrix<double> hub_graph(index_t n, index_t hub_deg, std::uint64_t seed) {
  Rng rng(seed);
  CooMatrix<double> coo;
  coo.n_rows = coo.n_cols = n;
  for (index_t j = 1; j <= hub_deg && j < n; ++j) {
    coo.push_back(0, j, rng.next_uniform(0.1, 1.0));
  }
  for (index_t i = 0; i < n; ++i) {
    coo.push_back(i, i, rng.next_uniform(0.1, 1.0));
    coo.push_back(i, (i + 1) % n, rng.next_uniform(0.1, 1.0));
  }
  coo.sum_duplicates();
  return CsrMatrix<double>::from_coo(coo);
}

// Every row degree 64, one degree-300 hub: nnz ≈ 26k (over the auto
// threshold), skew ≈ 4.6 (under the edge-balanced threshold), max degree
// 300 — so the auto baseline is row-parallel under the 1024 default grain
// (300 < 4*1024) but hybrid-binned under grain 64 (300 >= 4*64). The grain
// regression tests need exactly this baseline flip.
CsrMatrix<double> grain_sensitive_graph() {
  Rng rng(151);
  CooMatrix<double> coo;
  coo.n_rows = coo.n_cols = 400;
  for (index_t i = 0; i < 400; ++i) {
    const index_t deg = i == 0 ? 300 : 64;
    for (index_t j = 1; j <= deg; ++j) {
      coo.push_back(i, (i + j) % 400, rng.next_uniform(0.1, 1.0));
    }
  }
  coo.sum_duplicates();
  return CsrMatrix<double>::from_coo(coo);
}

// ---- 1. signature bucketing -------------------------------------------------

TEST_F(Autotune, SignatureBucketingIsDeterministicAndLogarithmic) {
  EXPECT_EQ(tune_bucket(0), 0);
  EXPECT_EQ(tune_bucket(1), 1);
  EXPECT_EQ(tune_bucket(2), 2);
  EXPECT_EQ(tune_bucket(3), 2);
  EXPECT_EQ(tune_bucket(4), 3);
  EXPECT_EQ(tune_bucket(1023), 10);
  EXPECT_EQ(tune_bucket(1024), 11);

  const auto a = hub_graph(400, 120, 17);
  const ScheduleStats st = compute_schedule_stats(a.row_ptr());
  const GraphSignature s1 = make_graph_signature(st, 16, kDefaultScheduleGrain);
  const GraphSignature s2 = make_graph_signature(st, 16, kDefaultScheduleGrain);
  EXPECT_EQ(s1, s2) << "same stats + k + grain must bucket identically";

  // Same size class -> same signature: two graphs whose stats share every
  // bucket are one tuning cell.
  const auto b = hub_graph(401, 121, 99);
  const GraphSignature s3 = make_graph_signature(
      compute_schedule_stats(b.row_ptr()), 16, kDefaultScheduleGrain);
  EXPECT_EQ(s1, s3);

  // The feature width is part of the key: k=16 and k=64 tune separately.
  EXPECT_NE(s1, make_graph_signature(st, 64, kDefaultScheduleGrain));
  // The schedule grain is part of the key — EXACTLY, not log-bucketed: the
  // auto-policy baseline (and a chunked decomposition's fold order) depends
  // on it, so choices sampled under different grains must not share a cell.
  EXPECT_NE(s1, make_graph_signature(st, 16, 64));
  EXPECT_NE(make_graph_signature(st, 16, 768),
            make_graph_signature(st, 16, 1023))
      << "same log2 bucket, different grains: still distinct cells";
  // The resolved baseline is recorded in the signature.
  EXPECT_EQ(static_cast<SchedulePolicy>(s1.baseline),
            resolve_schedule_policy(st, SchedulePolicy::kAuto,
                                    kDefaultScheduleGrain));
  // Quadrupling the hub moves max_deg (and skew) buckets.
  const auto c = hub_graph(400, 120 * 4, 17);
  EXPECT_NE(s1, make_graph_signature(compute_schedule_stats(c.row_ptr()), 16,
                                     kDefaultScheduleGrain));
}

// ---- 2. AGNN_TUNE parsing ---------------------------------------------------

TEST_F(Autotune, TuneModeParsesKnownSpellings) {
  TuneMode m = TuneMode::kOn;
  EXPECT_TRUE(parse_tune_mode("off", m));
  EXPECT_EQ(m, TuneMode::kOff);
  EXPECT_TRUE(parse_tune_mode("", m));
  EXPECT_EQ(m, TuneMode::kOff);
  EXPECT_TRUE(parse_tune_mode("on", m));
  EXPECT_EQ(m, TuneMode::kOn);
  EXPECT_TRUE(parse_tune_mode("force-resample", m));
  EXPECT_EQ(m, TuneMode::kForceResample);
  EXPECT_TRUE(parse_tune_mode("force_resample", m));
  EXPECT_EQ(m, TuneMode::kForceResample);
  EXPECT_FALSE(parse_tune_mode("ON", m));
  EXPECT_FALSE(parse_tune_mode("yes", m));

  {
    ScopedEnv e("AGNN_TUNE", nullptr);
    EXPECT_EQ(tune_mode_from_env(), TuneMode::kOff);
  }
  {
    ScopedEnv e("AGNN_TUNE", "on");
    EXPECT_EQ(tune_mode_from_env(), TuneMode::kOn);
  }
}

TEST_F(Autotune, UnknownTuneModeThrowsFromEnvAndFromKernels) {
  ScopedEnv e("AGNN_TUNE", "auto");  // a plausible typo — must not be silent
  EXPECT_THROW(tune_mode_from_env(), std::logic_error);
  // The throw surfaces from a real kernel call, not only from the helper.
  const auto a = hub_graph(64, 20, 3);
  const auto h = random_dense<double>(64, 4, 5);
  DenseMatrix<double> out;
  EXPECT_THROW(spmm(a, h, out), std::logic_error);
}

// ---- 3. cache round-trip ----------------------------------------------------

// One battery of tuned kernel calls; returns outputs for bitwise comparison.
struct TunedOutputs {
  DenseMatrix<double> spmm_out;
  CsrMatrix<double> sddmm_out;
  std::vector<double> row_sums;
  DenseMatrix<double> va;
};

TunedOutputs run_tuned_battery(const CsrMatrix<double>& a) {
  const auto h = random_dense<double>(a.rows(), 8, 101);
  const auto x = random_dense<double>(a.rows(), 6, 103);
  TunedOutputs o;
  spmm(a, h, o.spmm_out);
  sddmm(a, h, h, o.sddmm_out);
  sparse_row_sums(a, o.row_sums);
  fused_va_aggregate(a, h, x, o.va);
  return o;
}

TEST_F(Autotune, CacheRoundTripEliminatesResampling) {
  const std::string path = ::testing::TempDir() + "agnn_tune_roundtrip.cache";
  std::remove(path.c_str());
  ScopedEnv cache_env("AGNN_TUNE_CACHE", path.c_str());
  ScopedEnv tune_env("AGNN_TUNE", "on");
  ScopedEnv fmt_env("AGNN_FORMAT", nullptr);
  ScopedEnv sched_env("AGNN_SCHEDULE", nullptr);

  const auto a = hub_graph(300, 90, 23);
  const std::uint64_t s0 = counter_value("tune.samples");
  const TunedOutputs first = run_tuned_battery(a);
  const std::uint64_t s1 = counter_value("tune.samples");
  EXPECT_GT(s1, s0) << "cold cache must sample";
  EXPECT_GT(TuningCache::global().size(), 0u);
  {
    std::ifstream f(path);
    EXPECT_TRUE(f.good()) << "store must persist to AGNN_TUNE_CACHE";
  }

  // Repeat calls on the warm in-memory table: no new samples.
  (void)run_tuned_battery(a);
  const std::uint64_t s2 = counter_value("tune.samples");
  EXPECT_EQ(s2, s1) << "warm in-memory cache must not re-sample";

  // Simulated restart: drop the table (and the loaded-path memo); the next
  // tuned call reloads the file and re-samples NOTHING.
  TuningCache::global().clear();
  ASSERT_EQ(TuningCache::global().size(), 0u);
  const std::uint64_t loads0 = counter_value("tune.cache.loaded_entries");
  const TunedOutputs reloaded = run_tuned_battery(a);
  const std::uint64_t s3 = counter_value("tune.samples");
  EXPECT_EQ(s3, s2) << "a warm cache file must eliminate re-sampling";
  EXPECT_GT(counter_value("tune.cache.loaded_entries"), loads0);

  // And the tuner may only pick among proven-equivalent variants: outputs
  // across the restart are bit-for-bit identical.
  ASSERT_EQ(first.spmm_out.rows(), reloaded.spmm_out.rows());
  for (index_t i = 0; i < first.spmm_out.rows(); ++i) {
    for (index_t j = 0; j < first.spmm_out.cols(); ++j) {
      ASSERT_EQ(first.spmm_out(i, j), reloaded.spmm_out(i, j));
    }
  }
  ASSERT_TRUE(first.sddmm_out.same_pattern(reloaded.sddmm_out));
  for (index_t e = 0; e < first.sddmm_out.nnz(); ++e) {
    ASSERT_EQ(first.sddmm_out.val_at(e), reloaded.sddmm_out.val_at(e));
  }
  std::remove(path.c_str());
}

TEST_F(Autotune, ForceResampleIgnoresWarmEntries) {
  ScopedEnv cache_env("AGNN_TUNE_CACHE", nullptr);
  ScopedEnv fmt_env("AGNN_FORMAT", nullptr);
  ScopedEnv sched_env("AGNN_SCHEDULE", nullptr);
  const auto a = hub_graph(200, 60, 29);
  const auto h = random_dense<double>(a.rows(), 4, 31);
  DenseMatrix<double> out;
  {
    ScopedEnv tune_env("AGNN_TUNE", "on");
    spmm(a, h, out);
    const std::uint64_t s1 = counter_value("tune.samples");
    spmm(a, h, out);
    EXPECT_EQ(counter_value("tune.samples"), s1);
  }
  {
    ScopedEnv tune_env("AGNN_TUNE", "force-resample");
    const std::uint64_t s1 = counter_value("tune.samples");
    spmm(a, h, out);
    EXPECT_GT(counter_value("tune.samples"), s1)
        << "force-resample must re-measure despite the warm entry";
  }
}

// The grain-aliasing regression: a TunedChoice sampled under one
// AGNN_SCHEDULE_GRAIN (row-parallel baseline at the 1024 default) must NOT
// be served under another (hybrid-binned baseline at 64) — the two
// baselines are different reduction decompositions, so a stale hit would
// make tuned and untuned runs disagree bitwise. The signature carries
// {grain, baseline}: the second grain is a fresh cell, it re-samples, and
// the tuned output matches the untuned output under THAT grain to the bit.
TEST_F(Autotune, WarmCacheFromAnotherGrainIsNotServedAcrossBaselines) {
  ScopedEnv cache_env("AGNN_TUNE_CACHE", nullptr);
  ScopedEnv fmt_env("AGNN_FORMAT", nullptr);
  ScopedEnv sched_env("AGNN_SCHEDULE", nullptr);
  const auto a = grain_sensitive_graph();
  const ScheduleStats st = compute_schedule_stats(a.row_ptr());
  ASSERT_EQ(resolve_schedule_policy(st, SchedulePolicy::kAuto,
                                    kDefaultScheduleGrain),
            SchedulePolicy::kRowParallel)
      << "precondition: row-parallel baseline at the default grain";
  ASSERT_EQ(resolve_schedule_policy(st, SchedulePolicy::kAuto, 64),
            SchedulePolicy::kHybridBinned)
      << "precondition: chunked baseline at grain 64";

  const auto h = random_dense<double>(a.rows(), 8, 149);
  DenseMatrix<double> out;
  {
    // Warm the default-grain cell.
    ScopedEnv grain_env("AGNN_SCHEDULE_GRAIN", nullptr);
    ScopedEnv tune_env("AGNN_TUNE", "on");
    spmm(a, h, out);
    EXPECT_GT(TuningCache::global().size(), 0u);
  }
  ScopedEnv grain_env("AGNN_SCHEDULE_GRAIN", "64");
  DenseMatrix<double> want;
  {
    ScopedEnv tune_env("AGNN_TUNE", nullptr);
    spmm(a, h, want);  // the untuned hybrid-binned answer
  }
  ScopedEnv tune_env("AGNN_TUNE", "on");
  const std::uint64_t s0 = counter_value("tune.samples");
  DenseMatrix<double> got;
  spmm(a, h, got);
  EXPECT_GT(counter_value("tune.samples"), s0)
      << "the default-grain entry must MISS under grain 64, not be served";
  ASSERT_EQ(got.rows(), want.rows());
  for (index_t i = 0; i < want.rows(); ++i) {
    for (index_t j = 0; j < want.cols(); ++j) {
      ASSERT_EQ(got(i, j), want(i, j))
          << "tuned bits diverged from untuned at grain 64";
    }
  }
}

// ---- 4. defensive cache loading --------------------------------------------

TEST_F(Autotune, CorruptAndStaleCacheFilesAreIgnoredGracefully) {
  const std::string dir = ::testing::TempDir();
  auto write_file = [](const std::string& p, const std::string& body) {
    std::ofstream f(p, std::ios::trunc);
    f << body;
  };

  // (a) garbage header
  const std::string garbage = dir + "agnn_tune_garbage.cache";
  write_file(garbage,
             "not a tuning cache\n"
             "spmm 5 9 7 3 5 1024 row_parallel row_parallel 1024 csr 10\n");
  EXPECT_FALSE(TuningCache::global().load_file(garbage));
  EXPECT_EQ(TuningCache::global().size(), 0u);

  // (b) version mismatch — future AND past: a v1 file (whose signatures
  // predate the grain/baseline fields) must be rejected, not misparsed.
  const std::string stale = dir + "agnn_tune_stale.cache";
  write_file(stale,
             "AGNNTUNE v999\n"
             "spmm 5 9 7 3 5 1024 row_parallel row_parallel 1024 csr 10\n");
  EXPECT_FALSE(TuningCache::global().load_file(stale));
  EXPECT_EQ(TuningCache::global().size(), 0u);
  const std::string v1 = dir + "agnn_tune_v1.cache";
  write_file(v1, "AGNNTUNE v1\nspmm 5 9 7 3 5 row_parallel 1024 csr 10\n");
  EXPECT_FALSE(TuningCache::global().load_file(v1));
  EXPECT_EQ(TuningCache::global().size(), 0u);

  // (c) missing file
  EXPECT_FALSE(TuningCache::global().load_file(dir + "agnn_tune_missing.cache"));

  // (d) truncated/corrupt lines: the valid prefix loads, the junk is skipped,
  // nothing throws.
  const std::string mixed = dir + "agnn_tune_mixed.cache";
  write_file(
      mixed,
      "AGNNTUNE v2\n"
      "spmm 5 9 7 3 5 1024 row_parallel row_parallel 1024 csr 10\n"
      "sddmm 5 9 7 3 5 1024 row_parallel edge_balanced 256 sell 20\n"
      "spmm 5 9 7 3 5 1024 row_parallel auto 1024 csr 10\n"  // auto not storable
      "spmm 5 9 7 3 5 1024 auto row_parallel 1024 csr 10\n"  // nor auto baseline
      "spmm 5 9 7 3 5 1024 row_parallel row_parallel -8 csr 10\n"  // bad grain
      "spmm 5 9 7 3 5 0 row_parallel row_parallel 1024 csr 10\n"  // bad sig grain
      "spmm 99 9 7 3 5 1024 row_parallel row_parallel 1024 csr 10\n"  // b > 64
      "sparse_row_sums 5 9 7 3\n");  // truncated tail
  const std::uint64_t corrupt0 = counter_value("tune.cache.corrupt_lines");
  EXPECT_TRUE(TuningCache::global().load_file(mixed));
  EXPECT_EQ(TuningCache::global().size(), 2u);
  EXPECT_EQ(counter_value("tune.cache.corrupt_lines"), corrupt0 + 6);

  GraphSignature sig;
  sig.rows_b = 5;
  sig.nnz_b = 9;
  sig.max_deg_b = 7;
  sig.skew_b = 3;
  sig.k_b = 5;
  sig.grain = 1024;
  sig.baseline = static_cast<std::uint8_t>(SchedulePolicy::kRowParallel);
  const auto hit = TuningCache::global().lookup("sddmm", sig);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->policy, SchedulePolicy::kEdgeBalanced);
  EXPECT_EQ(hit->grain, 256);
  EXPECT_EQ(hit->format, SparseFormat::kSell);

  for (const auto& p : {garbage, stale, v1, mixed}) std::remove(p.c_str());
}

TEST_F(Autotune, SaveThenLoadRoundTripsEveryField) {
  const std::string path = ::testing::TempDir() + "agnn_tune_fields.cache";
  GraphSignature sig;
  sig.rows_b = 10;
  sig.nnz_b = 14;
  sig.max_deg_b = 8;
  sig.skew_b = 4;
  sig.k_b = 6;
  sig.grain = 192;  // deliberately not a power of two
  sig.baseline = static_cast<std::uint8_t>(SchedulePolicy::kHybridBinned);
  TunedChoice c;
  c.policy = SchedulePolicy::kHybridBinned;
  c.grain = 256;
  c.format = SparseFormat::kBcsr;
  c.sample_ns = 12345;
  {
    ScopedEnv cache_env("AGNN_TUNE_CACHE", nullptr);  // no double-persist
    TuningCache::global().store("spmm", sig, c);
  }
  ASSERT_TRUE(TuningCache::global().save_file(path));
  TuningCache::global().clear();
  ASSERT_TRUE(TuningCache::global().load_file(path));
  const auto hit = TuningCache::global().lookup("spmm", sig);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->policy, SchedulePolicy::kHybridBinned);
  EXPECT_EQ(hit->grain, 256);
  EXPECT_EQ(hit->format, SparseFormat::kBcsr);
  EXPECT_EQ(hit->sample_ns, 12345u);
  std::remove(path.c_str());
}

// ---- 5. tuned never loses to auto by more than noise ------------------------

TEST_F(Autotune, TunedChoiceNeverLosesToAutoByMoreThanNoise) {
  ScopedEnv cache_env("AGNN_TUNE_CACHE", nullptr);
  ScopedEnv fmt_env("AGNN_FORMAT", nullptr);
  ScopedEnv sched_env("AGNN_SCHEDULE", nullptr);
  // The bench graph families in miniature: skewed hub and uniform ring.
  const std::vector<CsrMatrix<double>> graphs = {hub_graph(600, 300, 41),
                                                 hub_graph(600, 2, 43)};
  for (const auto& a : graphs) {
    const auto h = random_dense<double>(a.rows(), 16, 47);
    DenseMatrix<double> out;
    auto median_ns = [&](int reps) {
      std::vector<std::uint64_t> t;
      for (int r = 0; r < reps; ++r) {
        const auto t0 = std::chrono::steady_clock::now();
        spmm(a, h, out);
        t.push_back(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - t0)
                .count()));
      }
      std::sort(t.begin(), t.end());
      return t[t.size() / 2];
    };
    std::uint64_t tuned_ns;
    {
      ScopedEnv tune_env("AGNN_TUNE", "on");
      spmm(a, h, out);  // pay the sampling cost outside the timed window
      tuned_ns = median_ns(5);
    }
    std::uint64_t auto_ns;
    {
      ScopedEnv tune_env("AGNN_TUNE", nullptr);
      spmm(a, h, out);  // warm the auto-path schedule cache symmetrically
      auto_ns = median_ns(5);
    }
    // Noise bound, not a perf assertion: micro-kernels at this size jitter
    // heavily under CI/sanitizers, so "never loses" means "within a small
    // multiple plus a fixed floor", which still catches a pathological
    // choice (e.g. tuner picking a 10x-slower variant).
    EXPECT_LE(tuned_ns, auto_ns * 3 + 200'000u)
        << "tuned dispatch lost to the auto heuristics by more than noise";
  }
}

// ---- 6. the both-auto precedence rule ---------------------------------------

// Historical ambiguity: AGNN_FORMAT=auto picked SELL purely on nnz while
// KernelSchedule auto could simultaneously pick a chunked policy for the
// same matrix — two owners for one decision, and the format silently won.
// The rule now lives in resolve_dispatch: schedule resolves FIRST, and
// format=auto only picks SELL under a row-parallel resolved schedule.
TEST_F(Autotune, BothAutoPrecedenceScheduleResolvesFirst) {
  ScopedEnv tune_env("AGNN_TUNE", nullptr);
  ScopedEnv fmt_env("AGNN_FORMAT", "auto");
  ScopedEnv sched_env("AGNN_SCHEDULE", nullptr);
  ScopedEnv grain_env("AGNN_SCHEDULE_GRAIN", nullptr);

  // A graph over the SELL nnz threshold whose hub forces the schedule
  // heuristic off row-parallel: the schedule decision must win.
  const auto skewed = hub_graph(6000, 5999, 53);
  ASSERT_GE(skewed.nnz(), kFormatAutoMinNnz);
  {
    const auto sched = schedule_for(skewed);
    ASSERT_FALSE(sched->row_parallel())
        << "precondition: auto schedule must go chunked on this graph";
  }
  const auto h = random_dense<double>(skewed.rows(), 8, 59);
  const std::uint64_t sell0 = counter_value("format.builds.sell");
  DenseMatrix<double> chunked_out;
  spmm(skewed, h, chunked_out);
  EXPECT_EQ(counter_value("format.builds.sell"), sell0)
      << "a chunked resolved schedule must keep CSR under AGNN_FORMAT=auto";

  // Uniform control at the same nnz scale: row-parallel resolved schedule,
  // SELL engages as before.
  const auto uniform = hub_graph(9000, 2, 61);
  ASSERT_GE(uniform.nnz(), kFormatAutoMinNnz);
  ASSERT_TRUE(schedule_for(uniform)->row_parallel());
  const auto hu = random_dense<double>(uniform.rows(), 8, 67);
  DenseMatrix<double> sell_out;
  spmm(uniform, hu, sell_out);
  EXPECT_GT(counter_value("format.builds.sell"), sell0)
      << "row-parallel + nnz over threshold must still pick SELL";

  // Either way the result is bitwise the dispatch-free answer.
  DenseMatrix<double> want;
  {
    ScopedEnv off("AGNN_FORMAT", nullptr);
    spmm(skewed, h, want);
  }
  for (index_t i = 0; i < want.rows(); ++i) {
    for (index_t j = 0; j < want.cols(); ++j) {
      ASSERT_EQ(chunked_out(i, j), want(i, j));
    }
  }
}

// ---- 7. the choice-encoding contract with the obs layer ---------------------

TEST_F(Autotune, ChoiceEncodingRoundTripsThroughTraceReportDecoder) {
  for (const SchedulePolicy p :
       {SchedulePolicy::kRowParallel, SchedulePolicy::kEdgeBalanced,
        SchedulePolicy::kHybridBinned}) {
    for (const SparseFormat f :
         {SparseFormat::kCsr, SparseFormat::kSell, SparseFormat::kBcsr}) {
      for (const index_t g : {index_t(256), index_t(1024), index_t(4096)}) {
        TunedChoice c;
        c.policy = p;
        c.grain = g;
        c.format = f;
        const std::string got =
            obs::TraceReport::decode_tuned_choice(encode_tuned_choice(c));
        std::string want;
        want += p == SchedulePolicy::kRowParallel   ? "row"
                : p == SchedulePolicy::kEdgeBalanced ? "edge"
                                                     : "hybrid";
        want += f == SparseFormat::kCsr    ? "/csr"
                : f == SparseFormat::kSell ? "/sell"
                                           : "/bcsr";
        want += "/g" + std::to_string(g);
        EXPECT_EQ(got, want);
      }
    }
  }
  EXPECT_EQ(obs::TraceReport::decode_tuned_choice(0.0), "");
  EXPECT_EQ(obs::TraceReport::decode_tuned_choice(-3.0), "");
}

TEST_F(Autotune, TunedDecisionIsVisibleInTheRooflineTable) {
  ScopedEnv cache_env("AGNN_TUNE_CACHE", nullptr);
  ScopedEnv tune_env("AGNN_TUNE", "on");
  ScopedEnv fmt_env("AGNN_FORMAT", nullptr);
  ScopedEnv sched_env("AGNN_SCHEDULE", nullptr);
  const auto a = hub_graph(200, 50, 71);
  const auto h = random_dense<double>(a.rows(), 4, 73);
  DenseMatrix<double> out;
  spmm(a, h, out);
  const obs::Gauge* g =
      obs::MetricsRegistry::global().find_gauge("tune.spmm.choice");
  ASSERT_NE(g, nullptr) << "the tuner must export its decision as a gauge";
  EXPECT_NE(obs::TraceReport::decode_tuned_choice(g->value()), "");
  EXPECT_NE(obs::TraceReport::decode_tuned_choice(g->value()), "?");
}

// ---- 8. freeze and explicit-knob precedence ---------------------------------

TEST_F(Autotune, FrozenTunerServesWarmEntriesButNeverSamples) {
  ScopedEnv cache_env("AGNN_TUNE_CACHE", nullptr);
  ScopedEnv tune_env("AGNN_TUNE", "on");
  ScopedEnv fmt_env("AGNN_FORMAT", nullptr);
  ScopedEnv sched_env("AGNN_SCHEDULE", nullptr);
  const auto warm = hub_graph(200, 60, 79);
  const auto cold = hub_graph(3000, 900, 83);  // different signature cell
  const auto h1 = random_dense<double>(warm.rows(), 4, 89);
  const auto h2 = random_dense<double>(cold.rows(), 4, 97);
  DenseMatrix<double> out;
  spmm(warm, h1, out);  // tunes the warm cell
  const std::uint64_t s1 = counter_value("tune.samples");
  const std::uint64_t f1 = counter_value("tune.frozen_fallbacks");
  {
    TuneFreezeGuard freeze;
    ASSERT_TRUE(tune_frozen());
    spmm(warm, h1, out);  // warm entry still serves
    EXPECT_EQ(counter_value("tune.samples"), s1);
    EXPECT_EQ(counter_value("tune.frozen_fallbacks"), f1);
    spmm(cold, h2, out);  // unseen cell: heuristic fallback, no sampling
    EXPECT_EQ(counter_value("tune.samples"), s1)
        << "a frozen tuner must never sample";
    EXPECT_GT(counter_value("tune.frozen_fallbacks"), f1);
  }
  EXPECT_FALSE(tune_frozen());
}

// The frozen fallback is the FULL auto heuristic — both axes: an unseen
// large row-parallel signature gets SELL exactly where resolve_dispatch's
// rule-5 format heuristic would pick it, not a silently pinned CSR scalar
// path (bitwise-identical either way, but the documented fallback is the
// heuristics, and a frozen InferenceServer should not lose the SIMD path).
TEST_F(Autotune, FrozenFallbackAppliesTheFormatHeuristic) {
  ScopedEnv cache_env("AGNN_TUNE_CACHE", nullptr);
  ScopedEnv tune_env("AGNN_TUNE", "on");
  ScopedEnv fmt_env("AGNN_FORMAT", nullptr);
  ScopedEnv sched_env("AGNN_SCHEDULE", nullptr);
  ScopedEnv grain_env("AGNN_SCHEDULE_GRAIN", nullptr);
  const auto big = hub_graph(9000, 2, 163);
  ASSERT_GE(big.nnz(), kFormatAutoMinNnz);
  ASSERT_TRUE(schedule_for(big)->row_parallel());
  const auto h = random_dense<double>(big.rows(), 4, 167);
  DenseMatrix<double> want;
  {
    ScopedEnv off("AGNN_TUNE", nullptr);
    spmm(big, h, want);
  }
  TuneFreezeGuard freeze;
  const std::uint64_t s0 = counter_value("tune.samples");
  const std::uint64_t sell0 = counter_value("format.builds.sell");
  const std::uint64_t f0 = counter_value("tune.frozen_fallbacks");
  DenseMatrix<double> got;
  spmm(big, h, got);
  EXPECT_EQ(counter_value("tune.samples"), s0) << "frozen must not sample";
  EXPECT_GT(counter_value("tune.frozen_fallbacks"), f0);
  EXPECT_GT(counter_value("format.builds.sell"), sell0)
      << "the frozen fallback must pick SELL where the auto heuristic would";
  for (index_t i = 0; i < want.rows(); ++i) {
    for (index_t j = 0; j < want.cols(); ++j) {
      ASSERT_EQ(got(i, j), want(i, j));
    }
  }
}

TEST_F(Autotune, ExplicitKnobsBeatTheTuner) {
  ScopedEnv cache_env("AGNN_TUNE_CACHE", nullptr);
  ScopedEnv tune_env("AGNN_TUNE", "on");
  ScopedEnv fmt_env("AGNN_FORMAT", nullptr);
  const auto a = hub_graph(300, 90, 101);
  const auto h = random_dense<double>(a.rows(), 4, 103);
  DenseMatrix<double> out;
  {
    // A concrete AGNN_SCHEDULE pins the schedule axis: no sampling at all.
    ScopedEnv sched_env("AGNN_SCHEDULE", "edge");
    const std::uint64_t s0 = counter_value("tune.samples");
    spmm(a, h, out);
    EXPECT_EQ(counter_value("tune.samples"), s0);
  }
  {
    // A concrete AGNN_FORMAT does too.
    ScopedEnv sched_env("AGNN_SCHEDULE", nullptr);
    ScopedEnv fmt_pin("AGNN_FORMAT", "sell");
    const std::uint64_t s0 = counter_value("tune.samples");
    spmm(a, h, out);
    EXPECT_EQ(counter_value("tune.samples"), s0);
  }
  {
    // An explicit KernelSchedule argument beats everything.
    ScopedEnv sched_env("AGNN_SCHEDULE", nullptr);
    const auto sched = KernelSchedule::build(a.row_ptr(),
                                             SchedulePolicy::kEdgeBalanced, 64);
    const std::uint64_t s0 = counter_value("tune.samples");
    spmm(a, h, out, &sched);
    EXPECT_EQ(counter_value("tune.samples"), s0);
  }
}

// The tuner asking for different policies for different kernels on one
// matrix must not thrash the schedule cache: each requested policy has its
// own slot (csr_matrix.hpp), so alternating kernels rebuild nothing.
TEST_F(Autotune, PerPolicyScheduleSlotsDoNotThrash) {
  ScopedEnv sched_env("AGNN_SCHEDULE", nullptr);
  const auto a = hub_graph(300, 90, 107);
  const auto row = schedule_for(a, SchedulePolicy::kRowParallel, 1024);
  const auto edge = schedule_for(a, SchedulePolicy::kEdgeBalanced, 1024);
  EXPECT_EQ(schedule_for(a, SchedulePolicy::kRowParallel, 1024).get(),
            row.get());
  EXPECT_EQ(schedule_for(a, SchedulePolicy::kEdgeBalanced, 1024).get(),
            edge.get());
  EXPECT_EQ(schedule_for(a, SchedulePolicy::kRowParallel, 1024).get(),
            row.get())
      << "alternating policies must not evict each other's slots";
}

// ---- 9. rectangular local blocks --------------------------------------------

// Distributed engines hand the kernels rectangular row/column blocks of the
// global adjacency, so the sampling proxies must size each gather side to
// its own extent (the blocked kernels assert exact operand dimensions — a
// square-only proxy operand aborts the 1.5D engine's first tuned SDDMM).
// Tuning a rectangular block must behave exactly like the square case:
// sample once, change no bits.
TEST_F(Autotune, RectangularBlocksTuneLikeSquareOnes) {
  ScopedEnv cache_env("AGNN_TUNE_CACHE", nullptr);
  ScopedEnv fmt_env("AGNN_FORMAT", nullptr);
  ScopedEnv sched_env("AGNN_SCHEDULE", nullptr);
  const auto g = hub_graph(200, 80, 131);
  const CsrMatrix<double> tall = g.block(0, 200, 0, 60);  // rows > cols
  const CsrMatrix<double> wide = g.block(0, 60, 0, 200);  // cols > rows
  for (const CsrMatrix<double>* a : {&tall, &wide}) {
    ASSERT_NE(a->rows(), a->cols());
    ASSERT_GT(a->nnz(), 0);
    const auto x = random_dense<double>(a->rows(), 8, 137);
    const auto y = random_dense<double>(a->cols(), 8, 139);
    DenseMatrix<double> want_spmm;
    CsrMatrix<double> want_sddmm;
    {
      ScopedEnv off("AGNN_TUNE", nullptr);
      spmm(*a, y, want_spmm);
      sddmm(*a, x, y, want_sddmm);
    }
    ScopedEnv on("AGNN_TUNE", "on");
    const std::uint64_t s0 = counter_value("tune.samples");
    DenseMatrix<double> got_spmm;
    CsrMatrix<double> got_sddmm;
    spmm(*a, y, got_spmm);
    sddmm(*a, x, y, got_sddmm);
    EXPECT_GT(counter_value("tune.samples"), s0)
        << "rectangular blocks must sample, not crash or skip";
    for (index_t i = 0; i < want_spmm.rows(); ++i) {
      for (index_t j = 0; j < want_spmm.cols(); ++j) {
        ASSERT_EQ(want_spmm(i, j), got_spmm(i, j));
      }
    }
    ASSERT_TRUE(want_sddmm.same_pattern(got_sddmm));
    for (index_t e = 0; e < want_sddmm.nnz(); ++e) {
      ASSERT_EQ(want_sddmm.val_at(e), got_sddmm.val_at(e));
    }
  }
}

// ---- 10. serving warmup -----------------------------------------------------

TEST_F(Autotune, ServingWarmupTunesExactlyOnceAndRequestsNeverSample) {
  ScopedEnv cache_env("AGNN_TUNE_CACHE", nullptr);
  ScopedEnv tune_env("AGNN_TUNE", "on");
  ScopedEnv fmt_env("AGNN_FORMAT", nullptr);
  ScopedEnv sched_env("AGNN_SCHEDULE", nullptr);

  const auto g = testing::small_graph<float>(100, 1200, 113);
  GnnConfig cfg;
  cfg.kind = ModelKind::kGAT;
  cfg.in_features = 8;
  cfg.layer_widths = {8, 5};
  const GnnModel<float> model(cfg);
  const auto x = random_dense<float>(100, 8, 127);

  serve::ServeConfig sc;
  sc.num_threads = 2;
  sc.max_batch = 8;
  sc.fanout = 5;
  sc.sample_seed = 99;

  const std::uint64_t w0 = counter_value("serve.warmup_tunes");
  const std::uint64_t s0 = counter_value("tune.samples");
  serve::InferenceServer<float> server(model, g.adj, x, sc);
  const std::uint64_t w1 = counter_value("serve.warmup_tunes");
  const std::uint64_t s1 = counter_value("tune.samples");
  EXPECT_EQ(w1, w0 + 1) << "warmup tuning must fire exactly once";
  EXPECT_GT(s1, s0) << "warmup must actually sample";
  EXPECT_TRUE(tune_frozen()) << "the server must freeze the tuner after warmup";

  std::vector<std::future<serve::InferenceReply<float>>> futures;
  Rng rng(4);
  for (int i = 0; i < 20; ++i) {
    futures.push_back(
        server.submit(static_cast<index_t>(rng.next_bounded(100))));
  }
  for (auto& f : futures) {
    ASSERT_EQ(f.get().status, serve::ReplyStatus::kOk);
  }
  EXPECT_EQ(counter_value("tune.samples"), s1)
      << "no request may pay a sampling stall";
  EXPECT_EQ(counter_value("serve.warmup_tunes"), w1);

  server.stop(/*drain=*/true);
  EXPECT_FALSE(tune_frozen()) << "stop must release the freeze";
}

}  // namespace
}  // namespace agnn
