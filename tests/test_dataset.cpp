// Tests for the dataset container, synthetic citation generator, binary
// round trip, split protocol, and the fit/early-stopping workflow.
#include <gtest/gtest.h>

#include <filesystem>

#include "core/dataset.hpp"
#include "test_utils.hpp"

namespace agnn {
namespace {

TEST(Dataset, SyntheticCitationShape) {
  const auto ds = make_synthetic_citation<double>(200, 4, 32, 7);
  EXPECT_EQ(ds.num_vertices(), 200);
  EXPECT_EQ(ds.feature_dim(), 32);
  EXPECT_EQ(ds.num_classes, 4);
  EXPECT_EQ(ds.labels.size(), 200u);
  for (const auto l : ds.labels) {
    EXPECT_GE(l, 0);
    EXPECT_LT(l, 4);
  }
  // Sparse binary features.
  double ones = 0;
  for (index_t i = 0; i < ds.features.size(); ++i) {
    EXPECT_TRUE(ds.features.data()[i] == 0.0 || ds.features.data()[i] == 1.0);
    ones += ds.features.data()[i];
  }
  const double density = ones / static_cast<double>(ds.features.size());
  EXPECT_GT(density, 0.03);
  EXPECT_LT(density, 0.15);
}

TEST(Dataset, FeaturesCorrelateWithClassBand) {
  const auto ds = make_synthetic_citation<double>(400, 4, 40, 11);
  const index_t band = 10;
  double in_band = 0, out_band = 0;
  index_t in_cnt = 0, out_cnt = 0;
  for (index_t v = 0; v < 400; ++v) {
    const index_t c = ds.labels[static_cast<std::size_t>(v)];
    for (index_t f = 0; f < 40; ++f) {
      if (f / band == c) {
        in_band += ds.features(v, f);
        ++in_cnt;
      } else {
        out_band += ds.features(v, f);
        ++out_cnt;
      }
    }
  }
  EXPECT_GT(in_band / in_cnt, 2.5 * (out_band / out_cnt));
}

TEST(Dataset, SplitIsDisjointAndComplete) {
  auto ds = make_synthetic_citation<double>(300, 3, 12, 13);
  assign_split(ds, {.train = 0.5, .val = 0.25}, 5);
  index_t train = 0, val = 0, test = 0;
  for (index_t v = 0; v < 300; ++v) {
    const int members = ds.train_mask[static_cast<std::size_t>(v)] +
                        ds.val_mask[static_cast<std::size_t>(v)] +
                        ds.test_mask[static_cast<std::size_t>(v)];
    EXPECT_EQ(members, 1) << "vertex " << v;
    train += ds.train_mask[static_cast<std::size_t>(v)];
    val += ds.val_mask[static_cast<std::size_t>(v)];
    test += ds.test_mask[static_cast<std::size_t>(v)];
  }
  EXPECT_NEAR(static_cast<double>(train) / 300.0, 0.5, 0.1);
  EXPECT_NEAR(static_cast<double>(val) / 300.0, 0.25, 0.1);
  EXPECT_NEAR(static_cast<double>(test) / 300.0, 0.25, 0.1);
}

TEST(Dataset, InvalidSplitRejected) {
  auto ds = make_synthetic_citation<double>(20, 2, 4, 1);
  EXPECT_THROW(assign_split(ds, {.train = 0.8, .val = 0.3}, 1), std::logic_error);
}

class DatasetIoTest : public ::testing::Test {
 protected:
  void TearDown() override {
    if (!path_.empty()) std::filesystem::remove(path_);
  }
  std::string path_;
};

TEST_F(DatasetIoTest, RoundTripPreservesEverything) {
  path_ = ::testing::TempDir() + "agnn_dataset_rt.bin";
  const auto ds = make_synthetic_citation<double>(150, 3, 15, 17);
  save_dataset(path_, ds);
  const auto back = load_dataset<double>(path_);
  EXPECT_TRUE(back.adj.same_pattern(ds.adj));
  EXPECT_EQ(back.features, ds.features);
  EXPECT_EQ(back.labels, ds.labels);
  EXPECT_EQ(back.train_mask, ds.train_mask);
  EXPECT_EQ(back.val_mask, ds.val_mask);
  EXPECT_EQ(back.test_mask, ds.test_mask);
  EXPECT_EQ(back.num_classes, 3);
}

TEST_F(DatasetIoTest, CorruptFileRejected) {
  path_ = ::testing::TempDir() + "agnn_dataset_bad.bin";
  {
    std::ofstream out(path_, std::ios::binary);
    out << "garbage";
  }
  EXPECT_THROW(load_dataset<double>(path_), std::logic_error);
}

TEST(Dataset, FitLearnsAndGeneralizes) {
  const auto ds = make_synthetic_citation<double>(300, 3, 30, 19);
  GnnConfig cfg;
  cfg.kind = ModelKind::kGAT;
  cfg.in_features = 30;
  cfg.layer_widths = {16, 3};
  cfg.hidden_activation = Activation::kTanh;
  cfg.seed = 23;
  GnnModel<double> model(cfg);
  AdamOptimizer<double> opt(0.01);
  const auto history = fit(model, ds, opt, {.max_epochs = 200, .patience = 60});
  EXPECT_LT(history.train_loss.back(), 0.5 * history.train_loss.front());
  const auto eval = evaluate(model, ds);
  EXPECT_GT(eval.train_accuracy, 0.85);
  EXPECT_GT(eval.test_accuracy, 0.7);
}

TEST(Dataset, EarlyStoppingTriggersOnPlateau) {
  // A tiny dataset the model overfits almost immediately: the validation
  // accuracy plateaus and the patience counter must fire before max_epochs.
  const auto ds = make_synthetic_citation<double>(60, 2, 8, 29);
  GnnConfig cfg;
  cfg.kind = ModelKind::kGCN;
  cfg.in_features = 8;
  cfg.layer_widths = {8, 2};
  cfg.seed = 31;
  GnnModel<double> model(cfg);
  AdamOptimizer<double> opt(0.05);
  const auto history =
      fit(model, ds, opt, {.max_epochs = 100000, .patience = 20, .eval_every = 5});
  EXPECT_TRUE(history.early_stopped);
  EXPECT_LT(static_cast<int>(history.train_loss.size()), 100000);
  EXPECT_GT(history.best_val_accuracy, 0.5);
}

TEST(Dataset, EvaluateUsesNormalizedAdjacencyForGcn) {
  // Just a consistency check: evaluate() must not throw for any model kind
  // and must produce accuracies in [0, 1].
  const auto ds = make_synthetic_citation<double>(80, 2, 8, 37);
  for (const ModelKind kind : {ModelKind::kGCN, ModelKind::kVA, ModelKind::kAGNN,
                               ModelKind::kGAT, ModelKind::kGIN}) {
    GnnConfig cfg;
    cfg.kind = kind;
    cfg.in_features = 8;
    cfg.layer_widths = {4, 2};
    GnnModel<double> model(cfg);
    const auto eval = evaluate(model, ds);
    for (const double acc : {eval.train_accuracy, eval.val_accuracy,
                             eval.test_accuracy}) {
      EXPECT_GE(acc, 0.0);
      EXPECT_LE(acc, 1.0);
    }
  }
}

}  // namespace
}  // namespace agnn
