// The SUMMA-family engines (2D r x c and depth-replicated 3D) must
// reproduce the sequential engine exactly — inference, per-step training
// losses, and post-training parameters — for every model kind, on grids
// that exercise prime rank counts, rectangular factorizations, and
// non-trivial replication depth, always with non-divisible vertex counts.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "comm/communicator.hpp"
#include "core/model.hpp"
#include "dist/dist_summa_engine.hpp"
#include "dist/engine_factory.hpp"
#include "graph/graph.hpp"
#include "test_utils.hpp"

namespace agnn::dist {
namespace {

struct SummaCase {
  ModelKind kind;
  GridShape shape;
  index_t n;
  index_t k;
  int layers;
};

GnnConfig make_config(const SummaCase& p) {
  GnnConfig cfg;
  cfg.kind = p.kind;
  cfg.in_features = p.k;
  cfg.layer_widths.assign(static_cast<std::size_t>(p.layers), p.k);
  cfg.hidden_activation = Activation::kTanh;
  cfg.seed = 4242;
  return cfg;
}

class SummaEngineSweep : public ::testing::TestWithParam<SummaCase> {};

TEST_P(SummaEngineSweep, InferenceMatchesSequential) {
  const auto& p = GetParam();
  const auto g = testing::small_graph<double>(p.n, 5 * p.n, 11 + p.n);
  const CsrMatrix<double> adj =
      p.kind == ModelKind::kGCN ? graph::sym_normalize(g.adj) : g.adj;
  const auto x = testing::random_dense<double>(p.n, p.k, 13);

  GnnModel<double> seq_model(make_config(p));
  const auto ref = seq_model.infer(adj, x);

  comm::SpmdRuntime::run(p.shape.size(), [&](comm::Communicator& world) {
    GnnModel<double> model(make_config(p));  // same seed -> identical replica
    DistSummaEngine<double> engine(world, adj, model, p.shape);
    const auto out = engine.infer(x);
    ASSERT_EQ(out.rows(), ref.rows());
    for (index_t i = 0; i < ref.size(); ++i) {
      ASSERT_NEAR(out.data()[i], ref.data()[i], 1e-8)
          << to_string(p.kind) << " " << p.shape.describe() << " rank "
          << world.rank() << " elem " << i;
    }
  });
}

TEST_P(SummaEngineSweep, TrainingMatchesSequential) {
  const auto& p = GetParam();
  const auto g = testing::small_graph<double>(p.n, 5 * p.n, 17 + p.n);
  const CsrMatrix<double> adj =
      p.kind == ModelKind::kGCN ? graph::sym_normalize(g.adj) : g.adj;
  const CsrMatrix<double> adj_t = adj.transposed();
  const auto x = testing::random_dense<double>(p.n, p.k, 19);
  std::vector<index_t> labels(static_cast<std::size_t>(p.n));
  Rng rng(23);
  for (auto& l : labels) {
    l = static_cast<index_t>(rng.next_bounded(static_cast<std::uint64_t>(p.k)));
  }

  // Sequential reference: 3 SGD steps.
  GnnModel<double> seq_model(make_config(p));
  Trainer<double> trainer(seq_model, std::make_unique<SgdOptimizer<double>>(0.05));
  std::vector<double> ref_losses;
  for (int s = 0; s < 3; ++s) {
    ref_losses.push_back(trainer.step(adj, adj_t, x, labels).loss);
  }

  comm::SpmdRuntime::run(p.shape.size(), [&](comm::Communicator& world) {
    GnnModel<double> model(make_config(p));
    DistSummaEngine<double> engine(world, adj, model, p.shape);
    SgdOptimizer<double> opt(0.05);
    for (int s = 0; s < 3; ++s) {
      const auto res = engine.train_step(x, labels, opt);
      ASSERT_NEAR(res.loss, ref_losses[static_cast<std::size_t>(s)], 1e-8)
          << to_string(p.kind) << " " << p.shape.describe() << " step " << s
          << " rank " << world.rank();
    }
    // Post-training parameters must match the sequential run on every rank —
    // including the depth replicas, whose gradients arrive via the world
    // allreduce only.
    for (std::size_t l = 0; l < model.num_layers(); ++l) {
      const auto& w_dist = model.layer(l).weights();
      const auto& w_seq = seq_model.layer(l).weights();
      for (index_t i = 0; i < w_seq.size(); ++i) {
        ASSERT_NEAR(w_dist.data()[i], w_seq.data()[i], 1e-8)
            << "layer " << l << " W[" << i << "]";
      }
      const auto& a_dist = model.layer(l).attention_params();
      const auto& a_seq = seq_model.layer(l).attention_params();
      for (std::size_t i = 0; i < a_seq.size(); ++i) {
        ASSERT_NEAR(a_dist[i], a_seq[i], 1e-8) << "layer " << l << " a[" << i << "]";
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SummaEngineSweep,
    ::testing::Values(
        SummaCase{ModelKind::kGCN, {DistPolicy::k2D, 2, 2, 1}, 23, 4, 2},
        SummaCase{ModelKind::kGCN, {DistPolicy::k3D, 2, 2, 2}, 26, 3, 2},
        SummaCase{ModelKind::kGIN, {DistPolicy::k2D, 3, 2, 1}, 25, 4, 2},
        SummaCase{ModelKind::kGIN, {DistPolicy::k3D, 2, 1, 4}, 23, 3, 2},
        SummaCase{ModelKind::kVA, {DistPolicy::k2D, 1, 1, 1}, 20, 4, 2},
        SummaCase{ModelKind::kVA, {DistPolicy::k2D, 3, 1, 1}, 22, 3, 2},
        SummaCase{ModelKind::kVA, {DistPolicy::k3D, 3, 2, 2}, 29, 4, 2},
        SummaCase{ModelKind::kAGNN, {DistPolicy::k2D, 2, 3, 1}, 25, 4, 2},
        SummaCase{ModelKind::kAGNN, {DistPolicy::k3D, 2, 2, 2}, 23, 3, 3},
        SummaCase{ModelKind::kGAT, {DistPolicy::k2D, 2, 2, 1}, 23, 4, 2},
        SummaCase{ModelKind::kGAT, {DistPolicy::k2D, 4, 2, 1}, 27, 3, 2},
        SummaCase{ModelKind::kGAT, {DistPolicy::k3D, 2, 2, 3}, 26, 4, 2},
        SummaCase{ModelKind::kGCN, {DistPolicy::k2D, 1, 3, 1}, 21, 4, 2}),
    [](const auto& info) {
      std::string shape = info.param.shape.describe();
      for (auto& ch : shape) {
        if (ch == ':' || ch == '.') ch = '_';
      }
      return std::string(to_string(info.param.kind)) + "_" + shape + "_n" +
             std::to_string(info.param.n);
    });

TEST(SummaEngine, MaskedTrainingMatchesSequential) {
  const index_t n = 24, k = 3;
  const auto g = testing::small_graph<double>(n, 100, 29);
  const CsrMatrix<double> adj_t = g.adj.transposed();
  const auto x = testing::random_dense<double>(n, k, 31);
  std::vector<index_t> labels(static_cast<std::size_t>(n));
  std::vector<std::uint8_t> mask(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    labels[static_cast<std::size_t>(i)] = i % k;
    mask[static_cast<std::size_t>(i)] = (i % 3) != 0;
  }
  GnnConfig cfg;
  cfg.kind = ModelKind::kGAT;
  cfg.in_features = k;
  cfg.layer_widths = {k, k};
  cfg.seed = 71;
  GnnModel<double> seq(cfg);
  Trainer<double> trainer(seq, std::make_unique<SgdOptimizer<double>>(0.02));
  const double ref_loss = trainer.step(g.adj, adj_t, x, labels, mask).loss;

  for (const GridShape shape : {GridShape{DistPolicy::k2D, 3, 2, 1},
                                GridShape{DistPolicy::k3D, 2, 2, 2}}) {
    comm::SpmdRuntime::run(shape.size(), [&](comm::Communicator& world) {
      GnnModel<double> model(cfg);
      DistSummaEngine<double> engine(world, g.adj, model, shape);
      SgdOptimizer<double> opt(0.02);
      const auto res = engine.train_step(x, labels, opt, mask);
      EXPECT_NEAR(res.loss, ref_loss, 1e-9) << shape.describe();
    });
  }
}

// The factory must route every family member to an engine that reproduces
// the sequential model — the type-erased surface the benchmarks and the
// differential harness select at runtime.
TEST(EngineFactory, EveryPolicyMatchesSequential) {
  const index_t n = 24, k = 4;
  const auto g = testing::small_graph<double>(n, 5 * n, 37);
  const auto x = testing::random_dense<double>(n, k, 13);
  GnnConfig cfg;
  cfg.kind = ModelKind::kVA;
  cfg.in_features = k;
  cfg.layer_widths = {k, k};
  cfg.hidden_activation = Activation::kTanh;
  cfg.seed = 4242;
  GnnModel<double> seq(cfg);
  const auto ref = seq.infer(g.adj, x);
  const CsrMatrix<double> adj_t = g.adj.transposed();
  Trainer<double> trainer(seq, std::make_unique<SgdOptimizer<double>>(0.05));
  std::vector<index_t> labels(static_cast<std::size_t>(n));
  Rng rng(23);
  for (auto& l : labels) {
    l = static_cast<index_t>(rng.next_bounded(static_cast<std::uint64_t>(k)));
  }
  std::vector<double> ref_losses;
  for (int s = 0; s < 2; ++s) {
    ref_losses.push_back(trainer.step(g.adj, adj_t, x, labels).loss);
  }

  struct PolicyCase {
    DistPolicy policy;
    int ranks;
    int depth_hint;
  };
  for (const PolicyCase pc :
       {PolicyCase{DistPolicy::k1D, 3, 0}, PolicyCase{DistPolicy::k1_5D, 4, 0},
        PolicyCase{DistPolicy::k2D, 6, 0}, PolicyCase{DistPolicy::k3D, 8, 2}}) {
    comm::SpmdRuntime::run(pc.ranks, [&](comm::Communicator& world) {
      GnnModel<double> model(cfg);
      auto engine =
          make_dist_engine(pc.policy, world, g.adj, model, pc.depth_hint);
      ASSERT_NE(engine, nullptr);
      EXPECT_EQ(engine->policy(), pc.policy);
      EXPECT_EQ(engine->num_vertices(), n);
      const auto out = engine->infer(x);
      ASSERT_EQ(out.rows(), ref.rows());
      for (index_t i = 0; i < ref.size(); ++i) {
        ASSERT_NEAR(out.data()[i], ref.data()[i], 1e-8)
            << to_string(pc.policy) << " p=" << pc.ranks << " elem " << i;
      }
      SgdOptimizer<double> opt(0.05);
      for (int s = 0; s < 2; ++s) {
        const auto res = engine->train_step(x, labels, opt);
        ASSERT_NEAR(res.loss, ref_losses[static_cast<std::size_t>(s)], 1e-8)
            << to_string(pc.policy) << " step " << s;
      }
    });
  }
}

TEST(EngineFactory, EnvironmentKnobSelectsTheFamilyMember) {
  const index_t n = 18, k = 3;
  const auto g = testing::small_graph<double>(n, 4 * n, 41);
  const auto x = testing::random_dense<double>(n, k, 43);
  GnnConfig cfg;
  cfg.kind = ModelKind::kGCN;
  cfg.in_features = k;
  cfg.layer_widths = {k, k};
  cfg.seed = 7;
  const CsrMatrix<double> adj = graph::sym_normalize(g.adj);
  GnnModel<double> seq(cfg);
  const auto ref = seq.infer(adj, x);

  ::setenv("AGNN_DIST", "2d", 1);
  comm::SpmdRuntime::run(6, [&](comm::Communicator& world) {
    GnnModel<double> model(cfg);
    auto engine = make_dist_engine_from_env(world, adj, model);
    EXPECT_EQ(engine->policy(), DistPolicy::k2D);
    const auto out = engine->infer(x);
    for (index_t i = 0; i < ref.size(); ++i) {
      ASSERT_NEAR(out.data()[i], ref.data()[i], 1e-8) << "elem " << i;
    }
  });
  ::unsetenv("AGNN_DIST");

  // Unset: square counts route to the paper's 1.5D scheme.
  comm::SpmdRuntime::run(4, [&](comm::Communicator& world) {
    GnnModel<double> model(cfg);
    auto engine = make_dist_engine_from_env(world, adj, model);
    EXPECT_EQ(engine->policy(), DistPolicy::k1_5D);
  });
}

// gather_output must reassemble rows in global order from the j-major owned
// blocks — the reorder is the subtle part, so pin it on a rectangular grid
// where block boundaries do not align.
TEST(SummaEngine, GatherOutputRestoresGlobalRowOrder) {
  const index_t n = 17, k = 3;
  const auto g = testing::small_graph<double>(n, 3 * n, 53);
  const auto x = testing::random_dense<double>(n, k, 59);
  GnnConfig cfg;
  cfg.kind = ModelKind::kGCN;
  cfg.in_features = k;
  cfg.layer_widths = {k};
  cfg.seed = 11;
  const CsrMatrix<double> adj = graph::sym_normalize(g.adj);
  GnnModel<double> seq(cfg);
  const auto ref = seq.infer(adj, x);
  const GridShape shape{DistPolicy::k2D, 2, 3, 1};
  comm::SpmdRuntime::run(shape.size(), [&](comm::Communicator& world) {
    GnnModel<double> model(cfg);
    DistSummaEngine<double> engine(world, adj, model, shape);
    const auto out = engine.infer(x);
    ASSERT_EQ(out.rows(), n);
    ASSERT_EQ(out.cols(), k);
    for (index_t i = 0; i < ref.size(); ++i) {
      ASSERT_NEAR(out.data()[i], ref.data()[i], 1e-10) << "elem " << i;
    }
  });
}

TEST(SummaEngine, ShapeMustMatchTheRankCount) {
  const index_t n = 12, k = 2;
  const auto g = testing::small_graph<double>(n, 30, 61);
  GnnConfig cfg;
  cfg.kind = ModelKind::kGCN;
  cfg.in_features = k;
  cfg.layer_widths = {k};
  cfg.seed = 3;
  const CsrMatrix<double> adj = graph::sym_normalize(g.adj);
  comm::SpmdRuntime::run(4, [&](comm::Communicator& world) {
    GnnModel<double> model(cfg);
    EXPECT_THROW(DistSummaEngine<double>(world, adj, model,
                                         GridShape{DistPolicy::k2D, 3, 2, 1}),
                 std::logic_error);
  });
}

}  // namespace
}  // namespace agnn::dist
