// Tests for the generalized semiring aggregation ⊕ of Section 4.3:
// sum / min / max / average aggregations as sparse-dense products.
#include <gtest/gtest.h>

#include <limits>

#include "tensor/reference_impls.hpp"
#include "tensor/spmm.hpp"
#include "test_utils.hpp"

namespace agnn {
namespace {

using testing::random_dense;
using testing::random_sparse;

TEST(SemiringSpmm, SumEqualsRealSemiringFastPath) {
  const auto a = random_sparse<double>(14, 0.3, 3);
  const auto h = random_dense<double>(14, 5, 5);
  testing::expect_matrix_near(spmm_semiring<PlusTimesSemiring<double>>(a, h),
                              spmm(a, h), 1e-12, "plus-times vs fast path");
}

TEST(SemiringSpmm, MinAggregationSelectsNeighborhoodMinimum) {
  // Binary adjacency: min aggregation over (min, +) with A values 0 must
  // give h(i, g) = min_{j in N(i)} h(j, g).
  auto a = random_sparse<double>(12, 0.3, 7, /*binary=*/true);
  auto v = a.vals_mutable();
  for (auto& x : v) x = 0.0;  // tropical: edge weight 0 = identity of +
  const auto h = random_dense<double>(12, 4, 11);
  const auto out = spmm_semiring<MinPlusSemiring<double>>(a, h);
  for (index_t i = 0; i < 12; ++i) {
    for (index_t g = 0; g < 4; ++g) {
      double mn = std::numeric_limits<double>::infinity();
      for (index_t e = a.row_begin(i); e < a.row_end(i); ++e) {
        mn = std::min(mn, h(a.col_at(e), g));
      }
      EXPECT_DOUBLE_EQ(out(i, g), mn);
    }
  }
}

TEST(SemiringSpmm, MaxAggregationSelectsNeighborhoodMaximum) {
  auto a = random_sparse<double>(12, 0.3, 13, /*binary=*/true);
  auto v = a.vals_mutable();
  for (auto& x : v) x = 0.0;
  const auto h = random_dense<double>(12, 4, 17);
  const auto out = spmm_semiring<MaxPlusSemiring<double>>(a, h);
  for (index_t i = 0; i < 12; ++i) {
    for (index_t g = 0; g < 4; ++g) {
      double mx = -std::numeric_limits<double>::infinity();
      for (index_t e = a.row_begin(i); e < a.row_end(i); ++e) {
        mx = std::max(mx, h(a.col_at(e), g));
      }
      EXPECT_DOUBLE_EQ(out(i, g), mx);
    }
  }
}

TEST(SemiringSpmm, AverageAggregationComputesNeighborhoodMean) {
  const auto a = random_sparse<double>(15, 0.25, 19, /*binary=*/true);
  const auto h = random_dense<double>(15, 3, 23);
  const auto out = spmm_semiring<AverageSemiring<double>>(a, h);
  for (index_t i = 0; i < 15; ++i) {
    for (index_t g = 0; g < 3; ++g) {
      double sum = 0;
      index_t cnt = a.row_nnz(i);
      for (index_t e = a.row_begin(i); e < a.row_end(i); ++e) sum += h(a.col_at(e), g);
      if (cnt == 0) {
        EXPECT_DOUBLE_EQ(out(i, g), 0.0);
      } else {
        EXPECT_NEAR(out(i, g), sum / static_cast<double>(cnt), 1e-12);
      }
    }
  }
}

TEST(SemiringSpmm, AverageAggregationRespectsWeights) {
  // Weighted mean: values of A act as weights in the tuple semiring.
  CooMatrix<double> coo;
  coo.n_rows = coo.n_cols = 3;
  coo.push_back(0, 1, 1.0);
  coo.push_back(0, 2, 3.0);
  const auto a = CsrMatrix<double>::from_coo(coo);
  DenseMatrix<double> h(3, 1, std::vector<double>{0.0, 4.0, 8.0});
  const auto out = spmm_semiring<AverageSemiring<double>>(a, h);
  // (1*4 + 3*8) / (1+3) = 7
  EXPECT_NEAR(out(0, 0), 7.0, 1e-12);
}

// Property: the average-semiring merge is order-insensitive (the weighted-
// average op2 is associative+commutative over the weights) — permuting the
// neighbor order must not change the result beyond FP noise.
TEST(SemiringSpmm, AverageMergeOrderInsensitive) {
  AverageSemiring<double>::Accum acc1{}, acc2{};
  const double vals[] = {3.0, -1.0, 7.5, 2.25};
  const double weights[] = {1.0, 2.0, 0.5, 4.0};
  for (int i = 0; i < 4; ++i) {
    AverageSemiring<double>::accumulate(acc1, weights[i], vals[i]);
  }
  for (int i = 3; i >= 0; --i) {
    AverageSemiring<double>::accumulate(acc2, weights[i], vals[i]);
  }
  EXPECT_NEAR(AverageSemiring<double>::finalize(acc1),
              AverageSemiring<double>::finalize(acc2), 1e-12);
  // Both must equal the direct weighted mean.
  double num = 0, den = 0;
  for (int i = 0; i < 4; ++i) {
    num += weights[i] * vals[i];
    den += weights[i];
  }
  EXPECT_NEAR(AverageSemiring<double>::finalize(acc1), num / den, 1e-12);
}

class AggregateDispatchSweep : public ::testing::TestWithParam<Aggregation> {};

TEST_P(AggregateDispatchSweep, DispatchMatchesDirectSemiringCall) {
  auto a = random_sparse<double>(10, 0.3, 29, /*binary=*/true);
  if (GetParam() == Aggregation::kMin || GetParam() == Aggregation::kMax) {
    auto v = a.vals_mutable();
    for (auto& x : v) x = 0.0;
  }
  const auto h = random_dense<double>(10, 4, 31);
  const auto out = aggregate(a, h, GetParam());
  DenseMatrix<double> ref;
  switch (GetParam()) {
    case Aggregation::kSum: ref = spmm(a, h); break;
    case Aggregation::kMin: ref = spmm_semiring<MinPlusSemiring<double>>(a, h); break;
    case Aggregation::kMax: ref = spmm_semiring<MaxPlusSemiring<double>>(a, h); break;
    case Aggregation::kMean: ref = spmm_semiring<AverageSemiring<double>>(a, h); break;
  }
  testing::expect_matrix_near(out, ref, 1e-12, to_string(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(AllAggregations, AggregateDispatchSweep,
                         ::testing::Values(Aggregation::kSum, Aggregation::kMin,
                                           Aggregation::kMax, Aggregation::kMean));

TEST(SemiringSpmm, EmptyRowsYieldIdentity) {
  CooMatrix<double> coo;
  coo.n_rows = coo.n_cols = 3;
  coo.push_back(0, 1, 0.0);
  const auto a = CsrMatrix<double>::from_coo(coo);
  const auto h = random_dense<double>(3, 2, 37);
  const auto mn = spmm_semiring<MinPlusSemiring<double>>(a, h);
  EXPECT_TRUE(std::isinf(mn(1, 0)));  // empty neighborhood -> +inf identity
  const auto mean = spmm_semiring<AverageSemiring<double>>(a, h);
  EXPECT_DOUBLE_EQ(mean(1, 0), 0.0);
}

}  // namespace
}  // namespace agnn
