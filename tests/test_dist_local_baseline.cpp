// The distributed local-formulation (ghost-exchange) engine must also
// reproduce the sequential engine exactly — it is the same mathematics with
// the message-passing communication pattern.
#include <gtest/gtest.h>

#include <mutex>

#include "baseline/dist_local_engine.hpp"
#include "comm/communicator.hpp"
#include "core/model.hpp"
#include "graph/graph.hpp"
#include "test_utils.hpp"

namespace agnn::baseline {
namespace {

struct LocalCase {
  ModelKind kind;
  int ranks;
  index_t n;
  index_t k;
  int layers;
};

GnnConfig make_config(const LocalCase& p) {
  GnnConfig cfg;
  cfg.kind = p.kind;
  cfg.in_features = p.k;
  cfg.layer_widths.assign(static_cast<std::size_t>(p.layers), p.k);
  cfg.hidden_activation = Activation::kTanh;
  cfg.seed = 888;
  return cfg;
}

class DistLocalSweep : public ::testing::TestWithParam<LocalCase> {};

TEST_P(DistLocalSweep, InferenceMatchesSequential) {
  const auto& p = GetParam();
  const auto g = testing::small_graph<double>(p.n, 5 * p.n, 31 + p.n);
  const CsrMatrix<double> adj =
      p.kind == ModelKind::kGCN ? graph::sym_normalize(g.adj) : g.adj;
  const auto x = testing::random_dense<double>(p.n, p.k, 37);
  GnnModel<double> seq_model(make_config(p));
  const auto ref = seq_model.infer(adj, x);

  comm::SpmdRuntime::run(p.ranks, [&](comm::Communicator& world) {
    GnnModel<double> model(make_config(p));
    DistLocalEngine<double> engine(world, adj, model);
    const auto out = engine.infer(x);
    ASSERT_EQ(out.rows(), ref.rows());
    for (index_t i = 0; i < ref.size(); ++i) {
      ASSERT_NEAR(out.data()[i], ref.data()[i], 1e-8)
          << to_string(p.kind) << " rank " << world.rank();
    }
  });
}

TEST_P(DistLocalSweep, TrainingMatchesSequential) {
  const auto& p = GetParam();
  const auto g = testing::small_graph<double>(p.n, 5 * p.n, 41 + p.n);
  const CsrMatrix<double> adj =
      p.kind == ModelKind::kGCN ? graph::sym_normalize(g.adj) : g.adj;
  const CsrMatrix<double> adj_t = adj.transposed();
  const auto x = testing::random_dense<double>(p.n, p.k, 43);
  std::vector<index_t> labels(static_cast<std::size_t>(p.n));
  Rng rng(47);
  for (auto& l : labels) {
    l = static_cast<index_t>(rng.next_bounded(static_cast<std::uint64_t>(p.k)));
  }

  GnnModel<double> seq_model(make_config(p));
  Trainer<double> trainer(seq_model, std::make_unique<SgdOptimizer<double>>(0.05));
  std::vector<double> ref_losses;
  for (int s = 0; s < 3; ++s) {
    ref_losses.push_back(trainer.step(adj, adj_t, x, labels).loss);
  }

  comm::SpmdRuntime::run(p.ranks, [&](comm::Communicator& world) {
    GnnModel<double> model(make_config(p));
    DistLocalEngine<double> engine(world, adj, model);
    SgdOptimizer<double> opt(0.05);
    for (int s = 0; s < 3; ++s) {
      const auto res = engine.train_step(x, labels, opt);
      ASSERT_NEAR(res.loss, ref_losses[static_cast<std::size_t>(s)], 1e-8)
          << to_string(p.kind) << " step " << s;
    }
    for (std::size_t l = 0; l < model.num_layers(); ++l) {
      const auto& w_dist = model.layer(l).weights();
      const auto& w_seq = seq_model.layer(l).weights();
      for (index_t i = 0; i < w_seq.size(); ++i) {
        ASSERT_NEAR(w_dist.data()[i], w_seq.data()[i], 1e-8);
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    Cases, DistLocalSweep,
    ::testing::Values(LocalCase{ModelKind::kGCN, 3, 22, 4, 2},
                      LocalCase{ModelKind::kVA, 1, 20, 4, 2},
                      LocalCase{ModelKind::kVA, 3, 22, 4, 2},
                      LocalCase{ModelKind::kVA, 5, 23, 3, 2},
                      LocalCase{ModelKind::kAGNN, 3, 22, 4, 2},
                      LocalCase{ModelKind::kAGNN, 5, 23, 3, 2},
                      LocalCase{ModelKind::kGAT, 1, 20, 4, 2},
                      LocalCase{ModelKind::kGAT, 3, 22, 4, 2},
                      LocalCase{ModelKind::kGAT, 5, 23, 3, 3},
                      LocalCase{ModelKind::kGCN, 7, 30, 3, 2},
                      LocalCase{ModelKind::kGIN, 3, 22, 4, 2},
                      LocalCase{ModelKind::kGIN, 5, 23, 3, 2},
                      LocalCase{ModelKind::kGAT, 7, 30, 3, 2}),
    [](const auto& info) {
      return std::string(to_string(info.param.kind)) + "_p" +
             std::to_string(info.param.ranks) + "_n" + std::to_string(info.param.n) +
             "_L" + std::to_string(info.param.layers);
    });

TEST(DistLocal, GhostCountMatchesRemoteNeighborSet) {
  const index_t n = 30;
  const auto g = testing::small_graph<double>(n, 150, 51);
  comm::SpmdRuntime::run(3, [&](comm::Communicator& world) {
    GnnConfig cfg;
    cfg.kind = ModelKind::kVA;
    cfg.in_features = 2;
    cfg.layer_widths = {2};
    GnnModel<double> model(cfg);
    DistLocalEngine<double> engine(world, g.adj, model);
    // Manually count distinct remote neighbors of the owned rows.
    const auto vr = engine.owned_block();
    std::vector<bool> remote(static_cast<std::size_t>(n), false);
    index_t count = 0;
    for (index_t i = vr.begin; i < vr.end; ++i) {
      for (index_t e = g.adj.row_begin(i); e < g.adj.row_end(i); ++e) {
        const index_t c = g.adj.col_at(e);
        if ((c < vr.begin || c >= vr.end) && !remote[static_cast<std::size_t>(c)]) {
          remote[static_cast<std::size_t>(c)] = true;
          ++count;
        }
      }
    }
    EXPECT_EQ(engine.num_ghosts(), count);
  });
}

TEST(DistLocal, VolumeScalesWithGhostsTimesFeatures) {
  // One forward layer must move ~ghosts * k words per rank (plus the k^2
  // parameter broadcast) — the Theta(nkd/p) local-formulation cost.
  const index_t n = 48, k = 8;
  const auto g = testing::small_graph<double>(n, 600, 53);
  const auto x = testing::random_dense<double>(n, k, 55);
  GnnConfig cfg;
  cfg.kind = ModelKind::kGCN;
  cfg.in_features = k;
  cfg.layer_widths = {k};
  cfg.seed = 3;

  const auto stats = comm::SpmdRuntime::run(4, [&](comm::Communicator& world) {
    GnnModel<double> model(cfg);
    DistLocalEngine<double> engine(world, graph::sym_normalize(g.adj), model);
    comm::reset_all_stats(world);
    engine.forward(x, nullptr);
  });
  // Total ghost fetch volume: every rank's ghosts were pulled from owners.
  std::uint64_t total_ghosts = 0;
  comm::SpmdRuntime::run(4, [&](comm::Communicator& world) {
    GnnModel<double> model(cfg);
    DistLocalEngine<double> engine(world, graph::sym_normalize(g.adj), model);
    if (world.rank() == 0) total_ghosts = 0;
    world.barrier();
    static std::mutex mu;
    {
      std::lock_guard<std::mutex> lock(mu);
      total_ghosts += static_cast<std::uint64_t>(engine.num_ghosts());
    }
    world.barrier();
  });
  const std::uint64_t expected_ghost_bytes = total_ghosts * k * sizeof(double);
  const std::uint64_t param_bytes = 4 * (k * k) * sizeof(double);  // bcast per rank
  EXPECT_EQ(comm::total_bytes_sent(stats), expected_ghost_bytes + param_bytes);
}

}  // namespace
}  // namespace agnn::baseline
