// The distribution-policy family routing: every rank count must map to a
// valid grid under 1D/2D/3D, the square-only 1.5D scheme must reject
// non-squares with a structured error naming the alternatives, and the
// environment knob must parse strictly (a typo throws rather than silently
// selecting a different distribution).
#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>
#include <string>

#include "dist/dist_policy.hpp"
#include "dist/process_grid.hpp"

namespace agnn::dist {
namespace {

TEST(DistPolicy, ParseAcceptsEveryFamilyMember) {
  EXPECT_EQ(parse_dist_policy("1d"), DistPolicy::k1D);
  EXPECT_EQ(parse_dist_policy("1D"), DistPolicy::k1D);
  EXPECT_EQ(parse_dist_policy("1.5d"), DistPolicy::k1_5D);
  EXPECT_EQ(parse_dist_policy("15d"), DistPolicy::k1_5D);
  EXPECT_EQ(parse_dist_policy("2d"), DistPolicy::k2D);
  EXPECT_EQ(parse_dist_policy("summa"), DistPolicy::k2D);
  EXPECT_EQ(parse_dist_policy("3d"), DistPolicy::k3D);
  EXPECT_EQ(parse_dist_policy("4d"), std::nullopt);
  EXPECT_EQ(parse_dist_policy(""), std::nullopt);
  EXPECT_EQ(parse_dist_policy("auto"), std::nullopt);  // routed upstream
}

TEST(DistPolicy, RoundTripNames) {
  for (const DistPolicy p : {DistPolicy::k1D, DistPolicy::k1_5D,
                             DistPolicy::k2D, DistPolicy::k3D}) {
    EXPECT_EQ(parse_dist_policy(to_string(p)), p);
  }
}

// The rank counts the issue singles out: none square except via 1D/2D/3D.
TEST(DistPolicy, AcceptanceAcrossAwkwardRankCounts) {
  for (const int p : {2, 3, 6, 8, 12}) {
    EXPECT_TRUE(policy_accepts(DistPolicy::k1D, p)) << p;
    EXPECT_TRUE(policy_accepts(DistPolicy::k2D, p)) << p;
    EXPECT_TRUE(policy_accepts(DistPolicy::k3D, p)) << p;
    EXPECT_FALSE(policy_accepts(DistPolicy::k1_5D, p)) << p;
  }
  for (const int p : {1, 4, 9, 16}) {
    EXPECT_TRUE(policy_accepts(DistPolicy::k1_5D, p)) << p;
  }
  EXPECT_FALSE(policy_accepts(DistPolicy::k2D, 0));
}

TEST(DistPolicy, GridForRoutesEveryRankCount) {
  // 1D: p x 1 x 1, always.
  for (const int p : {1, 2, 3, 6, 8, 12}) {
    const GridShape g = grid_for(DistPolicy::k1D, p);
    EXPECT_EQ(g.rows, p);
    EXPECT_EQ(g.cols, 1);
    EXPECT_EQ(g.depth, 1);
    EXPECT_EQ(g.size(), p);
  }
  // 2D: most-balanced r x c with r >= c.
  const auto check_2d = [](int p, int r, int c) {
    const GridShape g = grid_for(DistPolicy::k2D, p);
    EXPECT_EQ(g.rows, r) << "p=" << p;
    EXPECT_EQ(g.cols, c) << "p=" << p;
    EXPECT_EQ(g.depth, 1) << "p=" << p;
  };
  check_2d(2, 2, 1);
  check_2d(3, 3, 1);
  check_2d(6, 3, 2);
  check_2d(8, 4, 2);
  check_2d(12, 4, 3);
  // 3D: depth defaults to the smallest prime factor, remainder balanced.
  const auto check_3d = [](int p, int r, int c, int d) {
    const GridShape g = grid_for(DistPolicy::k3D, p);
    EXPECT_EQ(g.rows, r) << "p=" << p;
    EXPECT_EQ(g.cols, c) << "p=" << p;
    EXPECT_EQ(g.depth, d) << "p=" << p;
    EXPECT_EQ(g.size(), p) << "p=" << p;
  };
  check_3d(2, 1, 1, 2);
  check_3d(3, 1, 1, 3);
  check_3d(6, 3, 1, 2);
  check_3d(8, 2, 2, 2);
  check_3d(12, 3, 2, 2);
  // 1.5D accepts exactly the squares.
  const GridShape sq = grid_for(DistPolicy::k1_5D, 9);
  EXPECT_EQ(sq.rows, 3);
  EXPECT_EQ(sq.cols, 3);
  EXPECT_EQ(sq.depth, 1);
}

TEST(DistPolicy, DepthHintOverridesAndValidates) {
  const GridShape g = grid_for(DistPolicy::k3D, 12, /*depth_hint=*/3);
  EXPECT_EQ(g.depth, 3);
  EXPECT_EQ(g.rows * g.cols, 4);
  EXPECT_THROW(grid_for(DistPolicy::k3D, 12, 5), std::logic_error);
}

TEST(DistPolicy, NonSquare15dErrorNamesAlternatives) {
  for (const int p : {2, 3, 6, 8, 12}) {
    try {
      grid_for(DistPolicy::k1_5D, p);
      FAIL() << "1.5d must reject p=" << p;
    } catch (const std::logic_error& e) {
      const std::string msg = e.what();
      EXPECT_NE(msg.find("AGNN_DIST=1d"), std::string::npos) << msg;
      EXPECT_NE(msg.find("AGNN_DIST=2d"), std::string::npos) << msg;
      EXPECT_NE(msg.find("AGNN_DIST=3d"), std::string::npos) << msg;
      EXPECT_NE(msg.find(std::to_string(p)), std::string::npos) << msg;
    }
  }
}

TEST(DistPolicy, DefaultPolicyPrefersThePaperSchemeWhenSquare) {
  EXPECT_EQ(default_policy_for(1), DistPolicy::k1_5D);
  EXPECT_EQ(default_policy_for(4), DistPolicy::k1_5D);
  EXPECT_EQ(default_policy_for(9), DistPolicy::k1_5D);
  for (const int p : {2, 3, 6, 8, 12}) {
    EXPECT_EQ(default_policy_for(p), DistPolicy::k2D) << p;
  }
}

TEST(DistPolicy, EnvironmentRoutingIsStrict) {
  ::unsetenv("AGNN_DIST");
  EXPECT_EQ(policy_from_env(4), DistPolicy::k1_5D);
  EXPECT_EQ(policy_from_env(6), DistPolicy::k2D);
  ::setenv("AGNN_DIST", "auto", 1);
  EXPECT_EQ(policy_from_env(9), DistPolicy::k1_5D);
  ::setenv("AGNN_DIST", "3d", 1);
  EXPECT_EQ(policy_from_env(8), DistPolicy::k3D);
  ::setenv("AGNN_DIST", "rowcol", 1);
  EXPECT_THROW(policy_from_env(4), std::logic_error);
  ::unsetenv("AGNN_DIST");

  ::setenv("AGNN_DIST_DEPTH", "4", 1);
  EXPECT_EQ(depth_hint_from_env(), 4);
  ::unsetenv("AGNN_DIST_DEPTH");
  EXPECT_EQ(depth_hint_from_env(), 0);
}

TEST(DistPolicy, GridFromEnvComposesPolicyAndDepth) {
  ::setenv("AGNN_DIST", "3d", 1);
  ::setenv("AGNN_DIST_DEPTH", "2", 1);
  const GridShape g = grid_from_env(8);
  EXPECT_EQ(g.policy, DistPolicy::k3D);
  EXPECT_EQ(g.depth, 2);
  EXPECT_EQ(g.size(), 8);
  ::unsetenv("AGNN_DIST");
  ::unsetenv("AGNN_DIST_DEPTH");
}

TEST(DistPolicy, BalancedFactorsPutTheLargerFactorOnRows) {
  for (const int p : {1, 2, 3, 4, 6, 8, 12, 30, 97}) {
    const auto [r, c] = balanced_factors(p);
    EXPECT_EQ(r * c, p) << p;
    EXPECT_GE(r, c) << p;
  }
  EXPECT_EQ(balanced_factors(97).second, 1);  // prime -> p x 1
}

TEST(ProcessGridFamily, TrySideForReportsWithoutThrowing) {
  EXPECT_EQ(ProcessGrid::try_side_for(9), 3);
  EXPECT_EQ(ProcessGrid::try_side_for(16), 4);
  for (const int p : {2, 3, 6, 8, 12}) {
    EXPECT_EQ(ProcessGrid::try_side_for(p), std::nullopt) << p;
  }
}

TEST(ProcessGridFamily, SideForErrorNamesAcceptingDistributions) {
  for (const int p : {2, 3, 6, 8, 12}) {
    try {
      ProcessGrid::side_for(p);
      FAIL() << "side_for must reject p=" << p;
    } catch (const std::logic_error& e) {
      const std::string msg = e.what();
      EXPECT_NE(msg.find("AGNN_DIST=1d"), std::string::npos) << msg;
      EXPECT_NE(msg.find("AGNN_DIST=2d"), std::string::npos) << msg;
      EXPECT_NE(msg.find("AGNN_DIST=3d"), std::string::npos) << msg;
    }
  }
  EXPECT_EQ(ProcessGrid::side_for(4), 2);
  EXPECT_EQ(ProcessGrid::side_for(1), 1);
}

// block_index_of must be the exact inverse of block_range on every index,
// including the non-divisible splits where leading blocks are one larger.
TEST(ProcessGridFamily, BlockIndexOfInvertsBlockRange) {
  for (const index_t n : {1, 5, 8, 23, 64}) {
    for (const index_t nb : {1, 2, 3, 5, 7}) {
      if (nb > n) continue;
      for (index_t x = 0; x < n; ++x) {
        const index_t b = block_index_of(n, nb, x);
        ASSERT_GE(b, 0);
        ASSERT_LT(b, nb);
        const BlockRange r = block_range(n, nb, b);
        EXPECT_GE(x, r.begin) << "n=" << n << " nb=" << nb << " x=" << x;
        EXPECT_LT(x, r.end) << "n=" << n << " nb=" << nb << " x=" << x;
      }
    }
  }
}

}  // namespace
}  // namespace agnn::dist
