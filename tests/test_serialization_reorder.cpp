// Tests for model checkpointing, vertex reordering, and feature dropout.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>

#include "core/gradcheck.hpp"
#include "dist/process_grid.hpp"
#include "core/model.hpp"
#include "core/serialization.hpp"
#include "graph/kronecker.hpp"
#include "graph/sbm.hpp"
#include "graph/graph.hpp"
#include "graph/reorder.hpp"
#include "test_utils.hpp"

namespace agnn {
namespace {

class SerializationSweep : public ::testing::TestWithParam<ModelKind> {
 protected:
  void TearDown() override {
    if (!path_.empty()) std::filesystem::remove(path_);
  }
  std::string path_;
};

TEST_P(SerializationSweep, RoundTripPreservesModelExactly) {
  path_ = ::testing::TempDir() + "agnn_model_" + to_string(GetParam()) + ".bin";
  GnnConfig cfg;
  cfg.kind = GetParam();
  cfg.in_features = 6;
  cfg.layer_widths = {8, 5, 3};
  cfg.hidden_activation = Activation::kTanh;
  cfg.attention_slope = 0.15;
  cfg.gin_epsilon = 0.25;
  cfg.seed = 77;
  GnnModel<double> model(cfg);
  // Perturb the weights so we are not just testing seeded construction.
  Rng rng(5);
  for (std::size_t l = 0; l < model.num_layers(); ++l) {
    model.layer(l).weights().fill_uniform(rng, -2.0, 2.0);
  }
  save_model(path_, model);
  GnnModel<double> loaded = load_model<double>(path_);

  ASSERT_EQ(loaded.num_layers(), model.num_layers());
  EXPECT_EQ(loaded.config().kind, cfg.kind);
  for (std::size_t l = 0; l < model.num_layers(); ++l) {
    EXPECT_EQ(loaded.layer(l).weights(), model.layer(l).weights()) << l;
    EXPECT_EQ(loaded.layer(l).attention_params(), model.layer(l).attention_params());
    EXPECT_EQ(loaded.layer(l).weights2(), model.layer(l).weights2());
  }
  // The loaded model must produce bit-identical inference.
  const auto g = testing::small_graph<double>(20, 80, 9);
  const CsrMatrix<double> adj =
      cfg.kind == ModelKind::kGCN ? graph::sym_normalize(g.adj) : g.adj;
  const auto x = testing::random_dense<double>(20, 6, 11);
  EXPECT_EQ(model.infer(adj, x), loaded.infer(adj, x));
}

INSTANTIATE_TEST_SUITE_P(Models, SerializationSweep,
                         ::testing::Values(ModelKind::kGCN, ModelKind::kVA,
                                           ModelKind::kAGNN, ModelKind::kGAT,
                                           ModelKind::kGIN),
                         [](const auto& info) { return to_string(info.param); });

TEST(Serialization, CorruptFileRejected) {
  const std::string path = ::testing::TempDir() + "agnn_model_bad.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "THIS IS NOT A MODEL FILE";
  }
  EXPECT_THROW(load_model<double>(path), std::logic_error);
  std::filesystem::remove(path);
  EXPECT_THROW(load_model<double>("/no/such/model.bin"), std::logic_error);
}

// ---- reordering --------------------------------------------------------------

TEST(Reorder, PermutationValidation) {
  EXPECT_NO_THROW(graph::validate_permutation({2, 0, 1}, 3));
  EXPECT_THROW(graph::validate_permutation({0, 0, 1}, 3), std::logic_error);
  EXPECT_THROW(graph::validate_permutation({0, 1, 3}, 3), std::logic_error);
  EXPECT_THROW(graph::validate_permutation({0, 1}, 3), std::logic_error);
}

TEST(Reorder, RandomPermutationIsBijective) {
  const auto perm = graph::random_permutation(100, 7);
  EXPECT_NO_THROW(graph::validate_permutation(perm, 100));
  EXPECT_NE(perm, graph::identity_permutation(100));
}

TEST(Reorder, PermuteGraphPreservesStructure) {
  const auto g = testing::small_graph<double>(30, 120, 13);
  const auto perm = graph::random_permutation(30, 17);
  const auto pg = graph::permute_graph(g.adj, perm);
  EXPECT_EQ(pg.nnz(), g.adj.nnz());
  // Edge (u, v) in A <=> (perm[u], perm[v]) in B, with the same value.
  const auto da = g.adj.to_dense();
  const auto db = pg.to_dense();
  for (index_t u = 0; u < 30; ++u) {
    for (index_t v = 0; v < 30; ++v) {
      EXPECT_DOUBLE_EQ(db(perm[static_cast<std::size_t>(u)],
                          perm[static_cast<std::size_t>(v)]),
                       da(u, v));
    }
  }
}

TEST(Reorder, DegreeDescendingPutsHubsFirst) {
  const auto g = testing::small_graph<double>(50, 300, 19);
  const auto perm = graph::degree_descending_permutation(g.adj);
  const auto pg = graph::permute_graph(g.adj, perm);
  for (index_t v = 1; v < 50; ++v) {
    EXPECT_GE(pg.row_nnz(v - 1), pg.row_nnz(v)) << "at " << v;
  }
}

TEST(Reorder, GnnIsEquivariantUnderVertexRelabeling) {
  // The key correctness property: infer(P A P^T, P X) == P infer(A, X).
  const auto g = testing::small_graph<double>(24, 100, 23);
  const auto x = testing::random_dense<double>(24, 5, 29);
  const auto perm = graph::random_permutation(24, 31);
  for (const ModelKind kind : {ModelKind::kVA, ModelKind::kAGNN, ModelKind::kGAT,
                               ModelKind::kGIN}) {
    GnnConfig cfg;
    cfg.kind = kind;
    cfg.in_features = 5;
    cfg.layer_widths = {5, 5};
    cfg.seed = 3;
    GnnModel<double> model(cfg);
    const auto h = model.infer(g.adj, x);
    const auto hp = model.infer(graph::permute_graph(g.adj, perm),
                                graph::permute_rows(x, perm));
    testing::expect_matrix_near(graph::permute_rows(h, perm), hp, 1e-8,
                                to_string(kind));
  }
}

TEST(Reorder, ShuffleReducesKroneckerBlockImbalance) {
  const auto el = graph::generate_kronecker({.scale = 11, .edges = 40000, .seed = 5});
  const auto g = graph::build_graph<double>(el);
  const double natural = graph::block_imbalance(g.adj, 4);
  const auto perm = graph::random_permutation(g.num_vertices(), 37);
  const double shuffled =
      graph::block_imbalance(graph::permute_graph(g.adj, perm), 4);
  // Kronecker natural order concentrates hubs in block (0,0); a random
  // shuffle must clearly improve the max/mean block load.
  EXPECT_GT(natural, 1.5 * shuffled);
  EXPECT_LT(shuffled, 1.5);
}

TEST(Reorder, PermuteVectorRoundTrip) {
  const std::vector<int> v{10, 20, 30, 40};
  const graph::Permutation perm{2, 0, 3, 1};
  const auto pv = graph::permute_vector(v, perm);
  EXPECT_EQ(pv, (std::vector<int>{20, 40, 10, 30}));
}

TEST(Reorder, OutParamPermuteMatchesByValueForms) {
  const auto x = testing::random_dense<double>(17, 3, 61);
  const auto perm = graph::random_permutation(17, 67);
  DenseMatrix<double> out;
  graph::permute_rows(x, perm, out);
  EXPECT_EQ(out, graph::permute_rows(x, perm));
  std::vector<double> v(17);
  Rng rng(71);
  for (auto& e : v) e = rng.next_uniform(-1, 1);
  std::vector<double> vout;
  graph::permute_vector(v, perm, vout);
  EXPECT_EQ(vout, graph::permute_vector(v, perm));
}

// ---- RCM ---------------------------------------------------------------------

// Bandwidth of the permuted matrix: max |perm[i] - perm[j]| over edges. RCM's
// whole purpose is to make this small on near-symmetric adjacencies.
index_t permuted_bandwidth(const CsrMatrix<double>& adj,
                           const graph::Permutation& perm) {
  index_t bw = 0;
  for (index_t i = 0; i < adj.rows(); ++i) {
    for (index_t e = adj.row_begin(i); e < adj.row_end(i); ++e) {
      bw = std::max(bw, std::abs(perm[static_cast<std::size_t>(i)] -
                                 perm[static_cast<std::size_t>(adj.col_at(e))]));
    }
  }
  return bw;
}

TEST(Reorder, RcmIsBijectiveAndDeterministic) {
  const auto g = testing::small_graph<double>(80, 300, 73);
  const auto perm = graph::rcm_permutation(g.adj);
  EXPECT_NO_THROW(graph::validate_permutation(perm, 80));
  EXPECT_EQ(graph::rcm_permutation(g.adj), perm)
      << "RCM must be deterministic — ties break on vertex id";
}

TEST(Reorder, RcmRecoversChainBandwidth) {
  // A chain has natural bandwidth 1; scramble it, then RCM must bring the
  // bandwidth back to a small constant while the scramble leaves it O(n).
  CooMatrix<double> coo;
  const index_t n = 120;
  coo.n_rows = coo.n_cols = n;
  for (index_t i = 0; i + 1 < n; ++i) {
    coo.push_back(i, i + 1, 1.0);
    coo.push_back(i + 1, i, 1.0);
  }
  const auto chain = CsrMatrix<double>::from_coo(coo);
  const auto scramble = graph::random_permutation(n, 79);
  const auto scrambled = graph::permute_graph(chain, scramble);
  const auto rcm = graph::rcm_permutation(scrambled);
  EXPECT_LE(permuted_bandwidth(scrambled, rcm), 2);
  EXPECT_GT(permuted_bandwidth(scrambled, graph::identity_permutation(n)), 10);
}

TEST(Reorder, RcmCoversDisconnectedComponentsAndIsolatedVertices) {
  // Two components plus fully isolated vertices (empty rows): every vertex
  // must still receive exactly one new id.
  CooMatrix<double> coo;
  coo.n_rows = coo.n_cols = 40;
  for (index_t i = 0; i + 1 < 15; ++i) {
    coo.push_back(i, i + 1, 1.0);
    coo.push_back(i + 1, i, 1.0);
  }
  for (index_t i = 20; i + 1 < 30; ++i) {
    coo.push_back(i, i + 1, 1.0);
    coo.push_back(i + 1, i, 1.0);
  }
  const auto a = CsrMatrix<double>::from_coo(coo);
  const auto perm = graph::rcm_permutation(a);
  EXPECT_NO_THROW(graph::validate_permutation(perm, 40));
}

TEST(Reorder, RcmImprovesKroneckerBlockLocality) {
  // On a skewed Kronecker graph RCM is a locality ordering, not a balance
  // ordering — but it must stay a valid bijection through the full pipeline
  // and keep the permuted graph's bandwidth below the natural order's.
  const auto el = graph::generate_kronecker({.scale = 9, .edges = 8000, .seed = 83});
  const auto g = graph::build_graph<double>(el);
  const auto perm = graph::rcm_permutation(g.adj);
  EXPECT_NO_THROW(graph::validate_permutation(perm, g.num_vertices()));
  EXPECT_LT(permuted_bandwidth(g.adj, perm),
            permuted_bandwidth(g.adj, graph::identity_permutation(g.num_vertices())));
}

// ---- block_imbalance against the real partition ------------------------------
// block_imbalance must use the same partition as the 2D process grids
// (dist::block_range); a hand-rolled `n / grid_side` reimplementation
// diverges on non-divisible n and breaks outright when grid_side > n.

double brute_force_imbalance(const CsrMatrix<double>& adj, int grid_side) {
  const index_t n = adj.rows();
  std::vector<double> nnz(static_cast<std::size_t>(grid_side * grid_side), 0);
  for (index_t bi = 0; bi < grid_side; ++bi) {
    const auto rr = dist::block_range(n, grid_side, bi);
    for (index_t bj = 0; bj < grid_side; ++bj) {
      const auto cr = dist::block_range(n, grid_side, bj);
      for (index_t i = rr.begin; i < rr.end; ++i) {
        for (index_t e = adj.row_begin(i); e < adj.row_end(i); ++e) {
          const index_t j = adj.col_at(e);
          if (j >= cr.begin && j < cr.end) {
            nnz[static_cast<std::size_t>(bi * grid_side + bj)] += 1;
          }
        }
      }
    }
  }
  double mx = 0, total = 0;
  for (const double b : nnz) {
    mx = std::max(mx, b);
    total += b;
  }
  const double mean = total / static_cast<double>(nnz.size());
  return mean > 0 ? mx / mean : 0.0;
}

TEST(Reorder, BlockImbalanceMatchesBlockRangePartition) {
  // Non-divisible n across several grid sides, including grid_side > n where
  // the trailing blocks are empty.
  const auto g = testing::small_graph<double>(23, 90, 89);
  for (const int grid_side : {1, 2, 3, 4, 5, 7, 23, 31}) {
    EXPECT_DOUBLE_EQ(graph::block_imbalance(g.adj, grid_side),
                     brute_force_imbalance(g.adj, grid_side))
        << "grid_side=" << grid_side;
  }
}

// ---- dropout -----------------------------------------------------------------

TEST(Dropout, ZeroRateMatchesPlainForward) {
  const auto g = testing::small_graph<double>(16, 60, 41);
  GnnConfig cfg;
  cfg.kind = ModelKind::kGAT;
  cfg.in_features = 4;
  cfg.layer_widths = {4};
  GnnModel<double> model(cfg);
  const auto x = testing::random_dense<double>(16, 4, 43);
  std::vector<LayerCache<double>> c1, c2;
  const auto h1 = model.forward(g.adj, x, c1);
  const auto h2 = model.forward(g.adj, x, c2, 0.0, 9);
  EXPECT_EQ(h1, h2);
  EXPECT_TRUE(c2[0].dropout_mask.empty());
}

TEST(Dropout, MaskIsDeterministicPerSeedAndUnbiased) {
  const auto g = testing::small_graph<double>(64, 300, 47);
  GnnConfig cfg;
  cfg.kind = ModelKind::kVA;
  cfg.in_features = 16;
  cfg.layer_widths = {16};
  GnnModel<double> model(cfg);
  const auto x = testing::random_dense<double>(64, 16, 49);
  std::vector<LayerCache<double>> c1, c2, c3;
  const auto h1 = model.forward(g.adj, x, c1, 0.4, 123);
  const auto h2 = model.forward(g.adj, x, c2, 0.4, 123);
  const auto h3 = model.forward(g.adj, x, c3, 0.4, 124);
  EXPECT_EQ(h1, h2);  // same seed -> same masks
  EXPECT_FALSE(h1 == h3);
  // Inverted dropout: mask values are 0 or 1/(1-q), mean ~ 1.
  double sum = 0;
  index_t zeros = 0;
  const auto& mask = c1[0].dropout_mask;
  for (index_t i = 0; i < mask.size(); ++i) {
    sum += mask.data()[i];
    if (mask.data()[i] == 0.0) ++zeros;
  }
  EXPECT_NEAR(sum / static_cast<double>(mask.size()), 1.0, 0.1);
  EXPECT_NEAR(static_cast<double>(zeros) / static_cast<double>(mask.size()), 0.4,
              0.1);
}

TEST(Dropout, GradientsMatchFiniteDifferencesWithFixedMask) {
  const index_t n = 12, k = 4;
  const auto g = testing::small_graph<double>(n, 50, 53);
  GnnConfig cfg;
  cfg.kind = ModelKind::kGAT;
  cfg.in_features = k;
  cfg.layer_widths = {k, k};
  cfg.hidden_activation = Activation::kTanh;
  cfg.seed = 8;
  GnnModel<double> model(cfg);
  auto x = testing::random_dense<double>(n, k, 55);
  std::vector<index_t> labels(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) labels[static_cast<std::size_t>(i)] = i % k;
  const double rate = 0.3;
  const std::uint64_t seed = 99;  // fixed mask -> deterministic loss

  const auto loss_fn = [&]() {
    std::vector<LayerCache<double>> caches;
    const auto h = model.forward(g.adj, x, caches, rate, seed);
    return static_cast<double>(softmax_cross_entropy<double>(h, labels).value);
  };
  std::vector<LayerCache<double>> caches;
  const auto h = model.forward(g.adj, x, caches, rate, seed);
  const auto loss = softmax_cross_entropy<double>(h, labels);
  const auto grads = model.backward(g.adj, g.adj.transposed(), caches, loss.grad);
  const auto res = gradcheck<double>(x.flat(), grads[0].d_h_in.flat(), loss_fn, 1e-6);
  EXPECT_LT(res.max_rel_error, 2e-4);
  auto& w = model.layer(0).weights();
  const auto res_w = gradcheck<double>(w.flat(), grads[0].d_w.flat(), loss_fn, 1e-6);
  EXPECT_LT(res_w.max_rel_error, 2e-4);
}

TEST(Dropout, TrainerWithDropoutStillLearns) {
  // Two-community SBM with weakly informative features — a graph-aligned
  // task GAT can learn despite the dropout noise.
  const auto sbm = graph::generate_sbm(
      {.n = 50, .communities = 2, .p_in = 0.3, .p_out = 0.03, .seed = 57});
  graph::BuildOptions opt;
  opt.add_self_loops = true;
  const auto g = graph::build_graph<double>(sbm.edges, opt);
  GnnConfig cfg;
  cfg.kind = ModelKind::kGAT;
  cfg.in_features = 4;
  cfg.layer_widths = {8, 2};
  cfg.hidden_activation = Activation::kTanh;
  GnnModel<double> model(cfg);
  DenseMatrix<double> x(50, 4);
  Rng rng(59);
  for (index_t i = 0; i < 50; ++i) {
    for (index_t f = 0; f < 4; ++f) {
      const double base =
          (sbm.labels[static_cast<std::size_t>(i)] == 0 ? 0.5 : -0.5);
      x(i, f) = base + rng.next_uniform(-1.0, 1.0);
    }
  }
  Trainer<double> trainer(model, std::make_unique<AdamOptimizer<double>>(0.02),
                          /*dropout_rate=*/0.2);
  const auto losses = trainer.train(g.adj, x, sbm.labels, 200);
  EXPECT_LT(losses.back(), 0.5 * losses.front());
  EXPECT_GT(accuracy<double>(model.infer(g.adj, x), sbm.labels), 0.9);
}

}  // namespace
}  // namespace agnn
