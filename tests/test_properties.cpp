// Property-based tests: mathematical invariants of the kernels and
// formulations, checked across randomized sweeps of shapes, densities, and
// seeds. Each property is a distinct algebraic fact the implementation must
// respect — collectively they pin the semantics far more tightly than
// example-based tests.
#include <gtest/gtest.h>

#include "comm/communicator.hpp"
#include "core/model.hpp"
#include "dist/dist_engine.hpp"
#include "graph/algorithms.hpp"
#include "graph/reorder.hpp"
#include "graph/graph.hpp"
#include "tensor/fused.hpp"
#include "tensor/spgemm.hpp"
#include "tensor/spmm.hpp"
#include "test_utils.hpp"

namespace agnn {
namespace {

using testing::random_dense;
using testing::random_sparse;

class SeedSweep : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep, ::testing::Range(1, 9));

// ---- linearity ----------------------------------------------------------------

TEST_P(SeedSweep, SpmmIsLinearInTheDenseOperand) {
  const int s = GetParam();
  const auto a = random_sparse<double>(24, 0.25, 1000 + s);
  const auto h1 = random_dense<double>(24, 6, 2000 + s);
  const auto h2 = random_dense<double>(24, 6, 3000 + s);
  const double alpha = 1.7, beta = -0.4;
  DenseMatrix<double> combo(24, 6);
  for (index_t i = 0; i < combo.size(); ++i) {
    combo.data()[i] = alpha * h1.data()[i] + beta * h2.data()[i];
  }
  auto lhs = spmm(a, combo);
  auto rhs = spmm(a, h1);
  scale_inplace(rhs, alpha);
  axpy(beta, spmm(a, h2), rhs);
  testing::expect_matrix_near(lhs, rhs, 1e-9, "spmm linearity");
}

TEST_P(SeedSweep, SddmmIsBilinear) {
  const int s = GetParam();
  const auto a = random_sparse<double>(16, 0.3, 1100 + s);
  const auto x = random_dense<double>(16, 5, 1200 + s);
  const auto y = random_dense<double>(16, 5, 1300 + s);
  // sddmm(A, 2x, 3y) == 6 * sddmm(A, x, y)
  auto x2 = x;
  scale_inplace(x2, 2.0);
  auto y3 = y;
  scale_inplace(y3, 3.0);
  const auto lhs = sddmm(a, x2, y3);
  const auto base = sddmm(a, x, y);
  for (index_t e = 0; e < lhs.nnz(); ++e) {
    EXPECT_NEAR(lhs.val_at(e), 6.0 * base.val_at(e), 1e-9);
  }
}

// ---- transposition identities -----------------------------------------------------

TEST_P(SeedSweep, SpgemmTransposeIdentity) {
  // (A B)^T == B^T A^T.
  const int s = GetParam();
  const auto a = random_sparse<double>(14, 0.3, 1400 + s);
  const auto b = random_sparse<double>(14, 0.3, 1500 + s);
  const auto lhs = spgemm(a, b).transposed().to_dense();
  const auto rhs = spgemm(b.transposed(), a.transposed()).to_dense();
  testing::expect_matrix_near(lhs, rhs, 1e-9, "(AB)^T = B^T A^T");
}

TEST_P(SeedSweep, SddmmTransposeIdentity) {
  // sddmm(A, X, Y)^T == sddmm(A^T, Y, X) — the identity the backward passes
  // exploit when sampling on the reversed graph.
  const int s = GetParam();
  const auto a = random_sparse<double>(18, 0.25, 1600 + s);
  const auto x = random_dense<double>(18, 4, 1700 + s);
  const auto y = random_dense<double>(18, 4, 1800 + s);
  const auto lhs = sddmm(a, x, y).transposed();
  const auto rhs = sddmm(a.transposed(), y, x);
  testing::expect_sparse_near(lhs, rhs, 1e-10, "sddmm transpose");
}

TEST_P(SeedSweep, AddTransposeIsSymmetric) {
  const auto x = random_sparse<double>(20, 0.2, 1900 + GetParam());
  const auto xp = add_transpose(x);
  const auto xpt = xp.transposed();
  testing::expect_sparse_near(xp, xpt, 1e-12, "X + X^T symmetry");
}

// ---- identity elements --------------------------------------------------------------

TEST_P(SeedSweep, SpmmWithIdentityMatrixIsIdentity) {
  const int s = GetParam();
  const index_t n = 15;
  CooMatrix<double> coo;
  coo.n_rows = coo.n_cols = n;
  for (index_t i = 0; i < n; ++i) coo.push_back(i, i, 1.0);
  const auto eye = CsrMatrix<double>::from_coo(coo);
  const auto h = random_dense<double>(n, 7, 2100 + s);
  testing::expect_matrix_near(spmm(eye, h), h, 0.0, "I H = H");
  // And identity is neutral for SpGEMM.
  const auto a = random_sparse<double>(n, 0.3, 2200 + s);
  testing::expect_matrix_near(spgemm(eye, a).to_dense(), a.to_dense(), 1e-12,
                              "I A = A");
}

// ---- tropical semiring shift property -------------------------------------------------

TEST_P(SeedSweep, MinPlusShiftsByConstant) {
  // min_j (0 + h_j + c) == (min_j h_j) + c: adding a constant to every
  // feature shifts the min-aggregation output by exactly that constant.
  const int s = GetParam();
  auto a = random_sparse<double>(12, 0.4, 2300 + s, /*binary=*/true);
  auto v = a.vals_mutable();
  for (auto& x : v) x = 0.0;
  const auto h = random_dense<double>(12, 3, 2400 + s);
  auto h_shift = h;
  for (index_t i = 0; i < h_shift.size(); ++i) h_shift.data()[i] += 2.5;
  const auto base = spmm_semiring<MinPlusSemiring<double>>(a, h);
  const auto shifted = spmm_semiring<MinPlusSemiring<double>>(a, h_shift);
  for (index_t i = 0; i < base.size(); ++i) {
    if (std::isinf(base.data()[i])) {
      EXPECT_TRUE(std::isinf(shifted.data()[i]));
    } else {
      EXPECT_NEAR(shifted.data()[i], base.data()[i] + 2.5, 1e-12);
    }
  }
}

// ---- attention-specific invariances --------------------------------------------------

TEST_P(SeedSweep, VaPsiIsQuadraticInFeatureScale) {
  const int s = GetParam();
  const auto g = testing::small_graph<double>(20, 80, 2500 + s);
  const auto h = random_dense<double>(20, 6, 2600 + s);
  auto h2 = h;
  scale_inplace(h2, 3.0);
  const auto base = psi_va(g.adj, h);
  const auto scaled = psi_va(g.adj, h2);
  for (index_t e = 0; e < base.nnz(); ++e) {
    EXPECT_NEAR(scaled.val_at(e), 9.0 * base.val_at(e), 1e-8);
  }
}

TEST_P(SeedSweep, AgnnPsiIsScaleInvariant) {
  // Cosine similarity ignores positive feature rescaling — per vertex.
  const int s = GetParam();
  const auto g = testing::small_graph<double>(20, 80, 2700 + s);
  const auto h = random_dense<double>(20, 6, 2800 + s);
  auto h2 = h;
  // Scale each ROW by a different positive factor.
  Rng rng(2900 + s);
  for (index_t i = 0; i < 20; ++i) {
    const double c = rng.next_uniform(0.5, 4.0);
    for (index_t j = 0; j < 6; ++j) h2(i, j) *= c;
  }
  testing::expect_sparse_near(psi_agnn(g.adj, h), psi_agnn(g.adj, h2), 1e-9,
                              "AGNN scale invariance");
}

TEST_P(SeedSweep, GatPsiInvariantUnderSourceShift) {
  // Shifting every s1 by a constant cancels in the per-row softmax
  // (with the linear slope = 1 so LeakyReLU commutes with the shift).
  const int s = GetParam();
  const auto g = testing::small_graph<double>(18, 70, 3000 + s);
  Rng rng(3100 + s);
  std::vector<double> s1(18), s2(18);
  for (auto& v : s1) v = rng.next_uniform(-1, 1);
  for (auto& v : s2) v = rng.next_uniform(-1, 1);
  auto s1_shift = s1;
  for (auto& v : s1_shift) v += 5.0;
  const auto base = psi_gat<double>(g.adj, s1, s2, 1.0);
  const auto shifted = psi_gat<double>(g.adj, s1_shift, s2, 1.0);
  testing::expect_sparse_near(base.psi, shifted.psi, 1e-9, "GAT shift");
}

// ---- normalization commutes with relabeling --------------------------------------------

TEST_P(SeedSweep, SymNormalizeCommutesWithPermutation) {
  const int s = GetParam();
  const auto g = testing::small_graph<double>(22, 90, 3200 + s);
  const auto perm = graph::random_permutation(22, 3300 + s);
  const auto lhs = graph::sym_normalize(graph::permute_graph(g.adj, perm));
  const auto rhs = graph::permute_graph(graph::sym_normalize(g.adj), perm);
  testing::expect_matrix_near(lhs.to_dense(), rhs.to_dense(), 1e-12,
                              "normalize/permute commute");
}

// ---- BFS level structure ---------------------------------------------------------------

TEST_P(SeedSweep, BfsLevelsDifferByAtMostOneAcrossEdges) {
  const int s = GetParam();
  const auto g = testing::small_graph<double>(40, 120, 3400 + s);
  const auto levels = graph::bfs_levels(g.adj, 0);
  for (index_t u = 0; u < 40; ++u) {
    if (levels[static_cast<std::size_t>(u)] < 0) continue;
    for (index_t e = g.adj.row_begin(u); e < g.adj.row_end(u); ++e) {
      const index_t v = g.adj.col_at(e);
      ASSERT_GE(levels[static_cast<std::size_t>(v)], 0)
          << "neighbor of a reached vertex must be reached";
      EXPECT_LE(std::abs(levels[static_cast<std::size_t>(u)] -
                         levels[static_cast<std::size_t>(v)]),
                1);
    }
  }
}

// ---- CSR block recomposition -------------------------------------------------------------

TEST_P(SeedSweep, BlocksRecomposeTheMatrix) {
  const int s = GetParam();
  const index_t n = 21;  // deliberately not divisible by the grid
  const auto a = random_sparse<double>(n, 0.3, 3500 + s);
  const auto full = a.to_dense();
  DenseMatrix<double> recomposed(n, n, 0.0);
  const int q = 4;
  for (int bi = 0; bi < q; ++bi) {
    for (int bj = 0; bj < q; ++bj) {
      const auto ri = dist::block_range(n, q, bi);
      const auto cj = dist::block_range(n, q, bj);
      const auto blk = a.block(ri.begin, ri.end, cj.begin, cj.end).to_dense();
      for (index_t i = 0; i < blk.rows(); ++i) {
        for (index_t j = 0; j < blk.cols(); ++j) {
          recomposed(ri.begin + i, cj.begin + j) += blk(i, j);
        }
      }
    }
  }
  testing::expect_matrix_near(recomposed, full, 0.0, "block recomposition");
}

// ---- communication-layer properties ----------------------------------------------------

TEST_P(SeedSweep, AllreduceIsLinear) {
  const int s = GetParam();
  const int p = 1 + (s % 4) * 2 + 1;  // odd rank counts 2..9
  std::vector<std::vector<double>> inputs(static_cast<std::size_t>(p));
  Rng rng(3600 + s);
  for (auto& in : inputs) {
    in.resize(12);
    for (auto& v : in) v = rng.next_uniform(-1, 1);
  }
  std::vector<double> expected(12, 0.0);
  for (const auto& in : inputs) {
    for (std::size_t i = 0; i < 12; ++i) expected[i] += in[i];
  }
  comm::SpmdRuntime::run(p, [&](comm::Communicator& c) {
    std::vector<double> buf = inputs[static_cast<std::size_t>(c.rank())];
    c.allreduce_sum(std::span<double>(buf));
    for (std::size_t i = 0; i < 12; ++i) {
      EXPECT_NEAR(buf[i], expected[i], 1e-12) << "rank " << c.rank();
    }
  });
}

TEST_P(SeedSweep, DistVolumeIndependentOfFeatureValues) {
  // Data movement of the global engine is a function of shapes only.
  const int s = GetParam();
  const auto g = testing::small_graph<double>(32, 160, 3700 + s);
  GnnConfig cfg;
  cfg.kind = ModelKind::kGAT;
  cfg.in_features = 4;
  cfg.layer_widths = {4};
  cfg.seed = 1;
  auto run_with = [&](std::uint64_t xseed) {
    const auto x = random_dense<double>(32, 4, xseed);
    const auto stats = comm::SpmdRuntime::run(4, [&](comm::Communicator& world) {
      GnnModel<double> model(cfg);
      dist::DistGnnEngine<double> engine(world, g.adj, model);
      comm::reset_all_stats(world);
      engine.forward(x, nullptr);
    });
    return comm::max_bytes_sent(stats);
  };
  EXPECT_EQ(run_with(3800 + s), run_with(4900 + s));
}

// ---- model-level: attention rows are convex weights ------------------------------------

TEST_P(SeedSweep, GatOutputIsInConvexHullOfProjectedNeighbors) {
  // Each GAT output row is a convex combination of the projected neighbor
  // features: componentwise it must lie within [min_j, max_j] over the
  // vertex's neighborhood.
  const int s = GetParam();
  const auto g = testing::small_graph<double>(16, 60, 4000 + s);
  GnnConfig cfg;
  cfg.kind = ModelKind::kGAT;
  cfg.in_features = 4;
  cfg.layer_widths = {4};
  cfg.output_activation = Activation::kIdentity;
  cfg.seed = static_cast<std::uint64_t>(s);
  GnnModel<double> model(cfg);
  const auto x = random_dense<double>(16, 4, 4100 + s);
  const auto hp = matmul(x, model.layer(0).weights());
  const auto z = model.infer(g.adj, x);
  for (index_t i = 0; i < 16; ++i) {
    if (g.adj.row_nnz(i) == 0) continue;
    for (index_t f = 0; f < 4; ++f) {
      double lo = std::numeric_limits<double>::infinity(), hi = -lo;
      for (index_t e = g.adj.row_begin(i); e < g.adj.row_end(i); ++e) {
        lo = std::min(lo, hp(g.adj.col_at(e), f));
        hi = std::max(hi, hp(g.adj.col_at(e), f));
      }
      EXPECT_GE(z(i, f), lo - 1e-9);
      EXPECT_LE(z(i, f), hi + 1e-9);
    }
  }
}

// ---- graph build idempotence -------------------------------------------------------------

TEST_P(SeedSweep, BuildPipelineIsIdempotent) {
  const int s = GetParam();
  const auto el = graph::generate_erdos_renyi_m(30, 120, 4200 + s);
  const auto g1 = graph::build_graph<double>(el);
  // Re-feed the built graph's edges through the pipeline: nothing changes.
  graph::EdgeList el2;
  el2.n = 30;
  const auto coo = g1.adj.to_coo();
  el2.src = coo.rows;
  el2.dst = coo.cols;
  const auto g2 = graph::build_graph<double>(el2);
  EXPECT_TRUE(g1.adj.same_pattern(g2.adj));
}

}  // namespace
}  // namespace agnn
