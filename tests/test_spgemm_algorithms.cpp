// Tests for SpGEMM (plain and masked) and the linear-algebraic graph
// algorithms, each against an independent combinatorial oracle.
#include <gtest/gtest.h>

#include <queue>
#include <set>

#include "graph/algorithms.hpp"
#include "graph/graph.hpp"
#include "tensor/reference_impls.hpp"
#include "tensor/spgemm.hpp"
#include "test_utils.hpp"

namespace agnn {
namespace {

class SpgemmSweep : public ::testing::TestWithParam<std::tuple<int, double, int>> {};

TEST_P(SpgemmSweep, MatchesDenseProduct) {
  const auto [n, density, seed] = GetParam();
  const auto a = testing::random_sparse<double>(n, density, seed);
  const auto b = testing::random_sparse<double>(n, density, seed + 1);
  const auto c = spgemm(a, b);
  const auto ref = reference::matmul_naive(a.to_dense(), b.to_dense());
  const auto cd = c.to_dense();
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) {
      EXPECT_NEAR(cd(i, j), ref(i, j), 1e-9) << i << "," << j;
    }
  }
  // CSR invariant: sorted columns within each row.
  for (index_t i = 0; i < c.rows(); ++i) {
    for (index_t e = c.row_begin(i) + 1; e < c.row_end(i); ++e) {
      EXPECT_LT(c.col_at(e - 1), c.col_at(e));
    }
  }
}

TEST_P(SpgemmSweep, MaskedMatchesMaskedDenseProduct) {
  const auto [n, density, seed] = GetParam();
  const auto a = testing::random_sparse<double>(n, density, seed + 2);
  const auto b = testing::random_sparse<double>(n, density, seed + 3);
  const auto mask = testing::random_sparse<double>(n, density, seed + 4);
  const auto c = spgemm_masked(a, b, mask);
  const auto ref = reference::matmul_naive(a.to_dense(), b.to_dense());
  ASSERT_TRUE(c.same_pattern(mask));
  for (index_t i = 0; i < n; ++i) {
    for (index_t e = mask.row_begin(i); e < mask.row_end(i); ++e) {
      EXPECT_NEAR(c.val_at(e), mask.val_at(e) * ref(i, mask.col_at(e)), 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Cases, SpgemmSweep,
                         ::testing::Values(std::tuple{8, 0.5, 1},
                                           std::tuple{20, 0.2, 2},
                                           std::tuple{50, 0.1, 3},
                                           std::tuple{64, 0.05, 4},
                                           std::tuple{1, 1.0, 5}));

TEST(Spgemm, EmptyOperands) {
  CooMatrix<double> coo;
  coo.n_rows = coo.n_cols = 5;
  const auto empty = CsrMatrix<double>::from_coo(coo);
  const auto c = spgemm(empty, empty);
  EXPECT_EQ(c.nnz(), 0);
}

TEST(Spgemm, DimensionMismatchThrows) {
  const auto a = testing::random_sparse<double>(4, 0.5, 7);
  CooMatrix<double> coo;
  coo.n_rows = 3;
  coo.n_cols = 3;
  const auto b = CsrMatrix<double>::from_coo(coo);
  EXPECT_THROW(spgemm(a, b), std::logic_error);
}

// ---- BFS ----------------------------------------------------------------------

std::vector<index_t> bfs_oracle(const CsrMatrix<double>& adj, index_t source) {
  std::vector<index_t> level(static_cast<std::size_t>(adj.rows()), -1);
  std::queue<index_t> q;
  level[static_cast<std::size_t>(source)] = 0;
  q.push(source);
  while (!q.empty()) {
    const index_t u = q.front();
    q.pop();
    for (index_t e = adj.row_begin(u); e < adj.row_end(u); ++e) {
      const index_t v = adj.col_at(e);
      if (level[static_cast<std::size_t>(v)] < 0) {
        level[static_cast<std::size_t>(v)] = level[static_cast<std::size_t>(u)] + 1;
        q.push(v);
      }
    }
  }
  return level;
}

class BfsSweep : public ::testing::TestWithParam<int> {};

TEST_P(BfsSweep, MatchesQueueOracle) {
  const auto g = testing::small_graph<double>(80, 200, GetParam());
  for (const index_t source : {index_t(0), index_t(13), index_t(79)}) {
    EXPECT_EQ(graph::bfs_levels(g.adj, source), bfs_oracle(g.adj, source))
        << "source " << source;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BfsSweep, ::testing::Values(1, 2, 3, 4));

TEST(Bfs, DisconnectedVerticesStayUnreached) {
  graph::BuildOptions opt;
  opt.symmetrize = true;
  opt.fix_isolated = false;
  graph::EdgeList el;
  el.n = 5;
  el.push_back(0, 1);
  el.push_back(3, 4);
  const auto g = graph::build_graph<double>(el, opt);
  const auto levels = graph::bfs_levels(g.adj, 0);
  EXPECT_EQ(levels[0], 0);
  EXPECT_EQ(levels[1], 1);
  EXPECT_EQ(levels[2], -1);
  EXPECT_EQ(levels[3], -1);
  EXPECT_EQ(levels[4], -1);
}

// ---- triangles -------------------------------------------------------------------

std::uint64_t triangles_oracle(const CsrMatrix<double>& adj) {
  std::uint64_t count = 0;
  for (index_t i = 0; i < adj.rows(); ++i) {
    for (index_t e = adj.row_begin(i); e < adj.row_end(i); ++e) {
      const index_t j = adj.col_at(e);
      if (j <= i) continue;
      for (index_t f = adj.row_begin(j); f < adj.row_end(j); ++f) {
        const index_t k = adj.col_at(f);
        if (k <= j) continue;
        // Is (i, k) an edge?
        for (index_t h = adj.row_begin(i); h < adj.row_end(i); ++h) {
          if (adj.col_at(h) == k) {
            ++count;
            break;
          }
        }
      }
    }
  }
  return count;
}

TEST(Triangles, KnownSmallGraphs) {
  // A triangle plus a pendant edge: exactly one triangle.
  graph::EdgeList el;
  el.n = 4;
  el.push_back(0, 1);
  el.push_back(1, 2);
  el.push_back(2, 0);
  el.push_back(2, 3);
  const auto g = graph::build_graph<double>(el);
  EXPECT_EQ(graph::count_triangles(g.adj), 1u);
  // K4 has 4 triangles.
  graph::EdgeList k4;
  k4.n = 4;
  for (index_t i = 0; i < 4; ++i) {
    for (index_t j = i + 1; j < 4; ++j) k4.push_back(i, j);
  }
  const auto gk4 = graph::build_graph<double>(k4);
  EXPECT_EQ(graph::count_triangles(gk4.adj), 4u);
}

class TriangleSweep : public ::testing::TestWithParam<int> {};

TEST_P(TriangleSweep, MatchesEnumerationOracle) {
  const auto g = testing::small_graph<double>(60, 300, 100 + GetParam(),
                                              /*self_loops=*/false);
  EXPECT_EQ(graph::count_triangles(g.adj), triangles_oracle(g.adj));
}

INSTANTIATE_TEST_SUITE_P(Seeds, TriangleSweep, ::testing::Values(1, 2, 3));

// ---- connected components -----------------------------------------------------------

TEST(Components, LabelsMatchBfsReachability) {
  graph::BuildOptions opt;
  opt.fix_isolated = false;
  graph::EdgeList el;
  el.n = 9;
  // Components: {0,1,2}, {3,4}, {5}, {6,7,8}.
  el.push_back(0, 1);
  el.push_back(1, 2);
  el.push_back(3, 4);
  el.push_back(6, 7);
  el.push_back(7, 8);
  const auto g = graph::build_graph<double>(el, opt);
  const auto labels = graph::connected_components(g.adj);
  EXPECT_EQ(labels[0], 0);
  EXPECT_EQ(labels[1], 0);
  EXPECT_EQ(labels[2], 0);
  EXPECT_EQ(labels[3], 3);
  EXPECT_EQ(labels[4], 3);
  EXPECT_EQ(labels[5], 5);
  EXPECT_EQ(labels[6], 6);
  EXPECT_EQ(labels[7], 6);
  EXPECT_EQ(labels[8], 6);
}

TEST(Components, RandomGraphComponentsAreConsistent) {
  const auto g = testing::small_graph<double>(100, 90, 47, /*self_loops=*/false);
  const auto labels = graph::connected_components(g.adj);
  // Same label <=> mutually reachable (checked via BFS from each label rep).
  std::set<index_t> reps(labels.begin(), labels.end());
  for (const index_t rep : reps) {
    const auto levels = graph::bfs_levels(g.adj, rep);
    for (index_t v = 0; v < 100; ++v) {
      const bool same = labels[static_cast<std::size_t>(v)] == rep;
      const bool reachable = levels[static_cast<std::size_t>(v)] >= 0;
      EXPECT_EQ(same, reachable) << "vertex " << v << " rep " << rep;
    }
  }
}

TEST(CommonNeighbors, CountsSharedNeighborsOnEdges) {
  const auto g = testing::small_graph<double>(30, 150, 53, /*self_loops=*/false);
  const auto cn = graph::common_neighbors(g.adj);
  const auto d = g.adj.to_dense();
  for (index_t i = 0; i < 30; ++i) {
    for (index_t e = cn.row_begin(i); e < cn.row_end(i); ++e) {
      const index_t j = cn.col_at(e);
      double expected = 0;
      for (index_t k = 0; k < 30; ++k) {
        if (d(i, k) != 0 && d(k, j) != 0) expected += 1;
      }
      EXPECT_NEAR(cn.val_at(e), expected, 1e-9);
    }
  }
}

}  // namespace
}  // namespace agnn
