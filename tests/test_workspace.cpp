// Workspace pool semantics plus the two acceptance properties of the
// workspace-backed kernel API: (a) the out-parameter overloads are bitwise
// identical to their by-value wrappers for every model kind, and (b) after a
// warm-up epoch, full-batch training is served entirely from the pool — no
// new heap blocks, 100% hit rate.
#include <gtest/gtest.h>

#include "baseline/local_engine.hpp"
#include "core/model.hpp"
#include "core/workspace.hpp"
#include "graph/graph.hpp"
#include "graph/kronecker.hpp"
#include "tensor/fused.hpp"
#include "tensor/sparse_ops.hpp"
#include "tensor/spmm.hpp"
#include "test_utils.hpp"

namespace agnn {
namespace {

using ::agnn::testing::random_dense;
using ::agnn::testing::random_sparse;

TEST(Workspace, ReleasedBufferIsReacquired) {
  Workspace<double> ws;
  double* p = nullptr;
  {
    auto h = ws.acquire_dense(32, 8);
    p = h->data();
  }
  EXPECT_EQ(ws.stats().pool_misses, 1u);
  auto h2 = ws.acquire_dense(32, 8);
  EXPECT_EQ(h2->data(), p);  // same backing storage, recycled
  EXPECT_EQ(ws.stats().pool_hits, 1u);
  EXPECT_EQ(ws.stats().pool_misses, 1u);
}

TEST(Workspace, BestFitPicksSmallestQualifyingBuffer) {
  Workspace<double> ws;
  {
    auto big = ws.acquire_dense(100, 10);    // 1000 elems
    auto small = ws.acquire_dense(65, 10);   // 650 elems, same 2^9 bucket
  }
  auto h = ws.acquire_dense(60, 10);  // 600 elems: must get the 650-cap buffer
  EXPECT_EQ(h->capacity(), 650);
  EXPECT_EQ(ws.stats().pool_hits, 1u);
}

TEST(Workspace, ResidentBytesOnlyGrowOnMiss) {
  Workspace<double> ws;
  { auto h = ws.acquire_vec(1000); }
  const auto resident = ws.stats().resident_bytes;
  EXPECT_EQ(resident, 1000 * sizeof(double));
  { auto h = ws.acquire_vec(900); }  // served from pool
  EXPECT_EQ(ws.stats().resident_bytes, resident);
  EXPECT_EQ(ws.stats().peak_resident_bytes, resident);
}

TEST(Workspace, ResetStatsKeepsResidencyGauges) {
  Workspace<double> ws;
  { auto h = ws.acquire_dense(16, 16); }
  const auto resident = ws.stats().resident_bytes;
  ws.reset_stats();
  EXPECT_EQ(ws.stats().acquires, 0u);
  EXPECT_EQ(ws.stats().pool_misses, 0u);
  EXPECT_EQ(ws.stats().resident_bytes, resident);
}

// --- out-param overloads must be bitwise identical to the by-value forms ---

template <typename T>
void expect_bitwise_equal(const DenseMatrix<T>& a, const DenseMatrix<T>& b,
                          const char* what) {
  ASSERT_EQ(a.rows(), b.rows()) << what;
  ASSERT_EQ(a.cols(), b.cols()) << what;
  for (index_t i = 0; i < a.rows(); ++i) {
    for (index_t j = 0; j < a.cols(); ++j) {
      EXPECT_EQ(a(i, j), b(i, j)) << what << " at (" << i << "," << j << ")";
    }
  }
}

template <typename T>
void expect_bitwise_equal(const CsrMatrix<T>& a, const CsrMatrix<T>& b,
                          const char* what) {
  ASSERT_TRUE(a.same_pattern(b)) << what << ": patterns differ";
  for (index_t e = 0; e < a.nnz(); ++e) {
    EXPECT_EQ(a.val_at(e), b.val_at(e)) << what << " at nnz " << e;
  }
}

TEST(WorkspaceBitwise, TensorKernels) {
  const auto adj = random_sparse<double>(40, 0.15, 3, /*binary=*/true);
  const auto h = random_dense<double>(40, 8, 4);
  const auto g = random_dense<double>(40, 8, 5);
  Workspace<double> ws;

  {
    auto out = ws.acquire_dense(40, 8);
    spmm(adj, h, *out);
    expect_bitwise_equal(*out, spmm(adj, h), "spmm");
  }
  {
    auto out = ws.acquire_csr_like(adj);
    sddmm(adj, h, g, *out);
    expect_bitwise_equal(*out, sddmm(adj, h, g), "sddmm");
  }
  {
    auto out = ws.acquire_csr_like(adj);
    sddmm_unweighted(adj, h, g, *out);
    expect_bitwise_equal(*out, sddmm(adj.with_values(1.0), h, g),
                         "sddmm_unweighted");
  }
  {
    auto out = ws.acquire_csr_like(adj);
    psi_va(adj, h, *out);
    expect_bitwise_equal(*out, psi_va(adj, h), "psi_va");
  }
  {
    auto out = ws.acquire_csr_like(adj);
    psi_agnn(adj, h, *out);
    expect_bitwise_equal(*out, psi_agnn(adj, h), "psi_agnn");
  }
  {
    Rng rng(6);
    std::vector<double> a1(8), a2(8);
    for (auto& v : a1) v = rng.next_uniform(-1.0, 1.0);
    for (auto& v : a2) v = rng.next_uniform(-1.0, 1.0);
    const std::vector<double> s1 = matvec(h, std::span<const double>(a1));
    const std::vector<double> s2 = matvec(h, std::span<const double>(a2));
    GatPsi<double> out;
    psi_gat<double>(adj, s1, s2, 0.2, out);
    const GatPsi<double> ref = psi_gat<double>(adj, s1, s2, 0.2);
    expect_bitwise_equal(out.psi, ref.psi, "psi_gat.psi");
    expect_bitwise_equal(out.scores_pre, ref.scores_pre, "psi_gat.scores_pre");
  }
  {
    auto t = ws.acquire_csr(adj.cols(), adj.rows(), adj.nnz());
    adj.transposed_into(*t);
    expect_bitwise_equal(*t, adj.transposed(), "transposed");
  }
}

class WorkspaceLayerSweep : public ::testing::TestWithParam<ModelKind> {};

// The full layer forward (all five formulations) must produce bit-identical
// output whether the caller uses the by-value wrapper or threads a workspace.
TEST_P(WorkspaceLayerSweep, LayerForwardMatchesByValue) {
  const auto g = testing::small_graph<double>(50, 200, 11);
  const CsrMatrix<double> adj = GetParam() == ModelKind::kGCN
                                    ? graph::sym_normalize(g.adj)
                                    : g.adj;
  const auto x = random_dense<double>(50, 6, 12);

  GnnConfig cfg;
  cfg.kind = GetParam();
  cfg.in_features = 6;
  cfg.layer_widths = {10, 3};
  cfg.seed = 21;
  GnnModel<double> model(cfg);

  Workspace<double> ws;
  DenseMatrix<double> in = x;
  for (std::size_t l = 0; l < model.num_layers(); ++l) {
    const DenseMatrix<double> ref =
        baseline::local_layer_forward(model.layer(l), adj, in);
    auto out = ws.acquire_dense(in.rows(), model.layer(l).out_features());
    baseline::local_layer_forward(model.layer(l), adj, in, ws, *out);
    expect_bitwise_equal(*out, ref, "layer");
    in = ref;
  }

  // Whole-model inference: pooled vs by-value, for both the global-kernel
  // model path and the per-edge baseline path.
  DenseMatrix<double> h_ws;
  model.infer(adj, x, ws, h_ws);
  expect_bitwise_equal(h_ws, model.infer(adj, x), "model-infer");
  baseline::local_infer(model, adj, x, ws, h_ws);
  expect_bitwise_equal(h_ws, baseline::local_infer(model, adj, x),
                       "local-infer");
}

INSTANTIATE_TEST_SUITE_P(Models, WorkspaceLayerSweep,
                         ::testing::Values(ModelKind::kVA, ModelKind::kAGNN,
                                           ModelKind::kGAT, ModelKind::kGCN,
                                           ModelKind::kGIN),
                         [](const auto& param_info) {
                           return to_string(param_info.param);
                         });

// --- steady-state training must be allocation-free after warm-up ---

TEST(WorkspaceSteadyState, GatTrainingPoolHitsAreTotalAfterEpochOne) {
  // Small Kronecker graph through the standard pipeline, as in the paper's
  // B0 dataset family.
  const auto el = graph::generate_kronecker({.scale = 6, .edges = 600, .seed = 9});
  graph::BuildOptions opt;
  opt.add_self_loops = true;
  const auto g = graph::build_graph<double>(el, opt);
  const index_t n = g.num_vertices();

  const auto x = random_dense<double>(n, 8, 13);
  std::vector<index_t> labels(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) labels[static_cast<std::size_t>(i)] = i % 2;

  GnnConfig cfg;
  cfg.kind = ModelKind::kGAT;
  cfg.in_features = 8;
  cfg.layer_widths = {12, 2};
  cfg.seed = 5;
  GnnModel<double> model(cfg);
  Trainer<double> trainer(model, std::make_unique<AdamOptimizer<double>>(0.01));

  const CsrMatrix<double> adj_t = g.adj.transposed();

  // Epoch 1: warm-up. The pool may (and must) allocate here.
  trainer.step(g.adj, adj_t, x, labels);
  EXPECT_GT(trainer.workspace_stats().pool_misses, 0u);
  const auto resident_after_warmup = trainer.workspace_stats().resident_bytes;

  // Epochs 2-3: every acquire must be a pool hit; no new heap blocks.
  trainer.workspace().reset_stats();
  trainer.step(g.adj, adj_t, x, labels);
  trainer.step(g.adj, adj_t, x, labels);
  const auto& st = trainer.workspace_stats();
  EXPECT_GT(st.acquires, 0u);
  EXPECT_EQ(st.pool_misses, 0u) << "steady-state training allocated";
  EXPECT_DOUBLE_EQ(st.hit_rate(), 1.0);
  EXPECT_EQ(st.resident_bytes, resident_after_warmup)
      << "pool grew after warm-up";
}

}  // namespace
}  // namespace agnn
