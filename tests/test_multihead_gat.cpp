// Tests for multi-head GAT: equivalence with the single-head layer,
// head-combination semantics, finite-difference gradient checks for every
// head's parameters, and end-to-end training.
#include <gtest/gtest.h>

#include "core/gradcheck.hpp"
#include "core/layer.hpp"
#include "core/loss.hpp"
#include "core/model.hpp"
#include "core/multihead_gat.hpp"
#include "graph/graph.hpp"
#include "test_utils.hpp"

namespace agnn {
namespace {

TEST(MultiHeadGat, SingleHeadMatchesLayerGat) {
  const index_t n = 24, k = 5;
  const auto g = testing::small_graph<double>(n, 100, 3);
  const auto x = testing::random_dense<double>(n, k, 5);

  Rng rng(77);
  MultiHeadGatLayer<double> mh(k, k, 1, HeadCombine::kConcat, Activation::kTanh,
                               rng, 0.2);
  Rng rng2(78);
  Layer<double> single(ModelKind::kGAT, k, k, Activation::kTanh, rng2, 0.2);
  // Copy parameters so the two layers are identical.
  single.weights() = mh.head(0).w;
  single.attention_params() = mh.head(0).a;

  const auto out_mh = mh.forward(g.adj, x, nullptr);
  const auto out_single = single.forward(g.adj, x, nullptr);
  testing::expect_matrix_near(out_mh, out_single, 1e-10, "1-head == single GAT");
}

TEST(MultiHeadGat, ConcatOutputWidthAndLayout) {
  const index_t n = 16, k = 4;
  const auto g = testing::small_graph<double>(n, 70, 7);
  const auto x = testing::random_dense<double>(n, k, 9);
  Rng rng(11);
  MultiHeadGatLayer<double> mh(k, 3, 4, HeadCombine::kConcat,
                               Activation::kIdentity, rng);
  EXPECT_EQ(mh.out_features(), 12);
  const auto out = mh.forward(g.adj, x, nullptr);
  EXPECT_EQ(out.cols(), 12);
  // Each head's slice must equal that head run alone.
  for (int h = 0; h < 4; ++h) {
    Rng rng_h(20 + h);
    MultiHeadGatLayer<double> solo(k, 3, 1, HeadCombine::kConcat,
                                   Activation::kIdentity, rng_h);
    solo.head(0) = mh.head(h);
    const auto out_solo = solo.forward(g.adj, x, nullptr);
    for (index_t i = 0; i < n; ++i) {
      for (index_t j = 0; j < 3; ++j) {
        EXPECT_NEAR(out(i, h * 3 + j), out_solo(i, j), 1e-12);
      }
    }
  }
}

TEST(MultiHeadGat, AverageIsMeanOfHeads) {
  const index_t n = 14, k = 4;
  const auto g = testing::small_graph<double>(n, 60, 13);
  const auto x = testing::random_dense<double>(n, k, 15);
  Rng rng(17);
  MultiHeadGatLayer<double> mh(k, 5, 3, HeadCombine::kAverage,
                               Activation::kIdentity, rng);
  EXPECT_EQ(mh.out_features(), 5);
  const auto out = mh.forward(g.adj, x, nullptr);
  DenseMatrix<double> manual(n, 5, 0.0);
  for (int h = 0; h < 3; ++h) {
    Rng rng_h(30 + h);
    MultiHeadGatLayer<double> solo(k, 5, 1, HeadCombine::kConcat,
                                   Activation::kIdentity, rng_h);
    solo.head(0) = mh.head(h);
    axpy(1.0 / 3.0, solo.forward(g.adj, x, nullptr), manual);
  }
  testing::expect_matrix_near(out, manual, 1e-12, "average combine");
}

class MultiHeadGradSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(MultiHeadGradSweep, GradientsMatchFiniteDifferences) {
  const auto [heads, hidden_layers] = GetParam();
  const index_t n = 12, k = 4;
  const auto g = testing::small_graph<double>(n, 50, 19);
  auto x = testing::random_dense<double>(n, k, 21);
  std::vector<index_t> labels(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) labels[static_cast<std::size_t>(i)] = i % 3;

  typename MultiHeadGat<double>::Config cfg;
  cfg.in_features = k;
  cfg.head_features = 3;
  cfg.heads = heads;
  cfg.out_features = 3;
  cfg.out_heads = 2;
  cfg.hidden_layers = hidden_layers;
  cfg.hidden_activation = Activation::kTanh;
  cfg.seed = 23;
  MultiHeadGat<double> model(cfg);

  const auto loss_fn = [&]() {
    return static_cast<double>(
        softmax_cross_entropy<double>(model.infer(g.adj, x), labels).value);
  };
  std::vector<MultiHeadCache<double>> caches;
  const auto h = model.forward(g.adj, x, caches);
  const auto loss = softmax_cross_entropy<double>(h, labels);
  const auto grads = model.backward(g.adj, caches, loss.grad);

  for (std::size_t l = 0; l < model.num_layers(); ++l) {
    for (int hd = 0; hd < model.layer(l).num_heads(); ++hd) {
      auto& p = model.layer(l).head(hd);
      const auto& hg = grads[l].heads[static_cast<std::size_t>(hd)];
      const auto res_w = gradcheck<double>(p.w.flat(), hg.d_w.flat(), loss_fn, 1e-6);
      EXPECT_LT(res_w.max_rel_error, 2e-4)
          << "layer " << l << " head " << hd << " dW";
      const auto res_a = gradcheck<double>(std::span<double>(p.a),
                                           std::span<const double>(hg.d_a),
                                           loss_fn, 1e-6);
      EXPECT_LT(res_a.max_rel_error, 2e-4)
          << "layer " << l << " head " << hd << " da";
    }
  }
  const auto res_x = gradcheck<double>(x.flat(), grads[0].d_h_in.flat(), loss_fn, 1e-6);
  EXPECT_LT(res_x.max_rel_error, 2e-4) << "dX";
}

INSTANTIATE_TEST_SUITE_P(Shapes, MultiHeadGradSweep,
                         ::testing::Values(std::tuple{1, 1}, std::tuple{2, 1},
                                           std::tuple{4, 1}, std::tuple{2, 2}),
                         [](const auto& info) {
                           return "h" + std::to_string(std::get<0>(info.param)) +
                                  "_L" + std::to_string(std::get<1>(info.param));
                         });

TEST(MultiHeadGat, TrainsOnPlantedTask) {
  // Two-community graph; multi-head GAT must learn the split.
  const index_t n = 60;
  Rng rng(25);
  CooMatrix<double> coo;
  coo.n_rows = coo.n_cols = n;
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const bool same = (i < n / 2) == (j < n / 2);
      if (rng.next_double() < (same ? 0.3 : 0.03)) coo.push_back(i, j, 1.0);
    }
  }
  for (index_t i = 0; i < n; ++i) coo.push_back(i, i, 1.0);
  coo.dedup_binary();
  const auto adj = CsrMatrix<double>::from_coo(coo);
  DenseMatrix<double> x(n, 4);
  std::vector<index_t> labels(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    labels[static_cast<std::size_t>(i)] = i < n / 2 ? 0 : 1;
    for (index_t f = 0; f < 4; ++f) {
      x(i, f) = (i < n / 2 ? 0.4 : -0.4) + rng.next_uniform(-1.0, 1.0);
    }
  }

  typename MultiHeadGat<double>::Config cfg;
  cfg.in_features = 4;
  cfg.head_features = 4;
  cfg.heads = 3;
  cfg.out_features = 2;
  cfg.out_heads = 2;
  cfg.hidden_layers = 1;
  cfg.hidden_activation = Activation::kTanh;
  cfg.seed = 5;
  MultiHeadGat<double> model(cfg);
  AdamOptimizer<double> opt(0.01);
  double first = 0, last = 0;
  for (int e = 0; e < 120; ++e) {
    std::vector<MultiHeadCache<double>> caches;
    const auto h = model.forward(adj, x, caches);
    const auto loss = softmax_cross_entropy<double>(h, labels);
    if (e == 0) first = loss.value;
    last = loss.value;
    model.apply_gradients(model.backward(adj, caches, loss.grad), opt);
  }
  EXPECT_LT(last, 0.3 * first);
  EXPECT_GT(accuracy<double>(model.infer(adj, x), labels), 0.9);
}

TEST(MultiHeadGat, RejectsZeroHeads) {
  Rng rng(1);
  EXPECT_THROW(MultiHeadGatLayer<double>(4, 4, 0, HeadCombine::kConcat,
                                         Activation::kRelu, rng),
               std::logic_error);
}

}  // namespace
}  // namespace agnn
