// Verification of the Section 7 communication bounds on the simulated
// cluster: per-layer volume of the global formulation must scale as
// O(n k / sqrt(p) + k^2) per rank, and be independent of the edge density —
// while the local formulation's volume grows with the degree.
#include <gtest/gtest.h>

#include "baseline/dist_local_engine.hpp"
#include "comm/communicator.hpp"
#include "comm/cost_model.hpp"
#include "core/model.hpp"
#include "dist/dist_engine.hpp"
#include "graph/graph.hpp"
#include "test_utils.hpp"

namespace agnn {
namespace {

GnnConfig config_for(ModelKind kind, index_t k, int layers) {
  GnnConfig cfg;
  cfg.kind = kind;
  cfg.in_features = k;
  cfg.layer_widths.assign(static_cast<std::size_t>(layers), k);
  cfg.seed = 1;
  return cfg;
}

// Max per-rank bytes for one global-formulation forward pass.
std::uint64_t global_forward_volume(const CsrMatrix<double>& adj, ModelKind kind,
                                    index_t k, int layers, int ranks) {
  const auto x = testing::random_dense<double>(adj.rows(), k, 5);
  const auto stats = comm::SpmdRuntime::run(ranks, [&](comm::Communicator& world) {
    GnnModel<double> model(config_for(kind, k, layers));
    dist::DistGnnEngine<double> engine(world, adj, model);
    comm::reset_all_stats(world);
    engine.forward(x, nullptr);
  });
  return comm::max_bytes_sent(stats);
}

std::uint64_t local_forward_volume(const CsrMatrix<double>& adj, ModelKind kind,
                                   index_t k, int layers, int ranks) {
  const auto x = testing::random_dense<double>(adj.rows(), k, 5);
  const auto stats = comm::SpmdRuntime::run(ranks, [&](comm::Communicator& world) {
    GnnModel<double> model(config_for(kind, k, layers));
    baseline::DistLocalEngine<double> engine(world, adj, model);
    comm::reset_all_stats(world);
    engine.forward(x, nullptr);
  });
  return comm::max_bytes_sent(stats);
}

class VolumeModelSweep : public ::testing::TestWithParam<ModelKind> {};

TEST_P(VolumeModelSweep, GlobalVolumeWithinConstantOfBound) {
  // Bound: c * (n k / sqrt(p) + k^2) words per rank per layer.
  const index_t n = 64, k = 8;
  const int layers = 2, ranks = 16;
  const auto g = testing::small_graph<double>(n, 800, 7);
  const auto vol = global_forward_volume(g.adj, GetParam(), k, layers, ranks);
  const double q = 4.0;  // sqrt(p)
  const double bound_words =
      static_cast<double>(layers) *
      (static_cast<double>(n * k) / q + static_cast<double>(k * k));
  const double vol_words = static_cast<double>(vol) / sizeof(double);
  // The scheme uses a small constant number of block moves per layer
  // (partner exchange, row/col allreduce, redistribution): allow c <= 10.
  EXPECT_LT(vol_words, 10.0 * bound_words) << to_string(GetParam());
  EXPECT_GT(vol_words, 0.0);
}

TEST_P(VolumeModelSweep, GlobalVolumeIndependentOfDensity) {
  // Section 7.1: the sparse blocks never move, so the volume must not grow
  // with the number of edges.
  const index_t n = 64, k = 8;
  const auto sparse_g = testing::small_graph<double>(n, 200, 11);
  const auto dense_g = testing::small_graph<double>(n, 2000, 13);
  const auto v_sparse = global_forward_volume(sparse_g.adj, GetParam(), k, 2, 16);
  const auto v_dense = global_forward_volume(dense_g.adj, GetParam(), k, 2, 16);
  EXPECT_EQ(v_sparse, v_dense) << to_string(GetParam());
}

INSTANTIATE_TEST_SUITE_P(Models, VolumeModelSweep,
                         ::testing::Values(ModelKind::kVA, ModelKind::kAGNN,
                                           ModelKind::kGAT),
                         [](const auto& info) { return to_string(info.param); });

TEST(CommVolume, LocalVolumeGrowsWithDensityGlobalDoesNot) {
  // The crossover driver of Section 7: local-formulation volume ~ d*n*k/p
  // grows with degree d, global ~ n*k/sqrt(p) does not. The sparse graph
  // must stay below ghost saturation (d*n/p << n) for the growth to show.
  const index_t n = 256, k = 8;
  const auto sparse_g = testing::small_graph<double>(n, 128, 17);   // d ~ 1-2
  const auto dense_g = testing::small_graph<double>(n, 4000, 19);   // d ~ 30
  const auto lg_sparse = local_forward_volume(sparse_g.adj, ModelKind::kVA, k, 2, 4);
  const auto lg_dense = local_forward_volume(dense_g.adj, ModelKind::kVA, k, 2, 4);
  EXPECT_GT(lg_dense, lg_sparse * 2) << "local volume must grow with density";

  const auto gg_sparse = global_forward_volume(sparse_g.adj, ModelKind::kVA, k, 2, 4);
  const auto gg_dense = global_forward_volume(dense_g.adj, ModelKind::kVA, k, 2, 4);
  EXPECT_EQ(gg_sparse, gg_dense);
}

TEST(CommVolume, GlobalBeatsLocalOnDenseGraphs) {
  // For d in omega(sqrt(p)) the global formulation must move fewer bytes.
  // With the scheme's ~4 block moves per layer the constants demand a
  // reasonably large p: at p = 100 (q = 10) and a near-complete graph the
  // global volume n*k/sqrt(p) clearly undercuts the local ~n*k.
  const index_t n = 200, k = 8;
  const auto g = testing::small_graph<double>(n, 30000, 23);  // d ~ n
  const auto v_global = global_forward_volume(g.adj, ModelKind::kVA, k, 2, 100);
  const auto v_local = local_forward_volume(g.adj, ModelKind::kVA, k, 2, 100);
  EXPECT_LT(v_global, v_local);
}

TEST(CommVolume, TrainingVolumeSameOrderAsInference) {
  // Section 7.2: training costs asymptotically the same communication as
  // inference — check the ratio is a small constant.
  const index_t n = 64, k = 8;
  const auto g = testing::small_graph<double>(n, 800, 29);
  const auto x = testing::random_dense<double>(n, k, 31);
  std::vector<index_t> labels(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) labels[static_cast<std::size_t>(i)] = i % k;

  for (const ModelKind kind : {ModelKind::kVA, ModelKind::kAGNN, ModelKind::kGAT}) {
    std::uint64_t vol_infer = 0, vol_train = 0;
    {
      const auto stats = comm::SpmdRuntime::run(4, [&](comm::Communicator& world) {
        GnnModel<double> model(config_for(kind, k, 2));
        dist::DistGnnEngine<double> engine(world, g.adj, model);
        comm::reset_all_stats(world);
        engine.forward(x, nullptr);
      });
      vol_infer = comm::max_bytes_sent(stats);
    }
    {
      const auto stats = comm::SpmdRuntime::run(4, [&](comm::Communicator& world) {
        GnnModel<double> model(config_for(kind, k, 2));
        dist::DistGnnEngine<double> engine(world, g.adj, model);
        SgdOptimizer<double> opt(0.01);
        comm::reset_all_stats(world);
        engine.train_step(x, labels, opt);
      });
      vol_train = comm::max_bytes_sent(stats);
    }
    EXPECT_GT(vol_train, vol_infer) << to_string(kind);
    EXPECT_LT(vol_train, 8 * vol_infer) << to_string(kind);
  }
}

TEST(CommVolume, GlobalVolumeScalesInverseSqrtP) {
  // Doubling sqrt(p) should roughly halve the dominant n*k/sqrt(p) term.
  const index_t n = 96, k = 8;
  const auto g = testing::small_graph<double>(n, 1500, 37);
  const auto v4 = global_forward_volume(g.adj, ModelKind::kVA, k, 2, 4);    // q=2
  const auto v16 = global_forward_volume(g.adj, ModelKind::kVA, k, 2, 16);  // q=4
  // v16 per-rank should be clearly below v4 (between 1/2 and ~1x, with the
  // k^2 and log-p terms softening the ideal halving).
  EXPECT_LT(v16, v4);
  EXPECT_GT(static_cast<double>(v16), 0.25 * static_cast<double>(v4));
}

}  // namespace
}  // namespace agnn
