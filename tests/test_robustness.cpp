// Robustness tests: float32 (the paper's evaluation precision) numerical
// behavior, directed graphs through every engine, extreme attention scores,
// fuzzed execution DAGs for the fusion planner, and the attention
// inspection API.
#include <gtest/gtest.h>

#include "baseline/dist_local_engine.hpp"
#include "baseline/local_engine.hpp"
#include "comm/communicator.hpp"
#include "core/execution_dag.hpp"
#include "core/model.hpp"
#include "dist/dist_engine.hpp"
#include "graph/graph.hpp"
#include "test_utils.hpp"

namespace agnn {
namespace {

// ---- float32 ----------------------------------------------------------------------

class Float32ModelSweep : public ::testing::TestWithParam<ModelKind> {};

TEST_P(Float32ModelSweep, MatchesDoublePrecisionWithinTolerance) {
  const auto g = testing::small_graph<double>(40, 200, 111);
  const auto x64 = testing::random_dense<double>(40, 8, 113);
  GnnConfig cfg;
  cfg.kind = GetParam();
  cfg.in_features = 8;
  cfg.layer_widths = {8, 4};
  cfg.hidden_activation = Activation::kTanh;
  cfg.seed = 5;
  const CsrMatrix<double> adj64 =
      cfg.kind == ModelKind::kGCN ? graph::sym_normalize(g.adj) : g.adj;
  GnnModel<double> m64(cfg);
  GnnModel<float> m32(cfg);  // same seed: parameters agree to float rounding
  const auto h64 = m64.infer(adj64, x64);
  const auto h32 = m32.infer(adj64.cast<float>(), x64.cast<float>());
  ASSERT_EQ(h64.rows(), h32.rows());
  double max_rel = 0;
  for (index_t i = 0; i < h64.size(); ++i) {
    const double denom = std::max(1.0, std::abs(h64.data()[i]));
    max_rel = std::max(
        max_rel, std::abs(h64.data()[i] - static_cast<double>(h32.data()[i])) / denom);
  }
  EXPECT_LT(max_rel, 5e-4) << to_string(GetParam());
}

INSTANTIATE_TEST_SUITE_P(Models, Float32ModelSweep,
                         ::testing::Values(ModelKind::kGCN, ModelKind::kVA,
                                           ModelKind::kAGNN, ModelKind::kGAT,
                                           ModelKind::kGIN),
                         [](const auto& info) { return to_string(info.param); });

TEST(Float32, TrainingIsStableOverManySteps) {
  const auto g = testing::small_graph<float>(64, 400, 117);
  GnnConfig cfg;
  cfg.kind = ModelKind::kGAT;
  cfg.in_features = 8;
  cfg.layer_widths = {8, 4};
  GnnModel<float> model(cfg);
  Rng rng(119);
  DenseMatrix<float> x(64, 8);
  x.fill_uniform(rng, -1.0, 1.0);
  std::vector<index_t> labels(64);
  for (auto& l : labels) l = static_cast<index_t>(rng.next_bounded(4));
  Trainer<float> trainer(model, std::make_unique<AdamOptimizer<float>>(0.01f));
  const auto losses = trainer.train(g.adj, x, labels, 200);
  for (const float l : losses) {
    EXPECT_TRUE(std::isfinite(l));
  }
  EXPECT_LT(losses.back(), losses.front());
}

TEST(Float32, SoftmaxSurvivesLargeScores) {
  // Scores around +-80 would overflow exp() in float32 without the
  // max-subtraction trick.
  auto a = testing::random_sparse<float>(20, 0.3, 121);
  auto v = a.vals_mutable();
  Rng rng(123);
  for (auto& x : v) x = static_cast<float>(rng.next_uniform(-80.0, 80.0));
  const auto s = row_softmax(a);
  for (index_t e = 0; e < s.nnz(); ++e) {
    EXPECT_TRUE(std::isfinite(s.val_at(e)));
    EXPECT_GE(s.val_at(e), 0.0f);
    EXPECT_LE(s.val_at(e), 1.0f);
  }
}

// ---- directed graphs through every engine ------------------------------------------------

CsrMatrix<double> directed_graph(index_t n, index_t m, std::uint64_t seed) {
  graph::BuildOptions opt;
  opt.symmetrize = false;
  opt.add_self_loops = true;  // keep attention rows non-empty
  opt.fix_isolated = false;
  return graph::build_graph<double>(graph::generate_erdos_renyi_m(n, m, seed), opt)
      .adj;
}

class DirectedEngineSweep : public ::testing::TestWithParam<ModelKind> {};

TEST_P(DirectedEngineSweep, AllEnginesAgreeOnDirectedTraining) {
  const index_t n = 24, k = 4;
  const CsrMatrix<double> adj = directed_graph(n, 90, 127);
  ASSERT_FALSE(adj.same_pattern(adj.transposed()));  // genuinely directed
  const CsrMatrix<double> adj_in =
      GetParam() == ModelKind::kGCN ? graph::sym_normalize(adj) : adj;
  const auto x = testing::random_dense<double>(n, k, 129);
  std::vector<index_t> labels(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) labels[static_cast<std::size_t>(i)] = i % k;

  GnnConfig cfg;
  cfg.kind = GetParam();
  cfg.in_features = k;
  cfg.layer_widths = {k, k};
  cfg.hidden_activation = Activation::kTanh;
  cfg.mlp_activation = Activation::kTanh;
  cfg.seed = 11;

  GnnModel<double> seq(cfg);
  Trainer<double> trainer(seq, std::make_unique<SgdOptimizer<double>>(0.05));
  const double ref_loss = trainer.step(adj_in, adj_in.transposed(), x, labels).loss;

  comm::SpmdRuntime::run(4, [&](comm::Communicator& world) {
    GnnModel<double> model(cfg);
    dist::DistGnnEngine<double> engine(world, adj_in, model);
    SgdOptimizer<double> opt(0.05);
    EXPECT_NEAR(engine.train_step(x, labels, opt).loss, ref_loss, 1e-9)
        << to_string(GetParam()) << " 1.5D directed";
  });
  comm::SpmdRuntime::run(3, [&](comm::Communicator& world) {
    GnnModel<double> model(cfg);
    baseline::DistLocalEngine<double> engine(world, adj_in, model);
    SgdOptimizer<double> opt(0.05);
    EXPECT_NEAR(engine.train_step(x, labels, opt).loss, ref_loss, 1e-9)
        << to_string(GetParam()) << " local directed";
  });
}

INSTANTIATE_TEST_SUITE_P(Models, DirectedEngineSweep,
                         ::testing::Values(ModelKind::kGCN, ModelKind::kVA,
                                           ModelKind::kAGNN, ModelKind::kGAT,
                                           ModelKind::kGIN),
                         [](const auto& info) { return to_string(info.param); });

// ---- fusion planner fuzz --------------------------------------------------------------

TEST(FusionPlannerFuzz, RandomChainDagsAlwaysResolve) {
  // Random chains: inputs -> k virtual ops -> sparse sampling. The planner
  // must fuse the whole chain, whatever its length.
  for (int seed = 0; seed < 20; ++seed) {
    Rng rng(static_cast<std::uint64_t>(seed));
    ir::ExecutionDag dag("fuzz");
    const int h = dag.add_input("H", ir::TensorClass::kDenseTall);
    const int a = dag.add_input("A", ir::TensorClass::kSparse);
    int cur = dag.add_op("v0", ir::TensorClass::kVirtualDense,
                         ir::OpClass::kMatMul, {h, h});
    const int chain = 1 + static_cast<int>(rng.next_bounded(5));
    for (int i = 0; i < chain; ++i) {
      cur = dag.add_op("v" + std::to_string(i + 1), ir::TensorClass::kVirtualDense,
                       ir::OpClass::kElementwise, {cur});
    }
    dag.add_op("sampled", ir::TensorClass::kSparse, ir::OpClass::kSDDMM, {a, cur});
    const auto plan = ir::plan_fusions(dag);
    EXPECT_TRUE(plan.all_virtual_fused()) << "seed " << seed;
    ASSERT_EQ(plan.kernels.size(), 1u);
    EXPECT_EQ(static_cast<int>(plan.kernels.front().path.size()), chain + 2);
  }
}

TEST(FusionPlannerFuzz, DanglingVirtualAlwaysFlagged) {
  for (int seed = 0; seed < 20; ++seed) {
    Rng rng(100 + static_cast<std::uint64_t>(seed));
    ir::ExecutionDag dag("fuzz-bad");
    const int h = dag.add_input("H", ir::TensorClass::kDenseTall);
    int cur = dag.add_op("v0", ir::TensorClass::kVirtualDense,
                         ir::OpClass::kMatMul, {h, h});
    const int chain = static_cast<int>(rng.next_bounded(4));
    for (int i = 0; i < chain; ++i) {
      cur = dag.add_op("v" + std::to_string(i + 1), ir::TensorClass::kVirtualDense,
                       ir::OpClass::kElementwise, {cur});
    }
    // Terminate in a DENSE op: this path would materialize n x n.
    dag.add_op("reduced", ir::TensorClass::kDenseTall, ir::OpClass::kRowReduce,
               {cur});
    const auto plan = ir::plan_fusions(dag);
    EXPECT_FALSE(plan.all_virtual_fused()) << "seed " << seed;
  }
}

// ---- attention inspection API --------------------------------------------------------------

TEST(AttentionScores, MatchesCachedPsiFromTraining) {
  const auto g = testing::small_graph<double>(18, 70, 131);
  const auto x = testing::random_dense<double>(18, 5, 133);
  for (const ModelKind kind : {ModelKind::kVA, ModelKind::kAGNN, ModelKind::kGAT}) {
    GnnConfig cfg;
    cfg.kind = kind;
    cfg.in_features = 5;
    cfg.layer_widths = {5};
    cfg.seed = 13;
    GnnModel<double> model(cfg);
    std::vector<LayerCache<double>> caches;
    model.forward(g.adj, x, caches);
    const auto psi = model.layer(0).attention_scores(g.adj, x);
    testing::expect_sparse_near(psi, caches[0].psi, 1e-10, to_string(kind));
  }
}

TEST(AttentionScores, GatRowsAreDistributions) {
  const auto g = testing::small_graph<double>(25, 100, 137);
  const auto x = testing::random_dense<double>(25, 6, 139);
  GnnConfig cfg;
  cfg.kind = ModelKind::kGAT;
  cfg.in_features = 6;
  cfg.layer_widths = {6};
  GnnModel<double> model(cfg);
  const auto psi = model.layer(0).attention_scores(g.adj, x);
  for (index_t i = 0; i < psi.rows(); ++i) {
    if (psi.row_nnz(i) == 0) continue;
    double sum = 0;
    for (index_t e = psi.row_begin(i); e < psi.row_end(i); ++e) sum += psi.val_at(e);
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST(AttentionScores, GcnAndGinReturnAdjacency) {
  const auto g = testing::small_graph<double>(12, 40, 141);
  const auto x = testing::random_dense<double>(12, 4, 143);
  for (const ModelKind kind : {ModelKind::kGCN, ModelKind::kGIN}) {
    GnnConfig cfg;
    cfg.kind = kind;
    cfg.in_features = 4;
    cfg.layer_widths = {4};
    GnnModel<double> model(cfg);
    const auto psi = model.layer(0).attention_scores(g.adj, x);
    EXPECT_TRUE(psi.same_pattern(g.adj));
  }
}

}  // namespace
}  // namespace agnn
