// Histogram correctness: quantiles against an exact sorted-sample oracle,
// bucket math, bitwise merge algebra, concurrent recording.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <thread>
#include <vector>

#include "obs/histogram.hpp"

namespace agnn::obs {
namespace {

// Exact oracle: the upper edge of the bucket containing the k-th smallest
// sample, k = clamp(round(q*n), 1, n) — the histogram's documented estimate.
// The assertion every distribution test makes: the histogram's answer must
// equal the oracle value's bucket upper edge (<=3.125% relative error by
// construction), clamped to the true max.
std::uint64_t oracle_quantile(std::vector<std::uint64_t> sorted, double q) {
  const std::uint64_t n = sorted.size();
  if (n == 0) return 0;
  std::uint64_t target =
      static_cast<std::uint64_t>(q * static_cast<double>(n) + 0.5);
  target = std::clamp<std::uint64_t>(target, 1, n);
  const std::uint64_t exact = sorted[target - 1];
  return std::min(Histogram::bucket_upper(Histogram::bucket_index(exact)),
                  sorted.back());
}

void check_against_oracle(const std::vector<std::uint64_t>& samples) {
  Histogram h;
  for (const std::uint64_t v : samples) h.record(v);
  std::vector<std::uint64_t> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  for (const double q : {0.0, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    EXPECT_EQ(h.quantile(q), oracle_quantile(sorted, q)) << "q=" << q;
  }
  EXPECT_EQ(h.count(), samples.size());
  EXPECT_EQ(h.min(), sorted.front());
  EXPECT_EQ(h.max(), sorted.back());
}

TEST(Histogram, BucketIndexIsMonotoneAndExactBelowUnitRange) {
  for (std::uint64_t v = 0; v < Histogram::kUnitBuckets; ++v) {
    EXPECT_EQ(Histogram::bucket_index(v), v);
    EXPECT_EQ(Histogram::bucket_upper(Histogram::bucket_index(v)), v);
  }
  std::size_t prev = 0;
  for (std::uint64_t v : {64ull, 65ull, 127ull, 128ull, 1000ull, 4096ull,
                          1ull << 20, (1ull << 20) + 1, 1ull << 40,
                          ~0ull >> 1, ~0ull}) {
    const std::size_t idx = Histogram::bucket_index(v);
    EXPECT_LT(idx, Histogram::kBucketCount);
    EXPECT_GE(idx, prev);
    prev = idx;
    // v lands in a bucket whose upper edge is >= v and within the promised
    // relative width of v.
    const std::uint64_t upper = Histogram::bucket_upper(idx);
    EXPECT_GE(upper, v);
    EXPECT_LE(static_cast<double>(upper - v),
              static_cast<double>(v) / Histogram::kSubBuckets + 1.0);
  }
}

TEST(Histogram, EveryBucketRoundTrips) {
  // bucket_upper(i) must itself map back to bucket i (self-consistency of
  // the two static functions over the whole table).
  for (std::size_t i = 0; i < Histogram::kBucketCount; ++i) {
    const std::uint64_t upper = Histogram::bucket_upper(i);
    EXPECT_EQ(Histogram::bucket_index(upper), i) << "bucket " << i;
  }
}

TEST(Histogram, EmptyHistogramReportsZeros) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0u);
  EXPECT_EQ(h.p999(), 0u);
}

TEST(Histogram, SingleSampleAllQuantilesEqualIt) {
  Histogram h;
  h.record(12345);
  for (const double q : {0.0, 0.5, 0.99, 1.0}) {
    EXPECT_EQ(h.quantile(q), 12345u) << "q=" << q;  // clamped to max
  }
  EXPECT_EQ(h.min(), 12345u);
  EXPECT_EQ(h.mean(), 12345.0);
}

TEST(Histogram, ConstantDistribution) {
  check_against_oracle(std::vector<std::uint64_t>(1000, 777));
}

TEST(Histogram, BimodalDistribution) {
  std::vector<std::uint64_t> samples;
  for (int i = 0; i < 900; ++i) samples.push_back(100 + i % 7);
  for (int i = 0; i < 100; ++i) samples.push_back(1'000'000 + i * 13);
  check_against_oracle(samples);
}

TEST(Histogram, HeavyTailDistribution) {
  std::mt19937_64 rng(42);
  std::lognormal_distribution<double> tail(8.0, 2.5);
  std::vector<std::uint64_t> samples;
  samples.reserve(20000);
  for (int i = 0; i < 20000; ++i) {
    samples.push_back(static_cast<std::uint64_t>(tail(rng)));
  }
  check_against_oracle(samples);
}

TEST(Histogram, UniformDistributionOracle) {
  std::mt19937_64 rng(7);
  std::uniform_int_distribution<std::uint64_t> u(0, 1u << 22);
  std::vector<std::uint64_t> samples;
  for (int i = 0; i < 10000; ++i) samples.push_back(u(rng));
  check_against_oracle(samples);
}

TEST(Histogram, QuantileNeverExceedsMax) {
  Histogram h;
  // A value just above a bucket's lower edge: the bucket upper edge would
  // overshoot; the quantile must clamp to the recorded max.
  h.record((1u << 20) + 1);
  EXPECT_EQ(h.p999(), (1u << 20) + 1);
}

TEST(Histogram, RelativeErrorBound) {
  // Against the *true* empirical quantile (not the bucketized oracle), the
  // estimate is within the documented 1/kSubBuckets relative error, and
  // never below the true value (upper-edge bias).
  std::mt19937_64 rng(3);
  std::uniform_int_distribution<std::uint64_t> u(1000, 50'000'000);
  Histogram h;
  std::vector<std::uint64_t> sorted;
  for (int i = 0; i < 50000; ++i) {
    const std::uint64_t v = u(rng);
    h.record(v);
    sorted.push_back(v);
  }
  std::sort(sorted.begin(), sorted.end());
  for (const double q : {0.5, 0.9, 0.99, 0.999}) {
    std::uint64_t target =
        static_cast<std::uint64_t>(q * static_cast<double>(sorted.size()) + 0.5);
    target = std::clamp<std::uint64_t>(target, 1, sorted.size());
    const double exact = static_cast<double>(sorted[target - 1]);
    const double est = static_cast<double>(h.quantile(q));
    EXPECT_GE(est, exact) << "q=" << q;
    EXPECT_LE(est, exact * (1.0 + 1.0 / Histogram::kSubBuckets) + 1.0)
        << "q=" << q;
  }
}

// ---- merge algebra --------------------------------------------------------

std::vector<std::uint64_t> bucket_snapshot(const Histogram& h) {
  std::vector<std::uint64_t> out(Histogram::kBucketCount + 4);
  for (std::size_t i = 0; i < Histogram::kBucketCount; ++i) {
    out[i] = h.bucket_count(i);
  }
  out[Histogram::kBucketCount + 0] = h.count();
  out[Histogram::kBucketCount + 1] = h.sum();
  out[Histogram::kBucketCount + 2] = h.min();
  out[Histogram::kBucketCount + 3] = h.max();
  return out;
}

void fill(Histogram& h, std::uint64_t seed, int n) {
  std::mt19937_64 rng(seed);
  std::lognormal_distribution<double> d(6.0, 2.0);
  for (int i = 0; i < n; ++i) {
    h.record(static_cast<std::uint64_t>(d(rng)));
  }
}

TEST(HistogramMerge, CommutativeBitwise) {
  Histogram a1, b1, a2, b2;
  fill(a1, 1, 5000);
  fill(a2, 1, 5000);
  fill(b1, 2, 3000);
  fill(b2, 2, 3000);
  Histogram ab, ba;
  ab.merge_from(a1);
  ab.merge_from(b1);
  ba.merge_from(b2);
  ba.merge_from(a2);
  EXPECT_EQ(bucket_snapshot(ab), bucket_snapshot(ba));
}

TEST(HistogramMerge, AssociativeBitwise) {
  Histogram a, b, c;
  fill(a, 10, 4000);
  fill(b, 11, 4000);
  fill(c, 12, 4000);
  // (a + b) + c
  Histogram ab, abc1;
  ab.merge_from(a);
  ab.merge_from(b);
  abc1.merge_from(ab);
  abc1.merge_from(c);
  // a + (b + c)
  Histogram bc, abc2;
  bc.merge_from(b);
  bc.merge_from(c);
  abc2.merge_from(a);
  abc2.merge_from(bc);
  EXPECT_EQ(bucket_snapshot(abc1), bucket_snapshot(abc2));
}

TEST(HistogramMerge, MergePreservesQuantilesOfUnion) {
  std::vector<std::uint64_t> all;
  Histogram parts[3], merged, direct;
  std::mt19937_64 rng(99);
  std::uniform_int_distribution<std::uint64_t> u(1, 1u << 24);
  for (int p = 0; p < 3; ++p) {
    for (int i = 0; i < 2000; ++i) {
      const std::uint64_t v = u(rng);
      parts[p].record(v);
      direct.record(v);
      all.push_back(v);
    }
  }
  for (const auto& p : parts) merged.merge_from(p);
  EXPECT_EQ(bucket_snapshot(merged), bucket_snapshot(direct));
  std::sort(all.begin(), all.end());
  EXPECT_EQ(merged.quantile(0.99), oracle_quantile(all, 0.99));
}

TEST(HistogramMerge, EmptySideIsIdentity) {
  Histogram a, empty, merged;
  fill(a, 5, 1000);
  merged.merge_from(a);
  merged.merge_from(empty);
  EXPECT_EQ(bucket_snapshot(merged), bucket_snapshot(a));
  // min must not be poisoned by the empty side's sentinel.
  EXPECT_EQ(merged.min(), a.min());
}

// ---- concurrency ----------------------------------------------------------

TEST(HistogramConcurrency, ParallelRecordersLoseNothing) {
  // 4 threads x 50k records each; totals and per-bucket sums must be exact
  // (wait-free relaxed adds never drop). Run under TSan in CI.
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50000;
  Histogram h;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      std::mt19937_64 rng(static_cast<std::uint64_t>(t) + 1);
      std::lognormal_distribution<double> d(7.0, 2.0);
      for (int i = 0; i < kPerThread; ++i) {
        h.record(static_cast<std::uint64_t>(d(rng)));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  std::uint64_t bucket_total = 0;
  for (std::size_t i = 0; i < Histogram::kBucketCount; ++i) {
    bucket_total += h.bucket_count(i);
  }
  EXPECT_EQ(bucket_total, h.count());
  EXPECT_GE(h.max(), h.quantile(0.999));
  EXPECT_LE(h.min(), h.quantile(0.001));
}

TEST(Histogram, ResetRestoresEmptyState) {
  Histogram h;
  fill(h, 8, 1000);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0u);
  // And it keeps working after the reset.
  h.record(42);
  EXPECT_EQ(h.p50(), 42u);
}

TEST(Histogram, SummaryFormats) {
  Histogram h;
  h.record(10);
  h.record(20);
  std::ostringstream text;
  h.summary_text(text);
  EXPECT_NE(text.str().find("count=2"), std::string::npos);
  EXPECT_NE(text.str().find("min=10"), std::string::npos);
  EXPECT_NE(text.str().find("max=20"), std::string::npos);
  std::ostringstream js;
  h.summary_json(js);
  EXPECT_NE(js.str().find("\"count\":2"), std::string::npos);
  EXPECT_EQ(js.str().front(), '{');
  EXPECT_EQ(js.str().back(), '}');
}

}  // namespace
}  // namespace agnn::obs
