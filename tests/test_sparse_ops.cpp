// Tests for SDDMM, graph softmax (Section 4.2) and its backward, sparse
// reductions, and the X + X^T building block — each against a dense oracle.
#include <gtest/gtest.h>

#include "tensor/reference_impls.hpp"
#include "tensor/sparse_ops.hpp"
#include "tensor/spmm.hpp"
#include "test_utils.hpp"

namespace agnn {
namespace {

using testing::random_dense;
using testing::random_sparse;

class SddmmSweep : public ::testing::TestWithParam<std::tuple<int, int, double>> {};

TEST_P(SddmmSweep, MatchesDenseSampledProduct) {
  const auto [n, k, density] = GetParam();
  const auto a = random_sparse<double>(n, density, 101);
  const auto x = random_dense<double>(n, k, 103);
  const auto y = random_dense<double>(n, k, 107);
  const auto out = sddmm(a, x, y);
  // Oracle: out(i,j) = a(i,j) * (X Y^T)(i,j)
  const auto xyt = matmul_nt(x, y);
  const auto ref = reference::sample_dense(a, xyt);
  testing::expect_sparse_near(out, ref, 1e-9, "sddmm");
}

INSTANTIATE_TEST_SUITE_P(Shapes, SddmmSweep,
                         ::testing::Values(std::tuple{5, 3, 0.5},
                                           std::tuple{16, 8, 0.2},
                                           std::tuple{40, 16, 0.1},
                                           std::tuple{64, 1, 0.05},
                                           std::tuple{1, 4, 1.0}));

TEST(SparseOps, SddmmShapeMismatchThrows) {
  const auto a = random_sparse<double>(4, 0.5, 1);
  const auto x = random_dense<double>(4, 3, 2);
  const auto y = random_dense<double>(4, 2, 3);
  EXPECT_THROW(sddmm(a, x, y), std::logic_error);
}

TEST(SparseOps, HadamardSamePattern) {
  const auto a = random_sparse<double>(10, 0.3, 5);
  auto b = a;
  auto bv = b.vals_mutable();
  for (index_t e = 0; e < b.nnz(); ++e) bv[static_cast<std::size_t>(e)] = 2.0;
  const auto h = hadamard_same_pattern(a, b);
  for (index_t e = 0; e < h.nnz(); ++e) {
    EXPECT_DOUBLE_EQ(h.val_at(e), 2.0 * a.val_at(e));
  }
}

TEST(SparseOps, MapValuesAppliesFunction) {
  const auto a = random_sparse<double>(8, 0.4, 7);
  const auto e = map_values(a, [](double v) { return v * v; });
  for (index_t i = 0; i < a.nnz(); ++i) {
    EXPECT_DOUBLE_EQ(e.val_at(i), a.val_at(i) * a.val_at(i));
  }
}

TEST(SparseOps, RowAndColSums) {
  CooMatrix<double> coo;
  coo.n_rows = coo.n_cols = 3;
  coo.push_back(0, 0, 1.0);
  coo.push_back(0, 2, 2.0);
  coo.push_back(2, 0, 4.0);
  const auto a = CsrMatrix<double>::from_coo(coo);
  const auto rs = sparse_row_sums(a);
  const auto cs = sparse_col_sums(a);
  EXPECT_DOUBLE_EQ(rs[0], 3.0);
  EXPECT_DOUBLE_EQ(rs[1], 0.0);
  EXPECT_DOUBLE_EQ(rs[2], 4.0);
  EXPECT_DOUBLE_EQ(cs[0], 5.0);
  EXPECT_DOUBLE_EQ(cs[1], 0.0);
  EXPECT_DOUBLE_EQ(cs[2], 2.0);
}

class SoftmaxSweep : public ::testing::TestWithParam<std::tuple<int, double, int>> {};

TEST_P(SoftmaxSweep, RowsSumToOne) {
  const auto [n, density, seed] = GetParam();
  auto a = random_sparse<double>(n, density, seed);
  // Spread the score range to stress the max-subtraction path.
  auto v = a.vals_mutable();
  Rng rng(seed + 1000);
  for (auto& x : v) x = rng.next_uniform(-50.0, 50.0);
  const auto s = row_softmax(a);
  for (index_t i = 0; i < s.rows(); ++i) {
    if (s.row_nnz(i) == 0) continue;
    double sum = 0;
    for (index_t e = s.row_begin(i); e < s.row_end(i); ++e) {
      EXPECT_GT(s.val_at(e), 0.0);
      sum += s.val_at(e);
    }
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST_P(SoftmaxSweep, MatchesDenseMaskedOracle) {
  const auto [n, density, seed] = GetParam();
  auto a = random_sparse<double>(n, density, seed);
  auto v = a.vals_mutable();
  Rng rng(seed + 2000);
  for (auto& x : v) x = rng.next_uniform(-5.0, 5.0);
  const auto s = row_softmax(a);
  DenseMatrix<double> scores(n, n, 0.0);
  for (index_t i = 0; i < n; ++i) {
    for (index_t e = a.row_begin(i); e < a.row_end(i); ++e) {
      scores(i, a.col_at(e)) = a.val_at(e);
    }
  }
  const auto ref = reference::masked_row_softmax_dense(a, scores);
  for (index_t i = 0; i < n; ++i) {
    for (index_t e = s.row_begin(i); e < s.row_end(i); ++e) {
      EXPECT_NEAR(s.val_at(e), ref(i, s.col_at(e)), 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Cases, SoftmaxSweep,
                         ::testing::Values(std::tuple{6, 0.5, 1},
                                           std::tuple{20, 0.2, 2},
                                           std::tuple{50, 0.1, 3},
                                           std::tuple{1, 1.0, 4}));

TEST(SparseOps, SoftmaxInvariantToRowShift) {
  // softmax(x + c) == softmax(x): the global formulation's normalization
  // must cancel any per-row shift.
  auto a = random_sparse<double>(12, 0.4, 9);
  auto shifted = a;
  auto sv = shifted.vals_mutable();
  for (index_t i = 0; i < shifted.rows(); ++i) {
    for (index_t e = shifted.row_begin(i); e < shifted.row_end(i); ++e) {
      sv[static_cast<std::size_t>(e)] += 7.5;
    }
  }
  testing::expect_sparse_near(row_softmax(a), row_softmax(shifted), 1e-12,
                              "shift invariance");
}

TEST(SparseOps, SoftmaxBackwardMatchesFiniteDifferences) {
  const index_t n = 10;
  auto x = random_sparse<double>(n, 0.35, 21);
  // Loss: sum of g ⊙ softmax(x) for a fixed random g.
  auto g = x;
  {
    auto gv = g.vals_mutable();
    Rng rng(22);
    for (auto& v : gv) v = rng.next_uniform(-1.0, 1.0);
  }
  auto loss = [&](const CsrMatrix<double>& xx) {
    const auto s = row_softmax(xx);
    double l = 0;
    for (index_t e = 0; e < s.nnz(); ++e) l += s.val_at(e) * g.val_at(e);
    return l;
  };
  const auto s = row_softmax(x);
  const auto dx = row_softmax_backward(s, g);
  const double eps = 1e-6;
  for (index_t e = 0; e < x.nnz(); ++e) {
    auto xp = x, xm = x;
    xp.vals_mutable()[static_cast<std::size_t>(e)] += eps;
    xm.vals_mutable()[static_cast<std::size_t>(e)] -= eps;
    const double numeric = (loss(xp) - loss(xm)) / (2 * eps);
    EXPECT_NEAR(dx.val_at(e), numeric, 1e-7) << "at nnz " << e;
  }
}

TEST(SparseOps, ScaleRowsCols) {
  const auto a = random_sparse<double>(6, 0.5, 31);
  std::vector<double> r(6), c(6);
  for (int i = 0; i < 6; ++i) {
    r[static_cast<std::size_t>(i)] = i + 1.0;
    c[static_cast<std::size_t>(i)] = 1.0 / (i + 2.0);
  }
  const auto out = scale_rows_cols<double>(a, r, c);
  for (index_t i = 0; i < a.rows(); ++i) {
    for (index_t e = a.row_begin(i); e < a.row_end(i); ++e) {
      EXPECT_DOUBLE_EQ(out.val_at(e),
                       a.val_at(e) * r[static_cast<std::size_t>(i)] *
                           c[static_cast<std::size_t>(a.col_at(e))]);
    }
  }
}

TEST(SparseOps, AddTransposeMatchesDense) {
  const auto a = random_sparse<double>(15, 0.2, 37);
  const auto ap = add_transpose(a);
  const auto d = a.to_dense();
  const auto dp = ap.to_dense();
  for (index_t i = 0; i < 15; ++i) {
    for (index_t j = 0; j < 15; ++j) {
      EXPECT_NEAR(dp(i, j), d(i, j) + d(j, i), 1e-12);
    }
  }
}

TEST(SparseOps, SpmmMatchesDense) {
  const auto a = random_sparse<double>(18, 0.25, 41);
  const auto h = random_dense<double>(18, 7, 43);
  const auto out = spmm(a, h);
  const auto ref = reference::matmul_naive(a.to_dense(), h);
  testing::expect_matrix_near(out, ref, 1e-10, "spmm");
}

TEST(SparseOps, SpmmAccumulateAddsIntoOutput) {
  const auto a = random_sparse<double>(10, 0.3, 47);
  const auto h = random_dense<double>(10, 4, 53);
  DenseMatrix<double> out(10, 4, 1.0);
  spmm_accumulate(a, h, out);
  const auto ref = spmm(a, h);
  for (index_t i = 0; i < out.size(); ++i) {
    EXPECT_NEAR(out.data()[i], ref.data()[i] + 1.0, 1e-12);
  }
}

TEST(SparseOps, SpmmmPicksEitherOrderConsistently) {
  const auto a = random_sparse<double>(12, 0.3, 59);
  const auto h = random_dense<double>(12, 6, 61);
  const auto w = random_dense<double>(6, 9, 67);
  const auto out = spmmm(a, h, w);
  const auto ref = matmul(spmm(a, h), w);
  testing::expect_matrix_near(out, ref, 1e-9, "spmmm");
}

TEST(SparseOps, MspmmMatchesExplicit) {
  const auto a = random_sparse<double>(11, 0.3, 71);
  const auto x = random_dense<double>(11, 4, 73);
  const auto y = random_dense<double>(11, 5, 79);
  const auto out = mspmm(x, a, y);
  const auto ref = matmul_tn(x, spmm(a, y));
  testing::expect_matrix_near(out, ref, 1e-10, "mspmm");
}

// Degenerate graphs through the softmax backward — adversarial families of
// the differential harness (tests/differential), pinned in the unit suite.
TEST(SparseOps, SoftmaxBackwardSelfLoopOnlyIsExactlyZero) {
  // Every softmax row has a single edge, so S(i,i) = 1 and the Jacobian
  // row-dot equals dS(i,i): dX must be exactly 0 at every edge.
  CooMatrix<double> coo;
  coo.n_rows = coo.n_cols = 4;
  for (index_t i = 0; i < 4; ++i) coo.push_back(i, i, 0.5 + 0.25 * double(i));
  const auto scores = CsrMatrix<double>::from_coo(coo);
  const auto s = row_softmax(scores);
  for (index_t e = 0; e < s.nnz(); ++e) EXPECT_EQ(s.val_at(e), 1.0);
  auto ds = s;
  {
    auto v = ds.vals_mutable();
    Rng rng(89);
    for (auto& x : v) x = rng.next_uniform(-3, 3);
  }
  const auto dx = row_softmax_backward(s, ds);
  for (index_t e = 0; e < dx.nnz(); ++e) EXPECT_EQ(dx.val_at(e), 0.0);
}

TEST(SparseOps, SoftmaxBackwardEmptyGraph) {
  CooMatrix<double> coo;
  coo.n_rows = coo.n_cols = 0;
  const auto s = row_softmax(CsrMatrix<double>::from_coo(coo));
  const auto dx = row_softmax_backward(s, s);
  EXPECT_EQ(dx.rows(), 0);
  EXPECT_EQ(dx.nnz(), 0);
}

TEST(SparseOps, SoftmaxBackwardAllIsolatedVertices) {
  CooMatrix<double> coo;
  coo.n_rows = coo.n_cols = 7;  // vertices but no edges: all rows empty
  const auto s = row_softmax(CsrMatrix<double>::from_coo(coo));
  const auto dx = row_softmax_backward(s, s);
  EXPECT_EQ(dx.rows(), 7);
  EXPECT_EQ(dx.nnz(), 0);
}

}  // namespace
}  // namespace agnn
