// Tests for the shared-memory local-formulation (message-passing) engine and
// the mini-batch sampler.
#include <gtest/gtest.h>

#include "baseline/local_engine.hpp"
#include "baseline/minibatch.hpp"
#include "core/model.hpp"
#include "graph/graph.hpp"
#include "test_utils.hpp"

namespace agnn::baseline {
namespace {

// (The main local-vs-global forward equivalence lives in
// test_models_forward.cpp; here the local engine's own properties and the
// mini-batch machinery are tested.)

TEST(LocalEngine, EmptyNeighborhoodProducesZeroForVa) {
  graph::BuildOptions opt;
  opt.symmetrize = false;
  opt.fix_isolated = false;
  graph::EdgeList el;
  el.n = 3;
  el.push_back(0, 1);
  const auto g = graph::build_graph<double>(el, opt);
  GnnConfig cfg;
  cfg.kind = ModelKind::kVA;
  cfg.in_features = 2;
  cfg.layer_widths = {2};
  cfg.output_activation = Activation::kIdentity;
  GnnModel<double> model(cfg);
  const auto x = testing::random_dense<double>(3, 2, 5);
  const auto h = local_infer(model, g.adj, x);
  // Vertices 1 and 2 have no out-edges: aggregation is empty -> zero.
  EXPECT_DOUBLE_EQ(h(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(h(2, 1), 0.0);
}

TEST(LocalEngine, SingleEdgeGatAttentionIsOne) {
  // A vertex with exactly one neighbor gives that neighbor softmax weight 1,
  // so its output equals W h_j exactly.
  graph::BuildOptions opt;
  opt.symmetrize = false;
  opt.fix_isolated = false;
  graph::EdgeList el;
  el.n = 2;
  el.push_back(0, 1);
  el.push_back(1, 0);
  const auto g = graph::build_graph<double>(el, opt);
  GnnConfig cfg;
  cfg.kind = ModelKind::kGAT;
  cfg.in_features = 3;
  cfg.layer_widths = {3};
  cfg.output_activation = Activation::kIdentity;
  cfg.seed = 21;
  GnnModel<double> model(cfg);
  const auto x = testing::random_dense<double>(2, 3, 22);
  const auto h = local_infer(model, g.adj, x);
  const auto hp = matmul(x, model.layer(0).weights());
  for (index_t j = 0; j < 3; ++j) {
    EXPECT_NEAR(h(0, j), hp(1, j), 1e-12);
    EXPECT_NEAR(h(1, j), hp(0, j), 1e-12);
  }
}

class MinibatchSweep : public ::testing::TestWithParam<index_t> {};

TEST_P(MinibatchSweep, SampleProperties) {
  const auto g = testing::small_graph<double>(60, 300, 91);
  const auto mb = sample_minibatch(g.adj, GetParam(), 7);
  EXPECT_EQ(mb.num_seeds, std::min<index_t>(GetParam(), 60));
  EXPECT_GE(static_cast<index_t>(mb.vertices.size()), mb.num_seeds);
  EXPECT_EQ(mb.adj.rows(), static_cast<index_t>(mb.vertices.size()));
  // Seeds come first and all vertex ids are distinct and in range.
  std::vector<index_t> sorted = mb.vertices;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());
  for (const index_t v : mb.vertices) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 60);
  }
}

TEST_P(MinibatchSweep, InducedEdgesMatchGlobalGraph) {
  const auto g = testing::small_graph<double>(40, 200, 93);
  const auto mb = sample_minibatch(g.adj, GetParam(), 11);
  const auto dg = g.adj.to_dense();
  const auto dl = mb.adj.to_dense();
  for (index_t i = 0; i < mb.adj.rows(); ++i) {
    for (index_t j = 0; j < mb.adj.cols(); ++j) {
      EXPECT_DOUBLE_EQ(dl(i, j), dg(mb.vertices[static_cast<std::size_t>(i)],
                                    mb.vertices[static_cast<std::size_t>(j)]));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(BatchSizes, MinibatchSweep,
                         ::testing::Values(1, 5, 16, 40, 1000));

TEST(Minibatch, SeedNeighborhoodIsComplete) {
  // Every neighbor of every seed must be in the batch (1-hop closure).
  const auto g = testing::small_graph<double>(50, 250, 95);
  const auto mb = sample_minibatch(g.adj, 10, 13);
  std::vector<bool> in_batch(50, false);
  for (const index_t v : mb.vertices) in_batch[static_cast<std::size_t>(v)] = true;
  for (index_t s = 0; s < mb.num_seeds; ++s) {
    const index_t gs = mb.vertices[static_cast<std::size_t>(s)];
    for (index_t e = g.adj.row_begin(gs); e < g.adj.row_end(gs); ++e) {
      EXPECT_TRUE(in_batch[static_cast<std::size_t>(g.adj.col_at(e))]);
    }
  }
  // And the seed rows of the induced graph have full degree.
  for (index_t s = 0; s < mb.num_seeds; ++s) {
    const index_t gs = mb.vertices[static_cast<std::size_t>(s)];
    EXPECT_EQ(mb.adj.row_nnz(s), g.adj.row_nnz(gs));
  }
}

TEST(Minibatch, GatherBatchFeatures) {
  const auto g = testing::small_graph<double>(30, 120, 97);
  const auto x = testing::random_dense<double>(30, 4, 99);
  const auto mb = sample_minibatch(g.adj, 8, 15);
  const auto bx = gather_batch_features(x, mb);
  ASSERT_EQ(bx.rows(), static_cast<index_t>(mb.vertices.size()));
  for (std::size_t i = 0; i < mb.vertices.size(); ++i) {
    for (index_t j = 0; j < 4; ++j) {
      EXPECT_DOUBLE_EQ(bx(static_cast<index_t>(i), j), x(mb.vertices[i], j));
    }
  }
}

TEST(Minibatch, ModelRunsOnBatchSubgraph) {
  // End-to-end: run GAT inference on a sampled batch — the mini-batch
  // baseline path of the figure benchmarks.
  const auto g = testing::small_graph<double>(80, 400, 101);
  const auto x = testing::random_dense<double>(80, 8, 103);
  const auto mb = sample_minibatch(g.adj, 16, 17);
  GnnConfig cfg;
  cfg.kind = ModelKind::kGAT;
  cfg.in_features = 8;
  cfg.layer_widths = {8, 4};
  GnnModel<double> model(cfg);
  const auto bx = gather_batch_features(x, mb);
  const auto h = model.infer(mb.adj, bx);
  EXPECT_EQ(h.rows(), static_cast<index_t>(mb.vertices.size()));
  EXPECT_EQ(h.cols(), 4);
  for (index_t i = 0; i < h.size(); ++i) EXPECT_TRUE(std::isfinite(h.data()[i]));
}

TEST(Minibatch, FullBatchDegeneratesToWholeGraph) {
  const auto g = testing::small_graph<double>(25, 100, 105);
  const auto mb = sample_minibatch(g.adj, 25, 19);
  EXPECT_EQ(mb.num_seeds, 25);
  EXPECT_EQ(static_cast<index_t>(mb.vertices.size()), 25);
  EXPECT_EQ(mb.adj.nnz(), g.adj.nnz());
}

}  // namespace
}  // namespace agnn::baseline
