// Perf-counter layer: the degradation contract (forced-unavailable must be
// a clean no-op), the depth-1 nesting rule, and the best-effort live path.
//
// None of these tests require a working perf_event_open: availability on CI
// runners and containers varies (perf_event_paranoid, seccomp), and the
// layer's whole point is that nothing may fail when the syscall does.
#include <gtest/gtest.h>

#include <thread>

#include "obs/obs_scope.hpp"
#include "obs/perf_counters.hpp"

namespace agnn::obs::perf {
namespace {

class PerfTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = enabled();
    MetricsRegistry::global().reset();
  }
  void TearDown() override {
    set_enabled(was_enabled_);
    force_unavailable(false);
    MetricsRegistry::global().reset();
  }
  bool was_enabled_ = false;
};

TEST_F(PerfTest, DisabledLayerRecordsNothing) {
  set_enabled(false);
  {
    AGNN_PERF_SCOPE("test_disabled");
    volatile int sink = 0;
    for (int i = 0; i < 1000; ++i) sink = sink + i;
  }
  const Counter* regions =
      MetricsRegistry::global().find_counter("perf.test_disabled.regions");
  // The metrics exist (registered at the call site) but never accumulate.
  ASSERT_NE(regions, nullptr);
  EXPECT_EQ(regions->value(), 0u);
}

TEST_F(PerfTest, ForcedUnavailableIsANoOp) {
  // AGNN_PERF on but the syscall "unavailable": every region must run the
  // degraded path — no counts, no crash, sample invalid. This is the test
  // ISSUE 8 pins: graceful degradation is a contract, not a hope.
  set_enabled(true);
  force_unavailable(true);
  EXPECT_FALSE(available());
  {
    AGNN_PERF_SCOPE("test_forced_off");
    volatile int sink = 0;
    for (int i = 0; i < 1000; ++i) sink = sink + i;
  }
  const Counter* regions =
      MetricsRegistry::global().find_counter("perf.test_forced_off.regions");
  ASSERT_NE(regions, nullptr);
  EXPECT_EQ(regions->value(), 0u);
  const Counter* cycles =
      MetricsRegistry::global().find_counter("perf.test_forced_off.cycles");
  ASSERT_NE(cycles, nullptr);
  EXPECT_EQ(cycles->value(), 0u);
}

TEST_F(PerfTest, ForcedUnavailableGroupReturnsInvalidSample) {
  set_enabled(true);
  force_unavailable(true);
  PerfGroup g;
  EXPECT_FALSE(g.available());
  EXPECT_EQ(g.members(), 0);
  g.start();                     // must be a no-op, not a crash
  const PerfSample s = g.stop();
  EXPECT_FALSE(s.valid);
  EXPECT_EQ(s.cycles, 0u);
  EXPECT_EQ(s.ipc(), 0.0);  // derived rates guard their denominators
  EXPECT_EQ(s.cache_miss_rate(), 0.0);
  EXPECT_EQ(s.branch_miss_rate(), 0.0);
}

TEST_F(PerfTest, NestedRegionsBillOnlyTheOutermost) {
  set_enabled(true);
  // Works with or without a live PMU: the depth rule is tracked by the
  // region objects themselves.
  RegionMetrics& outer = RegionMetrics::get("perf.test_outer");
  RegionMetrics& inner = RegionMetrics::get("perf.test_inner");
  {
    PerfRegion r1(outer);
    {
      PerfRegion r2(inner);
      EXPECT_FALSE(r2.active());  // depth 2: never the recording owner
    }
  }
  const Counter* inner_regions =
      MetricsRegistry::global().find_counter("perf.test_inner.regions");
  ASSERT_NE(inner_regions, nullptr);
  EXPECT_EQ(inner_regions->value(), 0u);
}

TEST_F(PerfTest, LiveSmokeWhenAvailable) {
  set_enabled(true);
  force_unavailable(false);
  // A fresh thread gets a fresh group: earlier tests deliberately poisoned
  // the main thread's one-shot availability probe via force_unavailable.
  bool ran = false;
  PerfSample s;
  std::thread t([&] {
    PerfGroup& g = thread_group();
    if (!g.available()) return;
    ran = true;
    g.start();
    volatile double acc = 0;
    for (int i = 0; i < 200000; ++i) acc = acc + static_cast<double>(i) * 1e-9;
    s = g.stop();
  });
  t.join();
  if (!ran) {
    GTEST_SKIP() << "perf_event_open unavailable here (paranoid/seccomp)";
  }
  ASSERT_TRUE(s.valid);
  // 200k loop iterations retire well over 200k instructions.
  EXPECT_GT(s.instructions, 200000u);
  EXPECT_GT(s.cycles, 0u);
  EXPECT_GT(s.ipc(), 0.0);
}

TEST_F(PerfTest, AccumulateUpdatesDerivedGauges) {
  MetricsRegistry& reg = MetricsRegistry::global();
  RegionMetrics& m = RegionMetrics::get("perf.test_acc");
  PerfSample s;
  s.valid = true;
  s.cycles = 1000;
  s.instructions = 2500;
  s.cache_references = 100;
  s.cache_misses = 25;
  s.branches = 400;
  s.branch_misses = 4;
  m.accumulate(s);
  m.accumulate(s);
  EXPECT_EQ(reg.find_counter("perf.test_acc.regions")->value(), 2u);
  EXPECT_EQ(reg.find_counter("perf.test_acc.cycles")->value(), 2000u);
  EXPECT_DOUBLE_EQ(reg.find_gauge("perf.test_acc.ipc")->value(), 2.5);
  EXPECT_DOUBLE_EQ(reg.find_gauge("perf.test_acc.cache_miss_rate")->value(),
                   0.25);
  EXPECT_DOUBLE_EQ(reg.find_gauge("perf.test_acc.branch_miss_rate")->value(),
                   0.01);
  // Invalid samples are dropped entirely.
  PerfSample bad;
  m.accumulate(bad);
  EXPECT_EQ(reg.find_counter("perf.test_acc.regions")->value(), 2u);
}

TEST_F(PerfTest, KernelScopeComposesWithForcedUnavailable) {
  // The full kernel-site bundle (trace span + latency histogram + perf
  // region) must survive AGNN_PERF on + unavailable syscall.
  set_enabled(true);
  force_unavailable(true);
  for (int i = 0; i < 10; ++i) {
    AGNN_KERNEL_SCOPE("perf_compose_test", 128);
    volatile int sink = i;
    (void)sink;
  }
  const Counter* regions = MetricsRegistry::global().find_counter(
      "perf.perf_compose_test.regions");
  ASSERT_NE(regions, nullptr);
  EXPECT_EQ(regions->value(), 0u);
}

}  // namespace
}  // namespace agnn::obs::perf
