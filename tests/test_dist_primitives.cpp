// Tests for the distribution primitives: block partitioning, the process
// grid, and the block-distributed SpMM / SDDMM building blocks executed on
// the simulated cluster.
#include <gtest/gtest.h>

#include "comm/communicator.hpp"
#include "dist/process_grid.hpp"
#include "tensor/sparse_ops.hpp"
#include "tensor/spmm.hpp"
#include "test_utils.hpp"

namespace agnn::dist {
namespace {

TEST(BlockRange, EvenPartition) {
  const auto b0 = block_range(12, 4, 0);
  const auto b3 = block_range(12, 4, 3);
  EXPECT_EQ(b0.begin, 0);
  EXPECT_EQ(b0.end, 3);
  EXPECT_EQ(b3.begin, 9);
  EXPECT_EQ(b3.end, 12);
}

TEST(BlockRange, UnevenPartitionCoversEverything) {
  for (index_t n : {1, 7, 13, 100, 101}) {
    for (index_t p : {1, 2, 3, 4, 8}) {
      index_t covered = 0;
      index_t prev_end = 0;
      for (index_t b = 0; b < p; ++b) {
        const auto r = block_range(n, p, b);
        EXPECT_EQ(r.begin, prev_end);
        EXPECT_GE(r.size(), n / p);
        EXPECT_LE(r.size(), n / p + 1);
        covered += r.size();
        prev_end = r.end;
      }
      EXPECT_EQ(covered, n);
    }
  }
}

TEST(ProcessGrid, RankCoordinateRoundTrip) {
  ProcessGrid grid(3);
  EXPECT_EQ(grid.size(), 9);
  for (int r = 0; r < 9; ++r) {
    EXPECT_EQ(grid.rank_of(grid.row_of(r), grid.col_of(r)), r);
  }
  EXPECT_EQ(grid.partner_of(grid.rank_of(1, 2)), grid.rank_of(2, 1));
  EXPECT_EQ(grid.partner_of(grid.rank_of(2, 2)), grid.rank_of(2, 2));
}

TEST(ProcessGrid, SideForRequiresPerfectSquare) {
  EXPECT_EQ(ProcessGrid::side_for(1), 1);
  EXPECT_EQ(ProcessGrid::side_for(4), 2);
  EXPECT_EQ(ProcessGrid::side_for(16), 4);
  EXPECT_THROW(ProcessGrid::side_for(6), std::logic_error);
}

// Distributed block SpMM: every rank holds A block (i,j) and the H block j;
// partial products reduced along grid rows must reproduce A*H.
class DistSpmmSweep : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(DistSpmmSweep, BlockSpmmMatchesSequential) {
  const auto [q, n, k] = GetParam();
  const auto a = testing::random_sparse<double>(n, 0.25, 7);
  const auto h = testing::random_dense<double>(n, k, 11);
  const auto ref = agnn::spmm(a, h);

  comm::SpmdRuntime::run(q * q, [&](comm::Communicator& world) {
    ProcessGrid grid(q);
    const int gi = grid.row_of(world.rank()), gj = grid.col_of(world.rank());
    comm::Communicator row_comm = world.split(gi, gj);
    const auto ri = block_range(n, q, gi), cj = block_range(n, q, gj);
    const auto a_loc = a.block(ri.begin, ri.end, cj.begin, cj.end);
    const auto h_loc = h.slice_rows(cj.begin, cj.end);
    DenseMatrix<double> partial = agnn::spmm(a_loc, h_loc);
    row_comm.allreduce_sum(partial.flat());
    // Every rank in grid row i now holds (A*H) rows R_i.
    for (index_t i = 0; i < ri.size(); ++i) {
      for (index_t g = 0; g < k; ++g) {
        EXPECT_NEAR(partial(i, g), ref(ri.begin + i, g), 1e-9)
            << "rank " << world.rank();
      }
    }
  });
}

TEST_P(DistSpmmSweep, BlockSddmmMatchesSequential) {
  const auto [q, n, k] = GetParam();
  const auto a = testing::random_sparse<double>(n, 0.25, 13);
  const auto x = testing::random_dense<double>(n, k, 17);
  const auto ref = sddmm(a, x, x);

  comm::SpmdRuntime::run(q * q, [&](comm::Communicator& world) {
    ProcessGrid grid(q);
    const int gi = grid.row_of(world.rank()), gj = grid.col_of(world.rank());
    const auto ri = block_range(n, q, gi), cj = block_range(n, q, gj);
    const auto a_loc = a.block(ri.begin, ri.end, cj.begin, cj.end);
    // Transpose-partner exchange of the layout-B block gives the R_i rows.
    const auto x_b = x.slice_rows(cj.begin, cj.end);
    DenseMatrix<double> x_r(ri.size(), k);
    {
      auto win = world.expose(std::span<const double>(x_b.flat()));
      win.get(x_r.flat(), grid.partner_of(world.rank()), 0);
      win.close();
    }
    const auto psi_loc = sddmm(a_loc, x_r, x_b);
    const auto ref_loc = ref.block(ri.begin, ri.end, cj.begin, cj.end);
    ASSERT_TRUE(psi_loc.same_pattern(ref_loc));
    for (index_t e = 0; e < psi_loc.nnz(); ++e) {
      EXPECT_NEAR(psi_loc.val_at(e), ref_loc.val_at(e), 1e-9);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Grids, DistSpmmSweep,
                         ::testing::Values(std::tuple{1, 20, 4}, std::tuple{2, 20, 4},
                                           std::tuple{2, 21, 3}, std::tuple{3, 30, 5},
                                           std::tuple{4, 32, 2}));

}  // namespace
}  // namespace agnn::dist
