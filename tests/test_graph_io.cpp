// Tests for the graph build pipeline (dedup, isolated-vertex fix, self
// loops, normalization) and the binary COO file I/O (the MAKG load path).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "graph/graph.hpp"
#include "graph/io.hpp"
#include "graph/kronecker.hpp"
#include "test_utils.hpp"

namespace agnn::graph {
namespace {

EdgeList tiny_edges() {
  EdgeList el;
  el.n = 5;
  el.push_back(0, 1);
  el.push_back(0, 1);  // duplicate
  el.push_back(1, 2);
  el.push_back(3, 3);  // self loop
  // vertex 4 isolated
  return el;
}

TEST(GraphBuild, DeduplicatesAndSymmetrizes) {
  const auto g = build_graph<double>(tiny_edges());
  const auto d = g.adj.to_dense();
  EXPECT_DOUBLE_EQ(d(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(d(1, 0), 1.0);  // symmetrized
  EXPECT_DOUBLE_EQ(d(1, 2), 1.0);
  EXPECT_DOUBLE_EQ(d(2, 1), 1.0);
  EXPECT_DOUBLE_EQ(d(3, 3), 0.0);  // self loop removed
}

TEST(GraphBuild, FixesIsolatedVertices) {
  const auto g = build_graph<double>(tiny_edges());
  // Vertices 3 (only had a self loop) and 4 (isolated) must be connected.
  for (index_t v = 0; v < 5; ++v) {
    index_t deg = g.adj.row_nnz(v);
    EXPECT_GE(deg, 1) << "vertex " << v << " still isolated";
  }
}

TEST(GraphBuild, SelfLoopsOption) {
  BuildOptions opt;
  opt.add_self_loops = true;
  const auto g = build_graph<double>(tiny_edges(), opt);
  const auto d = g.adj.to_dense();
  for (index_t v = 0; v < 5; ++v) EXPECT_DOUBLE_EQ(d(v, v), 1.0);
}

TEST(GraphBuild, DirectedOption) {
  BuildOptions opt;
  opt.symmetrize = false;
  opt.fix_isolated = false;
  const auto g = build_graph<double>(tiny_edges(), opt);
  const auto d = g.adj.to_dense();
  EXPECT_DOUBLE_EQ(d(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(d(1, 0), 0.0);
}

TEST(GraphBuild, SymmetrizedAdjacencyEqualsItsTranspose) {
  const auto el = generate_kronecker({.scale = 7, .edges = 600, .seed = 5});
  const auto g = build_graph<double>(el);
  const auto t = g.adj.transposed();
  EXPECT_TRUE(g.adj.same_pattern(t));
}

TEST(GraphBuild, SymNormalizeRowColScaling) {
  const auto g = build_graph<double>(tiny_edges());
  const auto norm = sym_normalize(g.adj);
  // Check one entry: Â(i,j) = 1/sqrt(d_i d_j).
  for (index_t i = 0; i < norm.rows(); ++i) {
    const double di = static_cast<double>(g.adj.row_nnz(i));
    for (index_t e = norm.row_begin(i); e < norm.row_end(i); ++e) {
      const double dj = static_cast<double>(g.adj.row_nnz(norm.col_at(e)));
      EXPECT_NEAR(norm.val_at(e), 1.0 / std::sqrt(di * dj), 1e-12);
    }
  }
}

TEST(GraphBuild, RowNormalizeMakesRowsStochastic) {
  const auto g = testing::small_graph<double>(30, 120, 31);
  const auto norm = row_normalize(g.adj);
  for (index_t i = 0; i < norm.rows(); ++i) {
    if (norm.row_nnz(i) == 0) continue;
    double sum = 0;
    for (index_t e = norm.row_begin(i); e < norm.row_end(i); ++e) sum += norm.val_at(e);
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

class GraphIoTest : public ::testing::Test {
 protected:
  void TearDown() override {
    if (!path_.empty()) std::filesystem::remove(path_);
  }
  std::string path_;
};

TEST_F(GraphIoTest, RoundTripPreservesEdges) {
  path_ = ::testing::TempDir() + "agnn_io_roundtrip.bin";
  const auto el = generate_kronecker({.scale = 8, .edges = 3000, .seed = 9});
  write_edge_list(path_, el);
  const auto back = read_edge_list(path_);
  EXPECT_EQ(back.n, el.n);
  EXPECT_EQ(back.src, el.src);
  EXPECT_EQ(back.dst, el.dst);
}

TEST_F(GraphIoTest, RoundTripThroughBuildPipeline) {
  path_ = ::testing::TempDir() + "agnn_io_pipeline.bin";
  const auto el = generate_kronecker({.scale = 7, .edges = 800, .seed = 15});
  write_edge_list(path_, el);
  const auto g1 = build_graph<float>(el);
  const auto g2 = build_graph<float>(read_edge_list(path_));
  EXPECT_TRUE(g1.adj.same_pattern(g2.adj));
}

TEST_F(GraphIoTest, MissingFileThrows) {
  EXPECT_THROW(read_edge_list("/nonexistent/path/graph.bin"), std::logic_error);
}

TEST_F(GraphIoTest, BadMagicThrows) {
  path_ = ::testing::TempDir() + "agnn_io_badmagic.bin";
  {
    std::FILE* f = std::fopen(path_.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("NOTAGRAPHFILE___", f);
    std::fclose(f);
  }
  EXPECT_THROW(read_edge_list(path_), std::logic_error);
}

TEST_F(GraphIoTest, TruncatedFileThrows) {
  path_ = ::testing::TempDir() + "agnn_io_trunc.bin";
  const auto el = generate_kronecker({.scale = 7, .edges = 500, .seed = 21});
  write_edge_list(path_, el);
  std::filesystem::resize_file(path_, std::filesystem::file_size(path_) / 2);
  EXPECT_THROW(read_edge_list(path_), std::logic_error);
}

}  // namespace
}  // namespace agnn::graph
