// Unit and property tests for the dense kernels against naive oracles.
#include <gtest/gtest.h>

#include <tuple>

#include "tensor/dense_ops.hpp"
#include "tensor/reference_impls.hpp"
#include "test_utils.hpp"

namespace agnn {
namespace {

using testing::expect_matrix_near;
using testing::random_dense;

TEST(DenseOps, MatmulSmallKnownValues) {
  DenseMatrix<double> a(2, 3, std::vector<double>{1, 2, 3, 4, 5, 6});
  DenseMatrix<double> b(3, 2, std::vector<double>{7, 8, 9, 10, 11, 12});
  auto c = matmul(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 58);
  EXPECT_DOUBLE_EQ(c(0, 1), 64);
  EXPECT_DOUBLE_EQ(c(1, 0), 139);
  EXPECT_DOUBLE_EQ(c(1, 1), 154);
}

TEST(DenseOps, MatmulDimensionMismatchThrows) {
  DenseMatrix<double> a(2, 3), b(2, 2);
  EXPECT_THROW(matmul(a, b), std::logic_error);
}

class MatmulSweep : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MatmulSweep, MatchesNaiveOracle) {
  const auto [n, k, m] = GetParam();
  auto a = random_dense<double>(n, k, 11);
  auto b = random_dense<double>(k, m, 13);
  expect_matrix_near(matmul(a, b), reference::matmul_naive(a, b), 1e-10, "matmul");
}

TEST_P(MatmulSweep, TransposedVariantsMatchExplicitTranspose) {
  const auto [n, k, m] = GetParam();
  auto a = random_dense<double>(n, k, 17);
  auto b = random_dense<double>(n, m, 19);
  // A^T B == transpose(A) * B
  expect_matrix_near(matmul_tn(a, b), reference::matmul_naive(transpose(a), b),
                     1e-10, "matmul_tn");
  auto c = random_dense<double>(m, k, 23);
  // A C^T == A * transpose(C)
  expect_matrix_near(matmul_nt(a.slice_rows(0, n), c),
                     reference::matmul_naive(a, transpose(c)), 1e-10, "matmul_nt");
}

INSTANTIATE_TEST_SUITE_P(Shapes, MatmulSweep,
                         ::testing::Values(std::tuple{1, 1, 1}, std::tuple{2, 3, 4},
                                           std::tuple{7, 5, 3}, std::tuple{16, 16, 16},
                                           std::tuple{33, 8, 129}, std::tuple{64, 1, 64}));

TEST(DenseOps, TransposeInvolution) {
  auto a = random_dense<float>(13, 7, 29);
  expect_matrix_near(transpose(transpose(a)), a, 0.0, "transpose^2");
}

TEST(DenseOps, MatvecMatchesMatmul) {
  auto a = random_dense<double>(9, 5, 31);
  auto x = random_dense<double>(5, 1, 37);
  const auto y = matvec(a, std::span<const double>(x.data(), 5));
  const auto y_ref = matmul(a, x);
  for (index_t i = 0; i < 9; ++i) {
    EXPECT_NEAR(y[static_cast<std::size_t>(i)], y_ref(i, 0), 1e-12);
  }
}

TEST(DenseOps, MatvecTnMatchesTransposedMatmul) {
  auto a = random_dense<double>(9, 5, 41);
  auto x = random_dense<double>(9, 1, 43);
  const auto y = matvec_tn(a, std::span<const double>(x.data(), 9));
  const auto y_ref = matmul(transpose(a), x);
  for (index_t i = 0; i < 5; ++i) {
    EXPECT_NEAR(y[static_cast<std::size_t>(i)], y_ref(i, 0), 1e-12);
  }
}

TEST(DenseOps, AddSubHadamardElementwise) {
  auto a = random_dense<double>(4, 4, 47);
  auto b = random_dense<double>(4, 4, 53);
  const auto s = add(a, b);
  const auto d = sub(a, b);
  const auto h = hadamard(a, b);
  for (index_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(s.data()[i], a.data()[i] + b.data()[i]);
    EXPECT_DOUBLE_EQ(d.data()[i], a.data()[i] - b.data()[i]);
    EXPECT_DOUBLE_EQ(h.data()[i], a.data()[i] * b.data()[i]);
  }
}

TEST(DenseOps, AxpyAccumulates) {
  auto a = random_dense<double>(3, 3, 59);
  DenseMatrix<double> c(3, 3, 1.0);
  axpy(2.0, a, c);
  for (index_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(c.data()[i], 1.0 + 2.0 * a.data()[i]);
  }
}

TEST(DenseOps, ReplicateColsImplementsRep) {
  std::vector<double> x{1, 2, 3};
  auto r = replicate_cols<double>(x, 4);
  EXPECT_EQ(r.rows(), 3);
  EXPECT_EQ(r.cols(), 4);
  for (index_t j = 0; j < 4; ++j) {
    EXPECT_DOUBLE_EQ(r(0, j), 1);
    EXPECT_DOUBLE_EQ(r(2, j), 3);
  }
}

TEST(DenseOps, RowSumsImplementsSum) {
  DenseMatrix<double> a(2, 3, std::vector<double>{1, 2, 3, -1, 0, 1});
  const auto s = row_sums(a);
  EXPECT_DOUBLE_EQ(s[0], 6);
  EXPECT_DOUBLE_EQ(s[1], 0);
}

TEST(DenseOps, RowL2Norms) {
  DenseMatrix<double> a(2, 2, std::vector<double>{3, 4, 0, 0});
  const auto n = row_l2_norms(a);
  EXPECT_DOUBLE_EQ(n[0], 5);
  EXPECT_DOUBLE_EQ(n[1], 0);
}

TEST(DenseOps, OuterProduct) {
  std::vector<double> x{1, 2}, y{3, 4, 5};
  const auto o = outer<double>(x, y);
  EXPECT_EQ(o.rows(), 2);
  EXPECT_EQ(o.cols(), 3);
  EXPECT_DOUBLE_EQ(o(1, 2), 10);
  DenseMatrix<double> acc(2, 3, 1.0);
  add_outer_inplace<double>(acc, x, y);
  EXPECT_DOUBLE_EQ(acc(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(acc(1, 2), 11.0);
}

TEST(DenseOps, FrobeniusNormAndMaxAbsDiff) {
  DenseMatrix<double> a(1, 2, std::vector<double>{3, 4});
  EXPECT_DOUBLE_EQ(frobenius_norm(a), 5.0);
  DenseMatrix<double> b(1, 2, std::vector<double>{3, 4.5});
  EXPECT_DOUBLE_EQ(max_abs_diff(a, b), 0.5);
}

// Property: (A B) C == A (B C) — associativity of the MM kernel to FP slop.
TEST(DenseOps, MatmulAssociativity) {
  auto a = random_dense<double>(6, 5, 61);
  auto b = random_dense<double>(5, 7, 67);
  auto c = random_dense<double>(7, 3, 71);
  expect_matrix_near(matmul(matmul(a, b), c), matmul(a, matmul(b, c)), 1e-9,
                     "associativity");
}

}  // namespace
}  // namespace agnn
