// End-to-end full-batch training: the loss must decrease and the models must
// solve a planted-partition node-classification task.
#include <gtest/gtest.h>

#include "core/model.hpp"
#include "graph/graph.hpp"
#include "test_utils.hpp"

namespace agnn {
namespace {

// A planted two-community graph: dense intra-community, sparse
// inter-community edges, with features that weakly indicate the community.
struct PlantedTask {
  CsrMatrix<double> adj;
  DenseMatrix<double> x;
  std::vector<index_t> labels;
};

PlantedTask make_planted_task(index_t n, std::uint64_t seed) {
  Rng rng(seed);
  CooMatrix<double> coo;
  coo.n_rows = coo.n_cols = n;
  const index_t half = n / 2;
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const bool same = (i < half) == (j < half);
      const double p = same ? 0.30 : 0.03;
      if (rng.next_double() < p) coo.push_back(i, j, 1.0);
    }
  }
  for (index_t i = 0; i < n; ++i) coo.push_back(i, i, 1.0);  // self loops
  coo.dedup_binary();

  PlantedTask task;
  task.adj = CsrMatrix<double>::from_coo(coo);
  task.x = DenseMatrix<double>(n, 4);
  task.labels.resize(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    task.labels[static_cast<std::size_t>(i)] = i < half ? 0 : 1;
    for (index_t f = 0; f < 4; ++f) {
      // Noisy community indicator.
      const double base = (i < half ? 1.0 : -1.0) * (f % 2 == 0 ? 0.5 : -0.5);
      task.x(i, f) = base + rng.next_uniform(-1.0, 1.0);
    }
  }
  return task;
}

class TrainSweep : public ::testing::TestWithParam<ModelKind> {};

TEST_P(TrainSweep, LossDecreasesAndTaskIsLearned) {
  const auto task = make_planted_task(60, 17);
  const CsrMatrix<double> adj = GetParam() == ModelKind::kGCN
                                    ? graph::sym_normalize(task.adj)
                                    : task.adj;
  GnnConfig cfg;
  cfg.kind = GetParam();
  cfg.in_features = 4;
  cfg.layer_widths = {8, 2};
  cfg.hidden_activation = Activation::kTanh;
  // GIN's sum aggregation is degree-amplifying; the tanh MLP keeps the
  // hidden scale bounded so training converges on the same budget.
  cfg.mlp_activation = Activation::kTanh;
  cfg.seed = 33;
  GnnModel<double> model(cfg);
  Trainer<double> trainer(model, std::make_unique<AdamOptimizer<double>>(0.01));
  const auto losses = trainer.train(adj, task.x, task.labels, 150);

  // The loss trajectory must show real learning: final well below initial.
  EXPECT_LT(losses.back(), 0.5 * losses.front())
      << to_string(GetParam()) << ": " << losses.front() << " -> " << losses.back();
  // And the model must classify the communities well.
  const auto h = model.infer(adj, task.x);
  EXPECT_GT(accuracy<double>(h, task.labels), 0.9) << to_string(GetParam());
}

INSTANTIATE_TEST_SUITE_P(Models, TrainSweep,
                         ::testing::Values(ModelKind::kGCN, ModelKind::kVA,
                                           ModelKind::kAGNN, ModelKind::kGAT,
                                           ModelKind::kGIN),
                         [](const auto& info) { return to_string(info.param); });

TEST(Training, MaskedTrainingIgnoresTestVertices) {
  const auto task = make_planted_task(40, 23);
  GnnConfig cfg;
  cfg.kind = ModelKind::kGAT;
  cfg.in_features = 4;
  cfg.layer_widths = {8, 2};
  cfg.hidden_activation = Activation::kTanh;
  cfg.seed = 12;
  GnnModel<double> model(cfg);
  Trainer<double> trainer(model, std::make_unique<AdamOptimizer<double>>(0.01));
  // Train on 60% of vertices only.
  std::vector<std::uint8_t> train_mask(40);
  for (int i = 0; i < 40; ++i) train_mask[static_cast<std::size_t>(i)] = (i % 5) < 3;
  const auto losses = trainer.train(task.adj, task.x, task.labels, 120, train_mask);
  EXPECT_LT(losses.back(), losses.front());
  // Generalization to the held-out vertices (the graph carries the signal).
  std::vector<std::uint8_t> test_mask(40);
  for (int i = 0; i < 40; ++i) test_mask[static_cast<std::size_t>(i)] = !train_mask[static_cast<std::size_t>(i)];
  const auto h = model.infer(task.adj, task.x);
  EXPECT_GT(accuracy<double>(h, task.labels, test_mask), 0.75);
}

TEST(Training, SgdStepMovesWeightsOppositeGradient) {
  const auto task = make_planted_task(20, 29);
  GnnConfig cfg;
  cfg.kind = ModelKind::kVA;
  cfg.in_features = 4;
  cfg.layer_widths = {2};
  cfg.seed = 9;
  GnnModel<double> model(cfg);
  const DenseMatrix<double> w_before = model.layer(0).weights();

  std::vector<LayerCache<double>> caches;
  const auto h = model.forward(task.adj, task.x, caches);
  const auto loss = softmax_cross_entropy<double>(h, task.labels);
  const auto grads = model.backward(task.adj, task.adj.transposed(), caches, loss.grad);
  SgdOptimizer<double> sgd(0.1);
  model.apply_gradients(grads, sgd);
  const DenseMatrix<double>& w_after = model.layer(0).weights();
  for (index_t i = 0; i < w_before.size(); ++i) {
    EXPECT_NEAR(w_after.data()[i],
                w_before.data()[i] - 0.1 * grads[0].d_w.data()[i], 1e-12);
  }
}

TEST(Training, DeterministicGivenSeed) {
  const auto task = make_planted_task(30, 31);
  auto run = [&](std::uint64_t seed) {
    GnnConfig cfg;
    cfg.kind = ModelKind::kAGNN;
    cfg.in_features = 4;
    cfg.layer_widths = {4, 2};
    cfg.seed = seed;
    GnnModel<double> model(cfg);
    Trainer<double> trainer(model, std::make_unique<SgdOptimizer<double>>(0.05));
    return trainer.train(task.adj, task.x, task.labels, 10);
  };
  const auto l1 = run(7);
  const auto l2 = run(7);
  EXPECT_EQ(l1, l2);
  const auto l3 = run(8);
  EXPECT_NE(l1, l3);
}

}  // namespace
}  // namespace agnn
