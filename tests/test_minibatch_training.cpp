// Mini-batch training and the SBM generator: sampled steps must converge on
// a learnable task, and full-batch-sized batches must match full-batch
// training exactly.
#include <gtest/gtest.h>

#include "baseline/minibatch_trainer.hpp"
#include "core/model.hpp"
#include "graph/graph.hpp"
#include "graph/sbm.hpp"
#include "test_utils.hpp"

namespace agnn {
namespace {

struct SbmTask {
  CsrMatrix<double> adj;
  DenseMatrix<double> x;
  std::vector<index_t> labels;
};

SbmTask make_sbm_task(index_t n, index_t classes, std::uint64_t seed) {
  const auto sbm = graph::generate_sbm(
      {.n = n, .communities = classes, .p_in = 0.25, .p_out = 0.02, .seed = seed});
  graph::BuildOptions opt;
  opt.add_self_loops = true;
  SbmTask task;
  task.adj = graph::build_graph<double>(sbm.edges, opt).adj;
  task.labels = sbm.labels;
  task.x = DenseMatrix<double>(n, 6);
  Rng rng(seed + 1);
  for (index_t i = 0; i < n; ++i) {
    for (index_t f = 0; f < 6; ++f) {
      const double base =
          (f % classes == task.labels[static_cast<std::size_t>(i)]) ? 0.5 : -0.2;
      task.x(i, f) = base + rng.next_uniform(-1.0, 1.0);
    }
  }
  return task;
}

TEST(Sbm, GeneratorProperties) {
  const auto sbm = graph::generate_sbm(
      {.n = 200, .communities = 4, .p_in = 0.2, .p_out = 0.01, .seed = 3});
  EXPECT_EQ(sbm.labels.size(), 200u);
  for (index_t v = 0; v < 200; ++v) {
    EXPECT_EQ(sbm.labels[static_cast<std::size_t>(v)], v % 4);
  }
  // Count intra vs inter edges: intra rate must be far higher.
  index_t intra = 0, inter = 0;
  for (index_t e = 0; e < sbm.edges.size(); ++e) {
    const auto li = sbm.labels[static_cast<std::size_t>(
        sbm.edges.src[static_cast<std::size_t>(e)])];
    const auto lj = sbm.labels[static_cast<std::size_t>(
        sbm.edges.dst[static_cast<std::size_t>(e)])];
    (li == lj ? intra : inter) += 1;
  }
  // 50 vertices/community: intra pairs = 4 * C(50,2) = 4900 at 0.2;
  // inter pairs = C(200,2) - 4900 = 15000 at 0.01.
  EXPECT_GT(intra, 700);
  EXPECT_LT(intra, 1300);
  EXPECT_GT(inter, 60);
  EXPECT_LT(inter, 300);
}

TEST(Sbm, DeterministicAndValidatesInput) {
  const auto a = graph::generate_sbm({.n = 50, .communities = 2, .seed = 9});
  const auto b = graph::generate_sbm({.n = 50, .communities = 2, .seed = 9});
  EXPECT_EQ(a.edges.src, b.edges.src);
  EXPECT_THROW(graph::generate_sbm({.n = 0}), std::logic_error);
  EXPECT_THROW(graph::generate_sbm({.n = 10, .communities = 2, .p_in = 1.5}),
               std::logic_error);
}

class MinibatchTrainSweep : public ::testing::TestWithParam<ModelKind> {};

TEST_P(MinibatchTrainSweep, SampledStepsLearnTheTask) {
  const auto task = make_sbm_task(80, 2, 17);
  const CsrMatrix<double> adj = GetParam() == ModelKind::kGCN
                                    ? graph::sym_normalize(task.adj)
                                    : task.adj;
  GnnConfig cfg;
  cfg.kind = GetParam();
  cfg.in_features = 6;
  cfg.layer_widths = {8, 2};
  cfg.hidden_activation = Activation::kTanh;
  cfg.mlp_activation = Activation::kTanh;
  cfg.seed = 21;
  GnnModel<double> model(cfg);
  baseline::MinibatchTrainer<double> trainer(
      model, std::make_unique<AdamOptimizer<double>>(0.01), 24, 5);
  const auto losses = trainer.train(adj, task.x, task.labels, 250);
  const auto h = model.infer(adj, task.x);
  EXPECT_GT(accuracy<double>(h, task.labels), 0.85) << to_string(GetParam());
  EXPECT_LT(losses.back(), losses.front());
}

INSTANTIATE_TEST_SUITE_P(Models, MinibatchTrainSweep,
                         ::testing::Values(ModelKind::kGCN, ModelKind::kGAT),
                         [](const auto& info) { return to_string(info.param); });

TEST(MinibatchTrainer, FullSizedBatchMatchesFullBatchStep) {
  // Batch size >= n degenerates to full-batch training with a seed mask of
  // everything — one step must equal Trainer::step exactly.
  const auto task = make_sbm_task(40, 2, 23);
  GnnConfig cfg;
  cfg.kind = ModelKind::kVA;
  cfg.in_features = 6;
  cfg.layer_widths = {4, 2};
  cfg.seed = 31;

  GnnModel<double> full_model(cfg);
  Trainer<double> full(full_model, std::make_unique<SgdOptimizer<double>>(0.05));
  const double full_loss =
      full.step(task.adj, task.adj.transposed(), task.x, task.labels).loss;

  GnnModel<double> mb_model(cfg);
  baseline::MinibatchTrainer<double> mb(
      mb_model, std::make_unique<SgdOptimizer<double>>(0.05), 40, 1);
  const auto res = mb.step(task.adj, task.x, task.labels);
  EXPECT_EQ(res.seeds, 40);
  EXPECT_NEAR(res.loss, full_loss, 1e-10);
  for (std::size_t l = 0; l < full_model.num_layers(); ++l) {
    testing::expect_matrix_near(mb_model.layer(l).weights(),
                                full_model.layer(l).weights(), 1e-10, "weights");
  }
}

TEST(MinibatchTrainer, ReportsBatchComposition) {
  const auto task = make_sbm_task(60, 2, 29);
  GnnConfig cfg;
  cfg.kind = ModelKind::kGAT;
  cfg.in_features = 6;
  cfg.layer_widths = {4, 2};
  GnnModel<double> model(cfg);
  baseline::MinibatchTrainer<double> trainer(
      model, std::make_unique<SgdOptimizer<double>>(0.01), 10, 3);
  const auto res = trainer.step(task.adj, task.x, task.labels);
  EXPECT_EQ(res.seeds, 10);
  EXPECT_GE(res.batch_vertices, res.seeds);
  EXPECT_LE(res.batch_vertices, 60);
}

}  // namespace
}  // namespace agnn
