// Unit tests for DenseMatrix<T>: construction, element access, slicing,
// initialization, and casting.
#include <gtest/gtest.h>

#include "tensor/dense_matrix.hpp"
#include "test_utils.hpp"

namespace agnn {
namespace {

TEST(DenseMatrix, DefaultConstructedIsEmpty) {
  DenseMatrix<float> m;
  EXPECT_EQ(m.rows(), 0);
  EXPECT_EQ(m.cols(), 0);
  EXPECT_TRUE(m.empty());
}

TEST(DenseMatrix, ConstructWithInitValue) {
  DenseMatrix<double> m(3, 4, 2.5);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 4);
  EXPECT_EQ(m.size(), 12);
  for (index_t i = 0; i < 3; ++i) {
    for (index_t j = 0; j < 4; ++j) EXPECT_DOUBLE_EQ(m(i, j), 2.5);
  }
}

TEST(DenseMatrix, ConstructFromVector) {
  DenseMatrix<int> m(2, 2, std::vector<int>{1, 2, 3, 4});
  EXPECT_EQ(m(0, 0), 1);
  EXPECT_EQ(m(0, 1), 2);
  EXPECT_EQ(m(1, 0), 3);
  EXPECT_EQ(m(1, 1), 4);
}

TEST(DenseMatrix, ConstructFromWrongSizeVectorThrows) {
  EXPECT_THROW(DenseMatrix<int>(2, 2, std::vector<int>{1, 2, 3}), std::logic_error);
}

TEST(DenseMatrix, OutOfRangeAccessThrows) {
  DenseMatrix<float> m(2, 2);
  EXPECT_THROW(m(2, 0), std::logic_error);
  EXPECT_THROW(m(0, 2), std::logic_error);
  EXPECT_THROW(m(-1, 0), std::logic_error);
}

TEST(DenseMatrix, RowSpanIsContiguousView) {
  DenseMatrix<float> m(3, 2);
  m(1, 0) = 5.0f;
  m(1, 1) = 6.0f;
  auto r = m.row(1);
  ASSERT_EQ(r.size(), 2u);
  EXPECT_FLOAT_EQ(r[0], 5.0f);
  EXPECT_FLOAT_EQ(r[1], 6.0f);
  r[0] = 7.0f;  // mutations visible through the matrix
  EXPECT_FLOAT_EQ(m(1, 0), 7.0f);
}

TEST(DenseMatrix, FillAndSetZero) {
  DenseMatrix<double> m(4, 4, 1.0);
  m.fill(3.0);
  EXPECT_DOUBLE_EQ(m(2, 2), 3.0);
  m.set_zero();
  EXPECT_DOUBLE_EQ(m(2, 2), 0.0);
}

TEST(DenseMatrix, GlorotInitIsBoundedAndDeterministic) {
  Rng rng1(7), rng2(7);
  DenseMatrix<double> a(20, 30), b(20, 30);
  a.fill_glorot(rng1);
  b.fill_glorot(rng2);
  const double limit = std::sqrt(6.0 / 50.0);
  bool any_nonzero = false;
  for (index_t i = 0; i < a.size(); ++i) {
    EXPECT_LE(std::abs(a.data()[i]), limit);
    EXPECT_DOUBLE_EQ(a.data()[i], b.data()[i]);
    any_nonzero |= a.data()[i] != 0.0;
  }
  EXPECT_TRUE(any_nonzero);
}

TEST(DenseMatrix, SliceRowsExtractsBlock) {
  DenseMatrix<int> m(4, 2, std::vector<int>{1, 2, 3, 4, 5, 6, 7, 8});
  auto s = m.slice_rows(1, 3);
  EXPECT_EQ(s.rows(), 2);
  EXPECT_EQ(s(0, 0), 3);
  EXPECT_EQ(s(1, 1), 6);
}

TEST(DenseMatrix, SliceRowsFullAndEmpty) {
  DenseMatrix<int> m(3, 1, std::vector<int>{1, 2, 3});
  EXPECT_EQ(m.slice_rows(0, 3), m);
  EXPECT_EQ(m.slice_rows(1, 1).rows(), 0);
}

TEST(DenseMatrix, SetRowsWritesBlock) {
  DenseMatrix<int> m(4, 2, 0);
  DenseMatrix<int> blk(2, 2, std::vector<int>{9, 8, 7, 6});
  m.set_rows(1, blk);
  EXPECT_EQ(m(0, 0), 0);
  EXPECT_EQ(m(1, 0), 9);
  EXPECT_EQ(m(2, 1), 6);
  EXPECT_EQ(m(3, 0), 0);
}

TEST(DenseMatrix, SetRowsOutOfRangeThrows) {
  DenseMatrix<int> m(2, 2, 0);
  DenseMatrix<int> blk(2, 2, 1);
  EXPECT_THROW(m.set_rows(1, blk), std::logic_error);
}

TEST(DenseMatrix, CastConvertsElementwise) {
  DenseMatrix<double> m(2, 2, std::vector<double>{1.5, 2.5, 3.5, 4.5});
  auto f = m.cast<float>();
  EXPECT_FLOAT_EQ(f(0, 0), 1.5f);
  EXPECT_FLOAT_EQ(f(1, 1), 4.5f);
}

TEST(DenseMatrix, EqualityComparesShapeAndValues) {
  DenseMatrix<int> a(2, 2, 1), b(2, 2, 1), c(2, 2, 2), d(1, 4, 1);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  EXPECT_FALSE(a == d);
}

TEST(DenseMatrix, SameShape) {
  DenseMatrix<float> a(2, 3), b(2, 3), c(3, 2);
  EXPECT_TRUE(a.same_shape(b));
  EXPECT_FALSE(a.same_shape(c));
}

}  // namespace
}  // namespace agnn
