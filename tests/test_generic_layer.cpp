// Tests for the programmable generic layer of Eq. (1): user-supplied Psi,
// semiring aggregation ⊕, update Phi, and the Phi ∘ ⊕ composition order.
#include <gtest/gtest.h>

#include "core/generic_layer.hpp"
#include "core/model.hpp"
#include "graph/graph.hpp"
#include "test_utils.hpp"

namespace agnn {
namespace {

TEST(GenericLayer, IdentityPsiSumAggregationIsGcn) {
  const auto g = testing::small_graph<double>(20, 80, 41);
  const auto adj = graph::sym_normalize(g.adj);
  const auto x = testing::random_dense<double>(20, 5, 43);
  auto w = testing::random_dense<double>(5, 5, 47);

  GenericLayerSpec<double> spec;
  spec.psi = make_psi_identity<double>();
  spec.aggregation = Aggregation::kSum;
  spec.phi = make_phi_linear(w);
  spec.activation = Activation::kRelu;
  const auto out = generic_layer_forward(spec, adj, x);
  const auto ref = activate(Activation::kRelu, matmul(spmm(adj, x), w));
  testing::expect_matrix_near(out, ref, 1e-10, "generic GCN");
}

TEST(GenericLayer, VaPsiReproducesVaModelLayer) {
  const auto g = testing::small_graph<double>(18, 70, 51);
  const auto x = testing::random_dense<double>(18, 6, 53);
  GnnConfig cfg;
  cfg.kind = ModelKind::kVA;
  cfg.in_features = 6;
  cfg.layer_widths = {6};
  cfg.output_activation = Activation::kRelu;
  cfg.seed = 2;
  GnnModel<double> model(cfg);

  GenericLayerSpec<double> spec;
  spec.psi = make_psi_va<double>();
  spec.aggregation = Aggregation::kSum;
  spec.phi = make_phi_linear<double>(model.layer(0).weights());
  spec.activation = Activation::kRelu;
  const auto out = generic_layer_forward(spec, g.adj, x);
  const auto ref = model.infer(g.adj, x);
  testing::expect_matrix_near(out, ref, 1e-9, "generic VA");
}

TEST(GenericLayer, AgnnPsiReproducesAgnnModelLayer) {
  const auto g = testing::small_graph<double>(18, 70, 57);
  const auto x = testing::random_dense<double>(18, 6, 59);
  GnnConfig cfg;
  cfg.kind = ModelKind::kAGNN;
  cfg.in_features = 6;
  cfg.layer_widths = {6};
  cfg.output_activation = Activation::kIdentity;
  cfg.seed = 4;
  GnnModel<double> model(cfg);

  GenericLayerSpec<double> spec;
  spec.psi = make_psi_agnn<double>();
  spec.phi = make_phi_linear<double>(model.layer(0).weights());
  spec.activation = Activation::kIdentity;
  const auto out = generic_layer_forward(spec, g.adj, x);
  testing::expect_matrix_near(out, model.infer(g.adj, x), 1e-9, "generic AGNN");
}

TEST(GenericLayer, PhiFirstCommutesForLinearPhiWithSum) {
  // Section 4.4: for linear Phi and the sum aggregation, (Psi H) W equals
  // Psi (H W) — the programmer may pick either order.
  const auto g = testing::small_graph<double>(16, 60, 61);
  const auto x = testing::random_dense<double>(16, 5, 63);
  auto w = testing::random_dense<double>(5, 7, 67);

  GenericLayerSpec<double> spec;
  spec.psi = make_psi_va<double>();
  spec.phi = make_phi_linear(w);
  spec.activation = Activation::kIdentity;
  spec.phi_first = false;
  const auto out1 = generic_layer_forward(spec, g.adj, x);
  spec.phi_first = true;
  const auto out2 = generic_layer_forward(spec, g.adj, x);
  testing::expect_matrix_near(out1, out2, 1e-9, "Phi ∘ ⊕ order");
}

TEST(GenericLayer, PhiFirstDoesNotCommuteWithMax) {
  // With a non-linear interaction (max aggregation), the order matters —
  // the model designer owns the choice, as Section 4 warns.
  const auto g = testing::small_graph<double>(16, 60, 71);
  const auto x = testing::random_dense<double>(16, 5, 73);
  auto w = testing::random_dense<double>(5, 5, 79);

  GenericLayerSpec<double> spec;
  spec.psi = make_psi_identity<double>();
  spec.aggregation = Aggregation::kMax;
  spec.phi = make_phi_linear(w);
  spec.activation = Activation::kIdentity;
  spec.phi_first = false;
  const auto out1 = generic_layer_forward(spec, g.adj.with_values(0.0), x);
  spec.phi_first = true;
  const auto out2 = generic_layer_forward(spec, g.adj.with_values(0.0), x);
  EXPECT_GT(max_abs_diff(out1, out2), 1e-6);
}

class GenericAggregationSweep : public ::testing::TestWithParam<Aggregation> {};

TEST_P(GenericAggregationSweep, CustomPsiWithEveryAggregation) {
  const auto g = testing::small_graph<double>(14, 50, 83);
  const auto x = testing::random_dense<double>(14, 4, 89);
  GenericLayerSpec<double> spec;
  // A custom user Psi: squared-dot-product attention — the programmability
  // point of the generic formulation.
  spec.psi = [](const CsrMatrix<double>& a, const DenseMatrix<double>& h) {
    auto p = psi_va(a, h);
    return map_values(p, [](double v) { return v * v; });
  };
  spec.aggregation = GetParam();
  spec.activation = Activation::kIdentity;
  CsrMatrix<double> adj = g.adj;
  if (GetParam() == Aggregation::kMin || GetParam() == Aggregation::kMax) {
    // Tropical semirings expect additive edge weights; Psi values act as
    // offsets here.
    adj = g.adj;
  }
  const auto out = generic_layer_forward(spec, adj, x);
  EXPECT_EQ(out.rows(), 14);
  EXPECT_EQ(out.cols(), 4);
  for (index_t i = 0; i < out.size(); ++i) {
    EXPECT_TRUE(std::isfinite(out.data()[i]));
  }
}

INSTANTIATE_TEST_SUITE_P(Aggregations, GenericAggregationSweep,
                         ::testing::Values(Aggregation::kSum, Aggregation::kMin,
                                           Aggregation::kMax, Aggregation::kMean),
                         [](const auto& info) { return to_string(info.param); });

TEST(GenericLayer, MissingPsiThrows) {
  const auto g = testing::small_graph<double>(8, 30, 97);
  const auto x = testing::random_dense<double>(8, 3, 101);
  GenericLayerSpec<double> spec;  // psi unset
  EXPECT_THROW(generic_layer_forward(spec, g.adj, x), std::logic_error);
}

}  // namespace
}  // namespace agnn
