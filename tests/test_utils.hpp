// Shared helpers for the test suite: random tensors and graphs with fixed
// seeds, and tolerant matrix comparison.
#pragma once

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "graph/erdos_renyi.hpp"
#include "graph/graph.hpp"
#include "graph/kronecker.hpp"
#include "tensor/csr_matrix.hpp"
#include "tensor/dense_matrix.hpp"

namespace agnn::testing {

template <typename T>
DenseMatrix<T> random_dense(index_t rows, index_t cols, std::uint64_t seed,
                            double lo = -1.0, double hi = 1.0) {
  DenseMatrix<T> m(rows, cols);
  Rng rng(seed);
  m.fill_uniform(rng, lo, hi);
  return m;
}

// A random sparse square matrix with roughly `density` fraction of non-zero
// entries and uniform random values. Guaranteed at least one entry per row
// (so softmax rows are never empty).
template <typename T>
CsrMatrix<T> random_sparse(index_t n, double density, std::uint64_t seed,
                           bool binary = false) {
  Rng rng(seed);
  CooMatrix<T> coo;
  coo.n_rows = n;
  coo.n_cols = n;
  for (index_t i = 0; i < n; ++i) {
    bool any = false;
    for (index_t j = 0; j < n; ++j) {
      if (rng.next_double() < density) {
        coo.push_back(i, j, binary ? T(1) : static_cast<T>(rng.next_uniform(0.1, 1.0)));
        any = true;
      }
    }
    if (!any) {
      coo.push_back(i, rng.next_bounded(static_cast<std::uint64_t>(n)),
                    binary ? T(1) : static_cast<T>(rng.next_uniform(0.1, 1.0)));
    }
  }
  coo.sum_duplicates();
  return CsrMatrix<T>::from_coo(coo);
}

// A small undirected test graph built through the standard pipeline.
template <typename T>
graph::Graph<T> small_graph(index_t n, index_t m, std::uint64_t seed,
                            bool self_loops = true) {
  auto el = graph::generate_erdos_renyi_m(n, m, seed);
  graph::BuildOptions opt;
  opt.add_self_loops = self_loops;
  return graph::build_graph<T>(el, opt);
}

template <typename T>
void expect_matrix_near(const DenseMatrix<T>& a, const DenseMatrix<T>& b,
                        double tol, const char* what = "") {
  ASSERT_EQ(a.rows(), b.rows()) << what;
  ASSERT_EQ(a.cols(), b.cols()) << what;
  for (index_t i = 0; i < a.rows(); ++i) {
    for (index_t j = 0; j < a.cols(); ++j) {
      EXPECT_NEAR(static_cast<double>(a(i, j)), static_cast<double>(b(i, j)), tol)
          << what << " at (" << i << "," << j << ")";
    }
  }
}

template <typename T>
void expect_sparse_near(const CsrMatrix<T>& a, const CsrMatrix<T>& b, double tol,
                        const char* what = "") {
  ASSERT_TRUE(a.same_pattern(b)) << what << ": patterns differ";
  for (index_t e = 0; e < a.nnz(); ++e) {
    EXPECT_NEAR(static_cast<double>(a.val_at(e)), static_cast<double>(b.val_at(e)), tol)
        << what << " at nnz " << e;
  }
}

}  // namespace agnn::testing
