// Observability subsystem tests: span balance and per-rank timestamp order,
// Chrome-JSON well-formedness, drop-newest buffer policy, metrics registry
// semantics, and the zero-allocation guarantee for hot-path recording.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <map>
#include <new>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "comm/communicator.hpp"
#include "core/model.hpp"
#include "dist/dist_engine.hpp"
#include "graph/graph.hpp"
#include "graph/kronecker.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/trace_report.hpp"

// ---- allocation counting (this binary only) --------------------------------
// Counts every global operator new. The zero-allocation test records spans
// between two reads of the counter; everything else in the binary may
// allocate freely.
//
// GCC pairs the replaced malloc-backed operator new with std::free at inline
// sites and warns spuriously; the replacement set below is self-consistent.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
static std::atomic<std::uint64_t> g_news{0};

void* operator new(std::size_t size) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace agnn {
namespace {

using obs::SpanCategory;
using obs::TraceEvent;
using obs::Tracer;

// RAII: enable tracing with a clean slate, disable on exit. Caps per-thread
// buffers at 64k events so the many short-lived rank threads this binary
// spawns don't each pin the 1M-event default.
struct ScopedTracing {
  ScopedTracing() {
    Tracer::instance().set_buffer_capacity(1u << 16);
    Tracer::instance().clear();
    Tracer::set_enabled(true);
  }
  ~ScopedTracing() { Tracer::set_enabled(false); }
};

std::vector<TraceEvent> events_of_rank(const std::vector<TraceEvent>& all,
                                       std::int32_t rank) {
  std::vector<TraceEvent> out;
  for (const auto& e : all) {
    if (e.rank == rank) out.push_back(e);
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_ns < b.ts_ns;
                   });
  return out;
}

// B/E events of one rank must nest like parentheses, with matching names.
void expect_balanced(const std::vector<TraceEvent>& rank_events) {
  std::vector<const TraceEvent*> stack;
  for (const auto& e : rank_events) {
    if (e.phase == 'B') {
      stack.push_back(&e);
    } else if (e.phase == 'E') {
      ASSERT_FALSE(stack.empty()) << "E without matching B: " << e.name;
      EXPECT_STREQ(stack.back()->name, e.name) << "mismatched span nesting";
      EXPECT_LE(stack.back()->ts_ns, e.ts_ns) << "span ends before it begins";
      stack.pop_back();
    }
  }
  EXPECT_TRUE(stack.empty()) << "unclosed spans remain";
}

TEST(TraceSpans, BalancedAndMonotonicPerRank) {
  ScopedTracing tracing;

  const auto el = graph::generate_kronecker({.scale = 5, .edges = 220, .seed = 3});
  graph::BuildOptions bopt;
  bopt.add_self_loops = true;
  const auto g = graph::build_graph<double>(el, bopt);
  const index_t n = g.num_vertices();
  DenseMatrix<double> x(n, 6);
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < 6; ++j) x(i, j) = 0.1 * static_cast<double>(i + j);
  }
  std::vector<index_t> labels(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) labels[static_cast<std::size_t>(i)] = i % 2;

  const int p = 4;
  comm::SpmdRuntime::run(p, [&](comm::Communicator& world) {
    GnnConfig cfg;
    cfg.kind = ModelKind::kGAT;
    cfg.in_features = 6;
    cfg.layer_widths = {8, 2};
    cfg.seed = 11;
    GnnModel<double> model(cfg);
    dist::DistGnnEngine<double> engine(world, g.adj, model);
    SgdOptimizer<double> opt(0.05);
    engine.train_step(x, labels, opt);
  });

  const auto all = Tracer::instance().collect();
  ASSERT_FALSE(all.empty());
  EXPECT_EQ(Tracer::instance().dropped_events(), 0u);

  bool saw_kernel = false, saw_collective = false, saw_superstep = false,
       saw_phase = false;
  for (int r = 0; r < p; ++r) {
    const auto ev = events_of_rank(all, r);
    ASSERT_FALSE(ev.empty()) << "rank " << r << " recorded nothing";
    expect_balanced(ev);
    // Sorted by ts above; the sort must not have had to reorder same-thread
    // events (steady clock is monotonic), so ts are non-decreasing.
    for (std::size_t i = 1; i < ev.size(); ++i) {
      EXPECT_LE(ev[i - 1].ts_ns, ev[i].ts_ns);
    }
    for (const auto& e : ev) {
      saw_kernel |= e.category == SpanCategory::kKernel;
      saw_collective |= e.category == SpanCategory::kCollective;
      saw_phase |= e.category == SpanCategory::kPhase;
      if (e.category == SpanCategory::kSuperstep) {
        EXPECT_EQ(e.phase, 'i');
        saw_superstep = true;
      }
    }
  }
  EXPECT_TRUE(saw_kernel);
  EXPECT_TRUE(saw_collective);
  EXPECT_TRUE(saw_superstep);
  EXPECT_TRUE(saw_phase);
}

// ---- minimal JSON parser (validation only) ---------------------------------
// Recursive descent over the grammar; returns false on any syntax error.
struct JsonChecker {
  const std::string& s;
  std::size_t i = 0;

  void ws() {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
  }
  bool lit(const char* t) {
    const std::size_t n = std::strlen(t);
    if (s.compare(i, n, t) != 0) return false;
    i += n;
    return true;
  }
  bool string() {
    if (i >= s.size() || s[i] != '"') return false;
    ++i;
    while (i < s.size() && s[i] != '"') {
      if (s[i] == '\\') ++i;
      ++i;
    }
    if (i >= s.size()) return false;
    ++i;
    return true;
  }
  bool number() {
    const std::size_t start = i;
    if (i < s.size() && (s[i] == '-' || s[i] == '+')) ++i;
    while (i < s.size() &&
           (std::isdigit(static_cast<unsigned char>(s[i])) || s[i] == '.' ||
            s[i] == 'e' || s[i] == 'E' || s[i] == '-' || s[i] == '+')) {
      ++i;
    }
    return i > start;
  }
  bool value() {
    ws();
    if (i >= s.size()) return false;
    switch (s[i]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return lit("true");
      case 'f': return lit("false");
      case 'n': return lit("null");
      default: return number();
    }
  }
  bool object() {
    if (s[i] != '{') return false;
    ++i;
    ws();
    if (i < s.size() && s[i] == '}') { ++i; return true; }
    while (true) {
      ws();
      if (!string()) return false;
      ws();
      if (i >= s.size() || s[i] != ':') return false;
      ++i;
      if (!value()) return false;
      ws();
      if (i < s.size() && s[i] == ',') { ++i; continue; }
      break;
    }
    if (i >= s.size() || s[i] != '}') return false;
    ++i;
    return true;
  }
  bool array() {
    if (s[i] != '[') return false;
    ++i;
    ws();
    if (i < s.size() && s[i] == ']') { ++i; return true; }
    while (true) {
      if (!value()) return false;
      ws();
      if (i < s.size() && s[i] == ',') { ++i; continue; }
      break;
    }
    if (i >= s.size() || s[i] != ']') return false;
    ++i;
    return true;
  }
  bool document() {
    if (!value()) return false;
    ws();
    return i == s.size();
  }
};

TEST(TraceJson, ExportIsWellFormed) {
  ScopedTracing tracing;
  comm::SpmdRuntime::run(2, [&](comm::Communicator& world) {
    std::vector<double> buf{1.0, 2.0, static_cast<double>(world.rank())};
    world.allreduce_sum(std::span<double>(buf));
    world.broadcast(std::span<double>(buf), 0);
  });
  {
    AGNN_TRACE_SCOPE("driver_span", kPhase);
  }
  Tracer::set_enabled(false);

  std::ostringstream os;
  Tracer::instance().write_chrome_json(os);
  const std::string json = os.str();

  JsonChecker check{json};
  EXPECT_TRUE(check.document()) << "invalid JSON near byte " << check.i;

  // Spot-check the trace_event schema and the rank -> thread mapping.
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"rank 0\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"rank 1\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"driver\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"collective\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"driver_span\""), std::string::npos);
}

std::size_t count_occurrences(const std::string& hay, const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = hay.find(needle); pos != std::string::npos;
       pos = hay.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

TEST(TraceJson, AbortMidSuperstepStaysWellFormed) {
  // A rank torn down by an injected fault can leave B events without their
  // E (here forced with a raw begin that never ends); the export must still
  // be valid JSON with every span closed — the writer synthesizes the Es.
  ScopedTracing tracing;
  comm::RunOptions opts;
  opts.faults = comm::FaultPlan::parse("abort@r1:s4");
  opts.timeout = std::chrono::milliseconds(250);
  std::atomic<int> errors{0};
  comm::SpmdRuntime::run(3, opts, [&](comm::Communicator& world) {
    std::vector<double> buf(8, 1.0);
    try {
      for (int i = 0; i < 10; ++i) {
        AGNN_TRACE_SCOPE("chaos.step", kPhase);
        world.allreduce_sum(std::span<double>(buf));
      }
    } catch (const comm::CommError&) {
      Tracer::instance().begin("chaos.unwound", SpanCategory::kPhase, 0);
      errors.fetch_add(1);
    }
  });
  EXPECT_EQ(errors.load(), 3);
  Tracer::set_enabled(false);

  std::ostringstream os;
  Tracer::instance().write_chrome_json(os);
  const std::string json = os.str();

  JsonChecker check{json};
  EXPECT_TRUE(check.document()) << "invalid JSON near byte " << check.i;
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"B\""),
            count_occurrences(json, "\"ph\":\"E\""))
      << "unbalanced spans in export";
  // The injected fault and the open spans both made it into the trace.
  EXPECT_NE(json.find("\"name\":\"fault.abort\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"chaos.unwound\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"fault\""), std::string::npos);
}

TEST(TraceJson, SynthesizedEndsCloseNestedOpenSpans) {
  ScopedTracing tracing;
  // Two spans left open, nested, on a non-rank thread.
  std::thread t([] {
    obs::RankBinding bind(5);
    Tracer::instance().begin("outer_open", SpanCategory::kPhase, 0);
    Tracer::instance().begin("inner_open", SpanCategory::kKernel, 0);
  });
  t.join();
  Tracer::set_enabled(false);

  std::ostringstream os;
  Tracer::instance().write_chrome_json(os);
  const std::string json = os.str();
  JsonChecker check{json};
  EXPECT_TRUE(check.document()) << "invalid JSON near byte " << check.i;
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"B\""), 2u);
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"E\""), 2u);
  // Synthesized closes come innermost-first, so the stream stays nestable:
  // the last mention of the inner span (its E) precedes the outer span's E.
  EXPECT_LT(json.rfind("\"name\":\"inner_open\""),
            json.rfind("\"name\":\"outer_open\""));
}

TEST(TraceBuffer, DropNewestPreservesBalance) {
  ScopedTracing tracing;
  Tracer::instance().set_buffer_capacity(64);  // smallest allowed

  // A fresh thread gets a fresh (tiny) buffer; overflow it.
  std::thread t([] {
    obs::RankBinding bind(17);
    for (int i = 0; i < 500; ++i) {
      AGNN_TRACE_SCOPE("outer", kKernel);
      AGNN_TRACE_SCOPE("inner", kKernel);
    }
  });
  t.join();
  Tracer::instance().set_buffer_capacity(1u << 16);  // restore test default

  const auto ev = events_of_rank(Tracer::instance().collect(), 17);
  EXPECT_FALSE(ev.empty());
  EXPECT_LE(ev.size(), 64u);
  EXPECT_GT(Tracer::instance().dropped_events(), 0u);
  expect_balanced(ev);
}

TEST(Metrics, CountersAndGauges) {
  obs::MetricsRegistry reg;
  reg.counter("comm.bytes").add(100);
  reg.counter("comm.bytes").add(23);
  EXPECT_EQ(reg.counter("comm.bytes").value(), 123u);

  reg.gauge("model.loss").set(0.5);
  reg.gauge("model.loss").set(0.25);
  EXPECT_DOUBLE_EQ(reg.gauge("model.loss").value(), 0.25);

  // Same name, same kind: the same metric object.
  EXPECT_EQ(&reg.counter("comm.bytes"), &reg.counter("comm.bytes"));

  const std::string text = reg.dump_text();
  EXPECT_NE(text.find("comm.bytes 123"), std::string::npos);
  EXPECT_NE(text.find("model.loss 0.25"), std::string::npos);

  const std::string json = reg.dump_json();
  JsonChecker check{json};
  EXPECT_TRUE(check.document()) << "invalid JSON near byte " << check.i;
  EXPECT_NE(json.find("\"comm.bytes\":123"), std::string::npos);
}

TEST(Metrics, NameCollisionAcrossKindsFails) {
  obs::MetricsRegistry reg;
  reg.counter("x");
  EXPECT_THROW(reg.gauge("x"), std::logic_error);
  reg.gauge("y");
  EXPECT_THROW(reg.counter("y"), std::logic_error);
}

TEST(Metrics, ImportersCoverExistingStats) {
  obs::MetricsRegistry reg;
  WorkspaceStats ws;
  ws.acquires = 10;
  ws.pool_hits = 9;
  ws.pool_misses = 1;
  ws.resident_bytes = 4096;
  obs::import_workspace_stats(reg, ws, "rank0.workspace");
  EXPECT_EQ(reg.counter("rank0.workspace.pool_hits").value(), 9u);
  EXPECT_DOUBLE_EQ(reg.gauge("rank0.workspace.hit_rate").value(), 0.9);

  comm::VolumeSnapshot snap{1000, 5, 7, 0.25};
  obs::import_volume_snapshot(reg, snap, "rank0.comm");
  EXPECT_EQ(reg.counter("rank0.comm.bytes_sent").value(), 1000u);
  EXPECT_EQ(reg.counter("rank0.comm.supersteps").value(), 7u);
  EXPECT_DOUBLE_EQ(reg.gauge("rank0.comm.compute_seconds").value(), 0.25);

  obs::import_cost_model(reg, 0.1, 0.2, 0.3, "run");
  EXPECT_DOUBLE_EQ(reg.gauge("run.modeled_total_seconds").value(), 0.3);
}

TEST(TraceHotPath, SpanRecordingAllocatesNothing) {
  ScopedTracing tracing;
  {
    // Warm-up: the thread's buffer is created on the first event.
    AGNN_TRACE_SCOPE("warmup", kKernel);
  }
  const std::uint64_t before = g_news.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    AGNN_TRACE_SCOPE("hot", kKernel);
    obs::superstep_mark(64, static_cast<std::uint64_t>(i));
  }
  const std::uint64_t after = g_news.load(std::memory_order_relaxed);
  EXPECT_EQ(before, after) << "span recording allocated on the hot path";
}

TEST(TraceReport, FlagsComputeCommDeviation) {
  // Synthetic timeline on one rank: a 10 ms kernel followed by a collective
  // whose modeled time is ~1 us -> ratio >> 2, must be flagged; then a
  // 1 us kernel before a collective modeled at ~1 us -> unflagged.
  std::vector<TraceEvent> ev;
  auto push = [&](const char* name, std::uint64_t ts, char ph,
                  SpanCategory cat, std::uint64_t bytes,
                  std::uint64_t step) {
    ev.push_back(TraceEvent{name, ts, bytes, step, 0, cat, ph});
  };
  push("spmm", 0, 'B', SpanCategory::kKernel, 0, 0);
  push("spmm", 10'000'000, 'E', SpanCategory::kKernel, 0, 0);
  push("big_gap", 10'000'000, 'B', SpanCategory::kCollective, 100, 0);
  push("superstep", 10'000'500, 'i', SpanCategory::kSuperstep, 100, 1);
  push("big_gap", 10'001'000, 'E', SpanCategory::kCollective, 0, 0);

  push("spmm", 20'000'000, 'B', SpanCategory::kKernel, 0, 0);
  push("spmm", 20'001'500, 'E', SpanCategory::kKernel, 0, 0);
  push("balanced", 20'002'000, 'B', SpanCategory::kCollective, 100, 0);
  push("superstep", 20'002'500, 'i', SpanCategory::kSuperstep, 100, 2);
  push("balanced", 20'003'000, 'E', SpanCategory::kCollective, 0, 0);

  obs::TraceReport report(comm::CostModel{1.5e-6, 1.0 / 10.0e9}, 2.0);
  const auto rows = report.build(ev);
  ASSERT_EQ(rows.size(), 2u);

  std::map<std::string, obs::TraceReportRow> by_name;
  for (const auto& r : rows) by_name[r.name] = r;

  ASSERT_TRUE(by_name.count("big_gap"));
  EXPECT_TRUE(by_name["big_gap"].flagged);
  EXPECT_NEAR(by_name["big_gap"].compute_seconds, 0.010, 1e-9);
  EXPECT_EQ(by_name["big_gap"].supersteps, 1u);

  ASSERT_TRUE(by_name.count("balanced"));
  EXPECT_FALSE(by_name["balanced"].flagged);
  EXPECT_NEAR(by_name["balanced"].compute_seconds, 1.5e-6, 1e-12);

  std::ostringstream os;
  const std::size_t flagged = report.print(os, rows);
  EXPECT_EQ(flagged, 1u);
  EXPECT_NE(os.str().find("big_gap"), std::string::npos);
}

TEST(TraceBuffer, DropCountersExportToRegistry) {
  ScopedTracing tracing;
  Tracer::instance().set_buffer_capacity(64);
  std::thread t([] {
    obs::RankBinding bind(23);
    for (int i = 0; i < 500; ++i) {
      AGNN_TRACE_SCOPE("overflow", kKernel);
    }
  });
  t.join();
  Tracer::instance().set_buffer_capacity(1u << 16);
  Tracer::set_enabled(false);

  obs::MetricsRegistry reg;
  const std::uint64_t total = Tracer::instance().export_drop_metrics(reg);
  EXPECT_GT(total, 0u);
  EXPECT_EQ(total, Tracer::instance().dropped_events());
  const obs::Counter* c = reg.find_counter("trace.dropped_spans");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->value(), total);
  // At least one per-thread breakdown entry exists and they sum to the total.
  std::uint64_t per_thread = 0;
  bool any = false;
  for (std::size_t i = 0; i < 256; ++i) {
    if (const obs::Counter* ct =
            reg.find_counter("trace.dropped_spans.t" + std::to_string(i))) {
      per_thread += ct->value();
      any = true;
    }
  }
  EXPECT_TRUE(any);
  EXPECT_EQ(per_thread, total);

  // Watermark semantics: re-export never moves the counters backwards.
  Tracer::instance().clear();
  EXPECT_EQ(Tracer::instance().export_drop_metrics(reg), 0u);
  EXPECT_EQ(reg.find_counter("trace.dropped_spans")->value(), total);
}

TEST(TraceReport, ExportFlagsBridgesToGauges) {
  std::vector<TraceEvent> ev;
  auto push = [&](const char* name, std::uint64_t ts, char ph,
                  SpanCategory cat, std::uint64_t bytes, std::uint64_t step) {
    ev.push_back(TraceEvent{name, ts, bytes, step, 0, cat, ph});
  };
  push("spmm", 0, 'B', SpanCategory::kKernel, 0, 0);
  push("spmm", 10'000'000, 'E', SpanCategory::kKernel, 0, 0);
  push("big_gap", 10'000'000, 'B', SpanCategory::kCollective, 100, 0);
  push("superstep", 10'000'500, 'i', SpanCategory::kSuperstep, 100, 1);
  push("big_gap", 10'001'000, 'E', SpanCategory::kCollective, 0, 0);

  obs::TraceReport report(comm::CostModel{1.5e-6, 1.0 / 10.0e9}, 2.0);
  const auto rows = report.build(ev);

  obs::MetricsRegistry reg;
  obs::TraceReport::export_flags(rows, reg);
  const obs::Gauge* n = reg.find_gauge("trace_report.flagged_rows");
  ASSERT_NE(n, nullptr);
  EXPECT_DOUBLE_EQ(n->value(), 1.0);
  const obs::Gauge* dev = reg.find_gauge("trace_report.deviation.big_gap");
  ASSERT_NE(dev, nullptr);
  EXPECT_GT(dev->value(), 2.0);

  // No flagged rows -> the count gauge says 0 and no deviation gauges appear.
  obs::MetricsRegistry clean;
  obs::TraceReport::export_flags({}, clean);
  EXPECT_DOUBLE_EQ(clean.find_gauge("trace_report.flagged_rows")->value(), 0.0);
  EXPECT_EQ(clean.find_gauge("trace_report.deviation.big_gap"), nullptr);
}

TEST(Metrics, HistogramIsAThirdKind) {
  obs::MetricsRegistry reg;
  reg.observe("lat.ns", 100);
  reg.observe("lat.ns", 200);
  EXPECT_EQ(reg.histogram("lat.ns").count(), 2u);
  // Kind collision in both directions.
  EXPECT_THROW(reg.counter("lat.ns"), std::logic_error);
  EXPECT_THROW(reg.gauge("lat.ns"), std::logic_error);
  reg.counter("c");
  EXPECT_THROW(reg.histogram("c"), std::logic_error);
  // find_* is kind-checked and never registers.
  EXPECT_NE(reg.find_histogram("lat.ns"), nullptr);
  EXPECT_EQ(reg.find_counter("lat.ns"), nullptr);
  EXPECT_EQ(reg.find_histogram("absent"), nullptr);
  EXPECT_EQ(reg.size(), 2u);
}

TEST(Metrics, CounterIsAddOnlyWithWatermark) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("water");
  c.set_max(100);
  EXPECT_EQ(c.value(), 100u);
  c.set_max(50);  // never backwards
  EXPECT_EQ(c.value(), 100u);
  c.set_max(150);
  EXPECT_EQ(c.value(), 150u);
  c.add(7);
  EXPECT_EQ(c.value(), 157u);
}

TEST(Metrics, ResetZeroesButKeepsReferences) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("c");
  obs::Gauge& g = reg.gauge("g");
  obs::Histogram& h = reg.histogram("h");
  c.add(5);
  g.set(2.5);
  h.record(1000);
  reg.reset();
  // Same objects, zeroed values — cached references stay valid.
  EXPECT_EQ(&reg.counter("c"), &c);
  EXPECT_EQ(&reg.gauge("g"), &g);
  EXPECT_EQ(&reg.histogram("h"), &h);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(reg.size(), 3u);
}

TEST(Metrics, DumpsAreDeterministicallyOrderedWithHistograms) {
  obs::MetricsRegistry reg;
  reg.observe("z.hist", 500);
  reg.counter("a.counter").add(1);
  reg.gauge("m.gauge").set(3.0);

  const std::string text = reg.dump_text();
  const auto pa = text.find("a.counter");
  const auto pm = text.find("m.gauge");
  const auto pz = text.find("z.hist");
  ASSERT_NE(pa, std::string::npos);
  ASSERT_NE(pm, std::string::npos);
  ASSERT_NE(pz, std::string::npos);
  EXPECT_LT(pa, pm);
  EXPECT_LT(pm, pz);
  EXPECT_NE(text.find("count=1"), std::string::npos);  // histogram summary

  // Two dumps of the same state are byte-identical, and the JSON dump is
  // well-formed with the histogram as a nested object.
  EXPECT_EQ(reg.dump_text(), text);
  const std::string json = reg.dump_json();
  EXPECT_EQ(reg.dump_json(), json);
  JsonChecker check{json};
  EXPECT_TRUE(check.document()) << "invalid JSON near byte " << check.i;
  EXPECT_NE(json.find("\"z.hist\":{"), std::string::npos);
}

TEST(Quiesced, SnapshotMatchesRelaxedWhenQuiet) {
  comm::VolumeStats s;
  s.charge(1234, 5, 6);
  s.compute_ns.store(2'000'000'000ULL);
  const auto live = comm::snapshot(s);
  const auto q = comm::snapshot_quiesced(s);
  EXPECT_EQ(live.bytes_sent, q.bytes_sent);
  EXPECT_EQ(live.messages, q.messages);
  EXPECT_EQ(live.supersteps, q.supersteps);
  EXPECT_DOUBLE_EQ(q.compute_seconds, 2.0);
}

}  // namespace
}  // namespace agnn
