// The scheduler test layer for src/tensor/schedule.hpp.
//
//   1. Policy spellings and the AGNN_SCHEDULE / AGNN_SCHEDULE_GRAIN parsing.
//   2. Degree-histogram bin boundaries and the skew statistics.
//   3. Auto-heuristic policy selection.
//   4. Chunking invariants, TEST_P over policy x adversarial graph: every
//      nnz covered exactly once, every row owned exactly once, no degenerate
//      chunks, pieces respect the grain and stay in edge order.
//   5. The schedule cache on CsrMatrix: reuse, rebuild on knob change,
//      transfer on copy, invalidation on pattern rebuild.
//   6. Scheduler equivalence, TEST_P over policy x thread count x graph:
//      every fused and sparse kernel against the single-threaded
//      row-parallel reference, plus bitwise determinism across repeated
//      runs and across thread counts.
//   7. Steady-state allocation audit for the chunked partial-accumulator
//      paths (this binary replaces global operator new to count).

#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <string>
#include <tuple>
#include <vector>

#include "graph/graph.hpp"
#include "graph/kronecker.hpp"
#include "graph/reorder.hpp"
#include "tensor/fused.hpp"
#include "tensor/schedule.hpp"
#include "tensor/sparse_ops.hpp"
#include "tensor/spmm.hpp"
#include "test_utils.hpp"

#if defined(_OPENMP)
#include <omp.h>
#endif

// ---- allocation counting (this binary only) --------------------------------
// Counts every global operator new; the steady-state audit reads the counter
// around a window of kernel calls. Everything else may allocate freely.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
static std::atomic<std::uint64_t> g_news{0};

void* operator new(std::size_t size) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace agnn {
namespace {

using testing::random_dense;

// Set/restore one environment variable for the duration of a scope. The
// schedule env knobs are read per kernel invocation, so flipping them inside
// a test is immediately visible.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) {
      had_ = true;
      old_ = old;
    }
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_) {
      ::setenv(name_, old_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  bool had_ = false;
  std::string old_;
};

#if defined(_OPENMP)
// Pin the OpenMP team size for a scope; the equivalence sweep runs every
// policy under several team sizes against a single-threaded reference.
class ScopedThreads {
 public:
  explicit ScopedThreads(int n) : prev_(omp_get_max_threads()) {
    omp_set_num_threads(n);
  }
  ~ScopedThreads() { omp_set_num_threads(prev_); }

 private:
  int prev_;
};
#else
class ScopedThreads {
 public:
  explicit ScopedThreads(int) {}
};
#endif

// ---- 1. parsing ------------------------------------------------------------

TEST(SchedulePolicyParse, AcceptsAllSpellings) {
  SchedulePolicy p{};
  EXPECT_TRUE(parse_schedule_policy("auto", p));
  EXPECT_EQ(p, SchedulePolicy::kAuto);
  EXPECT_TRUE(parse_schedule_policy("", p));
  EXPECT_EQ(p, SchedulePolicy::kAuto);
  EXPECT_TRUE(parse_schedule_policy("row", p));
  EXPECT_EQ(p, SchedulePolicy::kRowParallel);
  EXPECT_TRUE(parse_schedule_policy("row_parallel", p));
  EXPECT_EQ(p, SchedulePolicy::kRowParallel);
  EXPECT_TRUE(parse_schedule_policy("edge", p));
  EXPECT_EQ(p, SchedulePolicy::kEdgeBalanced);
  EXPECT_TRUE(parse_schedule_policy("edge_balanced", p));
  EXPECT_EQ(p, SchedulePolicy::kEdgeBalanced);
  EXPECT_TRUE(parse_schedule_policy("hybrid", p));
  EXPECT_EQ(p, SchedulePolicy::kHybridBinned);
  EXPECT_TRUE(parse_schedule_policy("hybrid_binned", p));
  EXPECT_EQ(p, SchedulePolicy::kHybridBinned);
}

TEST(SchedulePolicyParse, RejectsUnknownSpellings) {
  SchedulePolicy p = SchedulePolicy::kEdgeBalanced;
  EXPECT_FALSE(parse_schedule_policy("rows", p));
  EXPECT_FALSE(parse_schedule_policy("EDGE", p));
  EXPECT_FALSE(parse_schedule_policy("dynamic", p));
  EXPECT_FALSE(parse_schedule_policy("hybrid-binned", p));
  EXPECT_EQ(p, SchedulePolicy::kEdgeBalanced) << "rejects must not clobber out";
}

TEST(SchedulePolicyParse, EnvOverrideSelectsPolicy) {
  {
    ScopedEnv e("AGNN_SCHEDULE", nullptr);
    EXPECT_EQ(schedule_policy_from_env(), SchedulePolicy::kAuto);
  }
  {
    ScopedEnv e("AGNN_SCHEDULE", "edge");
    EXPECT_EQ(schedule_policy_from_env(), SchedulePolicy::kEdgeBalanced);
  }
  {
    ScopedEnv e("AGNN_SCHEDULE", "hybrid_binned");
    EXPECT_EQ(schedule_policy_from_env(), SchedulePolicy::kHybridBinned);
  }
  {
    // Garbage falls back to auto rather than aborting the run.
    ScopedEnv e("AGNN_SCHEDULE", "warp_per_row");
    EXPECT_EQ(schedule_policy_from_env(), SchedulePolicy::kAuto);
  }
}

TEST(SchedulePolicyParse, EnvGrainParsing) {
  {
    ScopedEnv e("AGNN_SCHEDULE_GRAIN", nullptr);
    EXPECT_EQ(schedule_grain_from_env(), kDefaultScheduleGrain);
  }
  {
    ScopedEnv e("AGNN_SCHEDULE_GRAIN", "256");
    EXPECT_EQ(schedule_grain_from_env(), 256);
  }
  for (const char* bad : {"", "0", "-8", "abc", "12abc"}) {
    ScopedEnv e("AGNN_SCHEDULE_GRAIN", bad);
    EXPECT_EQ(schedule_grain_from_env(), kDefaultScheduleGrain)
        << "grain '" << bad << "' must fall back to the default";
  }
}

// ---- 2. stats and bin boundaries -------------------------------------------

TEST(ScheduleStatsTest, DegreeBinBoundaries) {
  // Degrees chosen to straddle every nearby bin boundary: bin b holds the
  // degrees with bit width b, so [2^(b-1), 2^b - 1].
  const std::vector<index_t> degrees = {0, 1, 2, 3, 4, 7, 8, 15, 16, 1023, 1024};
  std::vector<index_t> row_ptr(1, 0);
  for (const index_t d : degrees) row_ptr.push_back(row_ptr.back() + d);
  const auto st = compute_schedule_stats(row_ptr);
  ASSERT_EQ(st.rows, static_cast<index_t>(degrees.size()));
  EXPECT_EQ(st.nnz, row_ptr.back());
  EXPECT_EQ(st.max_row_nnz, 1024);
  EXPECT_EQ(st.bins[0], 1);   // degree 0
  EXPECT_EQ(st.bins[1], 1);   // degree 1
  EXPECT_EQ(st.bins[2], 2);   // degrees 2, 3
  EXPECT_EQ(st.bins[3], 2);   // degrees 4, 7
  EXPECT_EQ(st.bins[4], 2);   // degrees 8, 15
  EXPECT_EQ(st.bins[5], 1);   // degree 16
  EXPECT_EQ(st.bins[10], 1);  // degree 1023
  EXPECT_EQ(st.bins[11], 1);  // degree 1024
  index_t total = 0;
  for (const index_t b : st.bins) total += b;
  EXPECT_EQ(total, st.rows) << "every row lands in exactly one bin";
}

TEST(ScheduleStatsTest, SkewIsMaxOverMean) {
  // 9 rows of degree 1 plus one hub of degree 91: mean 10, skew 9.1.
  std::vector<index_t> row_ptr(1, 0);
  for (int i = 0; i < 9; ++i) row_ptr.push_back(row_ptr.back() + 1);
  row_ptr.push_back(row_ptr.back() + 91);
  const auto st = compute_schedule_stats(row_ptr);
  EXPECT_EQ(st.nnz, 100);
  EXPECT_DOUBLE_EQ(st.mean_row_nnz, 10.0);
  EXPECT_DOUBLE_EQ(st.skew, 9.1);
}

TEST(ScheduleStatsTest, EmptyMatrixHasZeroSkew) {
  const std::vector<index_t> row_ptr = {0, 0, 0, 0};
  const auto st = compute_schedule_stats(row_ptr);
  EXPECT_EQ(st.rows, 3);
  EXPECT_EQ(st.nnz, 0);
  EXPECT_EQ(st.skew, 0.0);
  EXPECT_EQ(st.bins[0], 3);
}

// ---- 3. the Auto heuristic -------------------------------------------------

namespace {
std::vector<index_t> row_ptr_for(const std::vector<index_t>& degrees) {
  std::vector<index_t> rp(1, 0);
  for (const index_t d : degrees) rp.push_back(rp.back() + d);
  return rp;
}
}  // namespace

TEST(ScheduleHeuristic, TinyGraphsStayRowParallel) {
  // One monster hub, but nnz below the engagement floor: the chunk machinery
  // would cost more than the imbalance it removes.
  std::vector<index_t> degrees(10, 1);
  degrees[0] = 1000;
  const auto rp = row_ptr_for(degrees);
  const auto st = compute_schedule_stats(rp);
  ASSERT_LT(st.nnz, kScheduleAutoMinNnz);
  EXPECT_EQ(resolve_schedule_policy(st, SchedulePolicy::kAuto, 64),
            SchedulePolicy::kRowParallel);
}

TEST(ScheduleHeuristic, MonsterHubForcesHybrid) {
  // A hub spanning >= 4 grains dominates any uniform partition.
  std::vector<index_t> degrees(200, 1);
  degrees[7] = 4096;
  const auto st = compute_schedule_stats(row_ptr_for(degrees));
  ASSERT_GE(st.nnz, kScheduleAutoMinNnz);
  ASSERT_GE(st.max_row_nnz, 4 * 64);
  EXPECT_EQ(resolve_schedule_policy(st, SchedulePolicy::kAuto, 64),
            SchedulePolicy::kHybridBinned);
}

TEST(ScheduleHeuristic, ModerateSkewSelectsEdgeBalanced) {
  // Skew above the threshold but the largest row still fits inside a few
  // grains: the uniform edge partition suffices.
  std::vector<index_t> degrees(4200, 1);
  degrees[0] = 64;
  const auto st = compute_schedule_stats(row_ptr_for(degrees));
  ASSERT_GE(st.nnz, kScheduleAutoMinNnz);
  ASSERT_LT(st.max_row_nnz, 4 * kDefaultScheduleGrain);
  ASSERT_GE(st.skew, kScheduleAutoSkewThreshold);
  EXPECT_EQ(resolve_schedule_policy(st, SchedulePolicy::kAuto,
                                    kDefaultScheduleGrain),
            SchedulePolicy::kEdgeBalanced);
}

TEST(ScheduleHeuristic, BalancedDegreesStayRowParallel) {
  const std::vector<index_t> degrees(1000, 8);
  const auto st = compute_schedule_stats(row_ptr_for(degrees));
  ASSERT_GE(st.nnz, kScheduleAutoMinNnz);
  EXPECT_EQ(resolve_schedule_policy(st, SchedulePolicy::kAuto,
                                    kDefaultScheduleGrain),
            SchedulePolicy::kRowParallel);
}

TEST(ScheduleHeuristic, ExplicitRequestBypassesHeuristic) {
  const std::vector<index_t> degrees(4, 1);
  const auto st = compute_schedule_stats(row_ptr_for(degrees));
  EXPECT_EQ(resolve_schedule_policy(st, SchedulePolicy::kEdgeBalanced, 64),
            SchedulePolicy::kEdgeBalanced);
  EXPECT_EQ(resolve_schedule_policy(st, SchedulePolicy::kHybridBinned, 64),
            SchedulePolicy::kHybridBinned);
  EXPECT_EQ(resolve_schedule_policy(st, SchedulePolicy::kRowParallel, 64),
            SchedulePolicy::kRowParallel);
}

// ---- adversarial graph families --------------------------------------------
// The families the load-balance work targets: one huge hub (star), a long
// uniform tail (chain), interleaved and trailing empty rows (isolated mix),
// a power-law degree distribution (Kronecker), and a dense-ish control.

enum Family : int {
  kFamilyStar = 0,
  kFamilyChain,
  kFamilyIsolated,
  kFamilyKronHub,
  kFamilyRandom,
  kFamilyCount,
};

const char* family_name(int f) {
  switch (f) {
    case kFamilyStar: return "star";
    case kFamilyChain: return "chain";
    case kFamilyIsolated: return "isolated";
    case kFamilyKronHub: return "kron_hub";
    case kFamilyRandom: return "random";
  }
  return "?";
}

CsrMatrix<double> family_graph(int family, std::uint64_t seed) {
  CooMatrix<double> coo;
  Rng rng(seed);
  switch (family) {
    case kFamilyStar: {
      // Hub row 0 with n-1 out-edges plus the reverse edges and self-loops:
      // the canonical one-row-dominates case.
      const index_t n = 61;
      coo.n_rows = coo.n_cols = n;
      for (index_t j = 1; j < n; ++j) {
        coo.push_back(0, j, rng.next_uniform(0.1, 1.0));
        coo.push_back(j, 0, rng.next_uniform(0.1, 1.0));
      }
      for (index_t i = 0; i < n; ++i) {
        coo.push_back(i, i, rng.next_uniform(0.1, 1.0));
      }
      return CsrMatrix<double>::from_coo(coo);
    }
    case kFamilyChain: {
      // Degree <= 3 everywhere: exercises whole-row grouping with no splits.
      const index_t n = 97;
      coo.n_rows = coo.n_cols = n;
      for (index_t i = 0; i + 1 < n; ++i) {
        coo.push_back(i, i + 1, rng.next_uniform(0.1, 1.0));
        coo.push_back(i + 1, i, rng.next_uniform(0.1, 1.0));
      }
      for (index_t i = 0; i < n; ++i) {
        coo.push_back(i, i, rng.next_uniform(0.1, 1.0));
      }
      return CsrMatrix<double>::from_coo(coo);
    }
    case kFamilyIsolated: {
      // Random edges among the first third; the rest — including the final
      // rows — stay fully empty, so chunk row-coverage of trailing empties
      // is on the line.
      const index_t n = 72, live = 24;
      coo.n_rows = coo.n_cols = n;
      for (index_t e = 0; e < 160; ++e) {
        const auto i = static_cast<index_t>(
            rng.next_bounded(static_cast<std::uint64_t>(live)));
        const auto j = static_cast<index_t>(
            rng.next_bounded(static_cast<std::uint64_t>(live)));
        coo.push_back(i, j, rng.next_uniform(0.1, 1.0));
      }
      coo.sum_duplicates();
      return CsrMatrix<double>::from_coo(coo);
    }
    case kFamilyKronHub: {
      graph::BuildOptions opt;
      opt.add_self_loops = true;
      auto g = graph::build_graph<double>(
          graph::generate_kronecker({.scale = 7, .edges = 1500, .seed = seed}),
          opt);
      auto a = g.adj;
      auto v = a.vals_mutable();
      for (auto& x : v) x = rng.next_uniform(0.1, 1.0);
      return a;
    }
    case kFamilyRandom:
    default:
      return testing::random_sparse<double>(64, 0.12, seed);
  }
}

// ---- 4. chunking invariants ------------------------------------------------

class ScheduleChunking
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ScheduleChunking, CoversEveryEdgeAndRowExactlyOnce) {
  const auto policy = static_cast<SchedulePolicy>(std::get<0>(GetParam()));
  const auto a = family_graph(std::get<1>(GetParam()), 101);
  const index_t grain = 8;  // small enough to force splits on test graphs
  const auto sched = KernelSchedule::build(a.row_ptr(), policy, grain);
  ASSERT_EQ(sched.policy(), policy);

  // Edge coverage: walking every chunk's clamped per-row ranges touches
  // every stored edge exactly once.
  std::vector<int> edge_seen(static_cast<std::size_t>(a.nnz()), 0);
  std::vector<int> row_seen(static_cast<std::size_t>(a.rows()), 0);
  for (const auto& c : sched.chunks()) {
    ASSERT_LT(c.row_begin, c.row_end) << "chunk must own at least one row";
    ASSERT_LE(c.edge_begin, c.edge_end);
    if (c.piece >= 0) {
      ASSERT_EQ(c.row_end, c.row_begin + 1) << "pieces cover a single row";
      ASSERT_LT(c.edge_begin, c.edge_end) << "pieces must carry edges";
      ASSERT_LE(c.edge_end - c.edge_begin, grain);
    } else {
      for (index_t i = c.row_begin; i < c.row_end; ++i) {
        row_seen[static_cast<std::size_t>(i)]++;
      }
    }
    for (index_t i = c.row_begin; i < c.row_end; ++i) {
      const index_t b = std::max(a.row_begin(i), c.edge_begin);
      const index_t e = std::min(a.row_end(i), c.edge_end);
      for (index_t x = b; x < e; ++x) edge_seen[static_cast<std::size_t>(x)]++;
    }
  }
  // Split rows are owned by their SplitRow entry, not by a whole-row chunk.
  for (const auto& sr : sched.split_rows()) {
    row_seen[static_cast<std::size_t>(sr.row)]++;
  }
  for (index_t e = 0; e < a.nnz(); ++e) {
    ASSERT_EQ(edge_seen[static_cast<std::size_t>(e)], 1)
        << "edge " << e << " covered " << edge_seen[static_cast<std::size_t>(e)]
        << " times";
  }
  for (index_t i = 0; i < a.rows(); ++i) {
    ASSERT_EQ(row_seen[static_cast<std::size_t>(i)], 1)
        << "row " << i << " owned " << row_seen[static_cast<std::size_t>(i)]
        << " times (empty rows included)";
  }
}

TEST_P(ScheduleChunking, SplitRowPiecesAreOrderedAndGrainBounded) {
  const auto policy = static_cast<SchedulePolicy>(std::get<0>(GetParam()));
  const auto a = family_graph(std::get<1>(GetParam()), 103);
  const index_t grain = 8;
  const auto sched = KernelSchedule::build(a.row_ptr(), policy, grain);
  ASSERT_EQ(static_cast<index_t>(sched.pieces().size()), sched.num_pieces());
  for (const auto& sr : sched.split_rows()) {
    ASSERT_LT(sr.piece_begin, sr.piece_end);
    ASSERT_GE(sr.piece_end - sr.piece_begin, 2)
        << "a split row must have at least two pieces";
    // Pieces tile the row contiguously in ascending edge order — the fixed
    // reduction order that makes the partial fold deterministic.
    index_t pos = a.row_begin(sr.row);
    for (index_t p = sr.piece_begin; p < sr.piece_end; ++p) {
      const auto& piece = sched.pieces()[static_cast<std::size_t>(p)];
      ASSERT_EQ(piece.row, sr.row);
      ASSERT_EQ(piece.edge_begin, pos);
      ASSERT_GT(piece.edge_end, piece.edge_begin);
      ASSERT_LE(piece.edge_end - piece.edge_begin, grain);
      pos = piece.edge_end;
    }
    ASSERT_EQ(pos, a.row_end(sr.row)) << "pieces must tile the whole row";
  }
  // Whole-row chunks never balloon: the greedy builders close a chunk as
  // soon as it reaches the grain, so it holds < grain + max light row edges.
  const index_t cap =
      policy == SchedulePolicy::kEdgeBalanced ? 2 * grain : 3 * grain;
  for (const auto& c : sched.chunks()) {
    if (c.piece >= 0) continue;
    EXPECT_LT(c.edge_end - c.edge_begin, cap);
  }
}

TEST_P(ScheduleChunking, StarHubActuallySplits) {
  const auto policy = static_cast<SchedulePolicy>(std::get<0>(GetParam()));
  if (std::get<1>(GetParam()) != kFamilyStar) GTEST_SKIP();
  const auto a = family_graph(kFamilyStar, 107);
  const auto sched = KernelSchedule::build(a.row_ptr(), policy, 8);
  ASSERT_GE(sched.num_split_rows(), 1) << "the hub row must split";
  bool hub_split = false;
  for (const auto& sr : sched.split_rows()) hub_split |= sr.row == 0;
  EXPECT_TRUE(hub_split);
}

INSTANTIATE_TEST_SUITE_P(
    Policies, ScheduleChunking,
    ::testing::Combine(
        ::testing::Values(static_cast<int>(SchedulePolicy::kEdgeBalanced),
                          static_cast<int>(SchedulePolicy::kHybridBinned)),
        ::testing::Range(0, static_cast<int>(kFamilyCount))),
    [](const ::testing::TestParamInfo<std::tuple<int, int>>& pi) {
      return std::string(to_string(
                 static_cast<SchedulePolicy>(std::get<0>(pi.param)))) +
             "_" + family_name(std::get<1>(pi.param));
    });

// ---- 5. the schedule cache on CsrMatrix ------------------------------------

TEST(ScheduleCache, ReusesMatchingSchedule) {
  const auto a = family_graph(kFamilyStar, 109);
  const auto s1 = schedule_for(a, SchedulePolicy::kEdgeBalanced, 8);
  const auto s2 = schedule_for(a, SchedulePolicy::kEdgeBalanced, 8);
  EXPECT_EQ(s1.get(), s2.get()) << "same knobs must hit the cache";
  const auto s3 = schedule_for(a, SchedulePolicy::kEdgeBalanced, 16);
  EXPECT_NE(s1.get(), s3.get()) << "a grain change must rebuild";
  EXPECT_EQ(s3->grain(), 16);
  const auto s4 = schedule_for(a, SchedulePolicy::kHybridBinned, 16);
  EXPECT_NE(s3.get(), s4.get()) << "a policy change must rebuild";
}

TEST(ScheduleCache, CopyCarriesTheCache) {
  const auto a = family_graph(kFamilyStar, 113);
  const auto s = schedule_for(a, SchedulePolicy::kEdgeBalanced, 8);
  const CsrMatrix<double> b = a;  // same pattern -> the schedule stays valid
  EXPECT_EQ(b.cached_schedule().get(), s.get());
}

TEST(ScheduleCache, TransposeRebuildInvalidates) {
  const auto a = family_graph(kFamilyStar, 127);
  CsrMatrix<double> t = a.transposed();
  const auto s = schedule_for(t, SchedulePolicy::kEdgeBalanced, 8);
  ASSERT_NE(s.get(), nullptr);
  ASSERT_NE(t.cached_schedule().get(), nullptr);
  a.transposed_into(t);  // rebuilds t's pattern in place
  EXPECT_EQ(t.cached_schedule().get(), nullptr)
      << "an in-place pattern rebuild must drop the stale schedule";
  t.invalidate_schedule_cache();
  EXPECT_EQ(t.cached_schedule().get(), nullptr);
}

TEST(ScheduleCache, EnvDrivenAccessorTracksKnobs) {
  const auto a = family_graph(kFamilyStar, 131);
  ScopedEnv grain("AGNN_SCHEDULE_GRAIN", "8");
  {
    ScopedEnv pol("AGNN_SCHEDULE", "edge");
    const auto s = schedule_for(a);
    EXPECT_EQ(s->requested(), SchedulePolicy::kEdgeBalanced);
    EXPECT_EQ(s->policy(), SchedulePolicy::kEdgeBalanced);
    EXPECT_EQ(s->grain(), 8);
    EXPECT_EQ(schedule_for(a).get(), s.get());
  }
  {
    ScopedEnv pol("AGNN_SCHEDULE", "row");
    const auto s = schedule_for(a);
    EXPECT_EQ(s->policy(), SchedulePolicy::kRowParallel);
    EXPECT_TRUE(s->row_parallel());
  }
}

// ---- 6. scheduler equivalence ----------------------------------------------
// Every fused / sparse kernel under (policy x thread count x graph family)
// against the single-threaded row-parallel reference. Rows that are not
// split run byte-identical arithmetic under every policy; split rows
// reassociate within the fixed piece order, so the comparison is a tight
// relative tolerance rather than bitwise.

constexpr double kEqTol = 1e-12;
constexpr index_t kEqGrain = 8;

void expect_dense_close(const DenseMatrix<double>& got,
                        const DenseMatrix<double>& want, const char* what) {
  ASSERT_EQ(got.rows(), want.rows()) << what;
  ASSERT_EQ(got.cols(), want.cols()) << what;
  for (index_t i = 0; i < got.size(); ++i) {
    const double w = want.data()[i];
    // Bit-equal covers the ±inf identities empty rows leave in the min/max
    // aggregations, where inf - inf would poison EXPECT_NEAR.
    if (std::bit_cast<std::uint64_t>(got.data()[i]) ==
        std::bit_cast<std::uint64_t>(w)) {
      continue;
    }
    ASSERT_NEAR(got.data()[i], w, kEqTol * (1.0 + std::abs(w)))
        << what << " at flat index " << i;
  }
}

void expect_sparse_close(const CsrMatrix<double>& got,
                         const CsrMatrix<double>& want, const char* what) {
  ASSERT_TRUE(got.same_pattern(want)) << what;
  for (index_t e = 0; e < got.nnz(); ++e) {
    const double w = want.val_at(e);
    ASSERT_NEAR(got.val_at(e), w, kEqTol * (1.0 + std::abs(w)))
        << what << " at nnz " << e;
  }
}

void expect_vec_close(const std::vector<double>& got,
                      const std::vector<double>& want, const char* what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_NEAR(got[i], want[i], kEqTol * (1.0 + std::abs(want[i])))
        << what << " at " << i;
  }
}

bool dense_bits_equal(const DenseMatrix<double>& a, const DenseMatrix<double>& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (index_t i = 0; i < a.size(); ++i) {
    if (std::bit_cast<std::uint64_t>(a.data()[i]) !=
        std::bit_cast<std::uint64_t>(b.data()[i])) {
      return false;
    }
  }
  return true;
}

// Inputs shared by the sweep: a weighted adversarial graph plus features,
// aggregation operands, and attention score vectors.
struct SweepInputs {
  CsrMatrix<double> a;
  DenseMatrix<double> h;
  DenseMatrix<double> x;
  std::vector<double> s1, s2, row_scale, col_scale;
};

SweepInputs make_inputs(int family) {
  SweepInputs in;
  in.a = family_graph(family, 137 + static_cast<std::uint64_t>(family));
  const index_t n = in.a.rows();
  in.h = random_dense<double>(n, 5, 139);
  in.x = random_dense<double>(n, 4, 149);
  Rng rng(151);
  in.s1.resize(static_cast<std::size_t>(n));
  in.s2.resize(static_cast<std::size_t>(n));
  in.row_scale.resize(static_cast<std::size_t>(n));
  in.col_scale.resize(static_cast<std::size_t>(n));
  for (auto& v : in.s1) v = rng.next_uniform(-1, 1);
  for (auto& v : in.s2) v = rng.next_uniform(-1, 1);
  for (auto& v : in.row_scale) v = rng.next_uniform(0.5, 2.0);
  for (auto& v : in.col_scale) v = rng.next_uniform(0.5, 2.0);
  return in;
}

// Every scheduled kernel's outputs for one (schedule, inputs) pair, so the
// reference and the candidate runs share one code path.
struct SweepOutputs {
  DenseMatrix<double> spmm_out, acc_out, agg_min, agg_max, agg_mean;
  DenseMatrix<double> fused_va, fused_gat;
  CsrMatrix<double> sddmm_out, sddmm_unw, scaled, softmax, softmax_dx;
  CsrMatrix<double> va, agnn, gat_scores, gat_psi;
  std::vector<double> row_sums;
};

SweepOutputs run_all_kernels(const SweepInputs& in, const KernelSchedule& sched) {
  SweepOutputs o;
  const double slope = 0.2;
  spmm(in.a, in.h, o.spmm_out, &sched);
  o.acc_out = random_dense<double>(in.a.rows(), in.h.cols(), 157);
  spmm_accumulate(in.a, in.h, o.acc_out, &sched);
  aggregate(in.a, in.h, Aggregation::kMin, o.agg_min, &sched);
  aggregate(in.a, in.h, Aggregation::kMax, o.agg_max, &sched);
  aggregate(in.a, in.h, Aggregation::kMean, o.agg_mean, &sched);
  sddmm(in.a, in.h, in.h, o.sddmm_out, &sched);
  sddmm_unweighted(in.a, in.h, in.h, o.sddmm_unw, &sched);
  scale_rows_cols<double>(in.a, in.row_scale, in.col_scale, o.scaled,
                         &sched);
  sparse_row_sums(in.a, o.row_sums, &sched);
  // The softmax pair runs on the SDDMM scores (pattern of `a`, so the same
  // schedule applies), backward on a perturbed upstream gradient.
  row_softmax(o.sddmm_out, o.softmax, &sched);
  {
    auto ds = o.softmax;
    auto v = ds.vals_mutable();
    Rng rng(163);
    for (auto& x : v) x = rng.next_uniform(-1, 1);
    row_softmax_backward(o.softmax, ds, o.softmax_dx, &sched);
  }
  psi_va(in.a, in.h, o.va, &sched);
  psi_agnn(in.a, in.h, o.agnn, &sched);
  psi_gat<double>(in.a, in.s1, in.s2, slope, o.gat_scores, o.gat_psi, &sched);
  fused_va_aggregate(in.a, in.h, in.x, o.fused_va, &sched);
  fused_gat_aggregate<double>(in.a, in.s1, in.s2, slope, in.x, o.fused_gat,
                              &sched);
  return o;
}

class ScheduleEquivalence
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(ScheduleEquivalence, AllKernelsMatchSequentialReference) {
  const auto policy = static_cast<SchedulePolicy>(std::get<0>(GetParam()));
  const int threads = std::get<1>(GetParam());
  const auto in = make_inputs(std::get<2>(GetParam()));

  SweepOutputs ref;
  {
    ScopedThreads one(1);
    const auto row =
        KernelSchedule::build(in.a.row_ptr(), SchedulePolicy::kRowParallel,
                              kEqGrain);
    ref = run_all_kernels(in, row);
  }

  ScopedThreads team(threads);
  const auto sched = KernelSchedule::build(in.a.row_ptr(), policy, kEqGrain);
  const auto got = run_all_kernels(in, sched);

  expect_dense_close(got.spmm_out, ref.spmm_out, "spmm");
  expect_dense_close(got.acc_out, ref.acc_out, "spmm_accumulate");
  expect_dense_close(got.agg_min, ref.agg_min, "aggregate(min)");
  expect_dense_close(got.agg_max, ref.agg_max, "aggregate(max)");
  expect_dense_close(got.agg_mean, ref.agg_mean, "aggregate(mean)");
  expect_sparse_close(got.sddmm_out, ref.sddmm_out, "sddmm");
  expect_sparse_close(got.sddmm_unw, ref.sddmm_unw, "sddmm_unweighted");
  expect_sparse_close(got.scaled, ref.scaled, "scale_rows_cols");
  expect_vec_close(got.row_sums, ref.row_sums, "sparse_row_sums");
  expect_sparse_close(got.softmax, ref.softmax, "row_softmax");
  expect_sparse_close(got.softmax_dx, ref.softmax_dx, "row_softmax_backward");
  expect_sparse_close(got.va, ref.va, "psi_va");
  expect_sparse_close(got.agnn, ref.agnn, "psi_agnn");
  expect_sparse_close(got.gat_scores, ref.gat_scores, "psi_gat scores");
  expect_sparse_close(got.gat_psi, ref.gat_psi, "psi_gat psi");
  expect_dense_close(got.fused_va, ref.fused_va, "fused_va_aggregate");
  expect_dense_close(got.fused_gat, ref.fused_gat, "fused_gat_aggregate");
}

// The chunk decomposition depends only on (row_ptr, policy, grain) — never
// on the team size — and partials fold in fixed piece order, so the outputs
// are bitwise identical run to run AND across thread counts.
TEST_P(ScheduleEquivalence, BitwiseReproducibleAcrossRunsAndThreadCounts) {
  const auto policy = static_cast<SchedulePolicy>(std::get<0>(GetParam()));
  const int threads = std::get<1>(GetParam());
  const auto in = make_inputs(std::get<2>(GetParam()));
  const auto sched = KernelSchedule::build(in.a.row_ptr(), policy, kEqGrain);

  DenseMatrix<double> base_spmm, base_gat;
  {
    ScopedThreads team(threads);
    spmm(in.a, in.h, base_spmm, &sched);
    fused_gat_aggregate<double>(in.a, in.s1, in.s2, 0.2, in.x, base_gat,
                                &sched);
    // Same team size, repeated run.
    DenseMatrix<double> again_spmm, again_gat;
    spmm(in.a, in.h, again_spmm, &sched);
    fused_gat_aggregate<double>(in.a, in.s1, in.s2, 0.2, in.x, again_gat,
                                &sched);
    EXPECT_TRUE(dense_bits_equal(base_spmm, again_spmm))
        << "spmm must be bitwise stable across repeated runs";
    EXPECT_TRUE(dense_bits_equal(base_gat, again_gat))
        << "fused_gat_aggregate must be bitwise stable across repeated runs";
  }
  {
    // Different team size, same schedule.
    ScopedThreads one(1);
    DenseMatrix<double> serial_spmm, serial_gat;
    spmm(in.a, in.h, serial_spmm, &sched);
    fused_gat_aggregate<double>(in.a, in.s1, in.s2, 0.2, in.x, serial_gat,
                                &sched);
    EXPECT_TRUE(dense_bits_equal(base_spmm, serial_spmm))
        << "spmm must be bitwise identical across thread counts";
    EXPECT_TRUE(dense_bits_equal(base_gat, serial_gat))
        << "fused_gat_aggregate must be bitwise identical across thread counts";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ScheduleEquivalence,
    ::testing::Combine(
        ::testing::Values(static_cast<int>(SchedulePolicy::kRowParallel),
                          static_cast<int>(SchedulePolicy::kEdgeBalanced),
                          static_cast<int>(SchedulePolicy::kHybridBinned)),
        ::testing::Values(1, 2, 4),
        ::testing::Range(0, static_cast<int>(kFamilyCount))),
    [](const ::testing::TestParamInfo<std::tuple<int, int, int>>& pi) {
      return std::string(to_string(
                 static_cast<SchedulePolicy>(std::get<0>(pi.param)))) +
             "_t" + std::to_string(std::get<1>(pi.param)) + "_" +
             family_name(std::get<2>(pi.param));
    });

// Kernels picked up through the env knobs (no explicit schedule argument)
// must agree with the row-parallel defaults too — this is the path the
// training engines and the golden suite exercise.
TEST(ScheduleEnvOverride, KernelsMatchUnderEnvSelectedPolicies) {
  const auto in = make_inputs(kFamilyKronHub);
  DenseMatrix<double> ref;
  {
    ScopedEnv pol("AGNN_SCHEDULE", "row");
    ScopedEnv grain("AGNN_SCHEDULE_GRAIN", nullptr);
    fused_gat_aggregate<double>(in.a, in.s1, in.s2, 0.2, in.x, ref);
  }
  for (const char* policy : {"edge", "hybrid"}) {
    ScopedEnv pol("AGNN_SCHEDULE", policy);
    ScopedEnv grain("AGNN_SCHEDULE_GRAIN", "8");
    DenseMatrix<double> got;
    fused_gat_aggregate<double>(in.a, in.s1, in.s2, 0.2, in.x, got);
    expect_dense_close(got, ref, policy);
  }
}

// ---- 7. steady-state allocation audit --------------------------------------
// After one warm-up pass (schedule built and cached, thread-local arenas at
// their high-water mark, outputs at capacity), repeated invocations of the
// chunked kernels must not allocate at all.
TEST(ScheduleSteadyState, ChunkedKernelsAllocateNothing) {
  const auto in = make_inputs(kFamilyStar);
  const auto sched = schedule_for(in.a, SchedulePolicy::kHybridBinned, 8);
  DenseMatrix<double> spmm_out, gat_out;
  CsrMatrix<double> soft = in.a;
  std::vector<double> sums;
  auto run_once = [&] {
    spmm(in.a, in.h, spmm_out, sched.get());
    fused_gat_aggregate<double>(in.a, in.s1, in.s2, 0.2, in.x, gat_out,
                                sched.get());
    row_softmax_inplace(soft, sched.get());
    sparse_row_sums(in.a, sums, sched.get());
  };
  run_once();
  run_once();  // arenas and outputs at their high-water mark
  const std::uint64_t before = g_news.load(std::memory_order_relaxed);
  for (int rep = 0; rep < 5; ++rep) run_once();
  const std::uint64_t after = g_news.load(std::memory_order_relaxed);
  EXPECT_EQ(after, before)
      << "steady-state chunked kernels performed " << (after - before)
      << " allocations";
}

// The reorder path rides the same audit: validate_permutation used to build
// an n-element vector<bool> per permute_* call; it now stamps an epoch into
// a thread_local high-water buffer, so repeated permutes within capacity
// must allocate nothing.
TEST(ScheduleSteadyState, PermutationValidationAllocatesNothing) {
  const index_t n = 96;
  const auto x = random_dense<double>(n, 7, 167);
  const auto perm = graph::random_permutation(n, 173);
  std::vector<double> v(static_cast<std::size_t>(n), 1.5), vout;
  DenseMatrix<double> out;
  auto run_once = [&] {
    graph::validate_permutation(perm, n);
    graph::permute_rows(x, perm, out);
    graph::permute_vector(v, perm, vout);
  };
  run_once();
  run_once();  // stamp buffer and outputs at their high-water mark
  const std::uint64_t before = g_news.load(std::memory_order_relaxed);
  for (int rep = 0; rep < 8; ++rep) run_once();
  const std::uint64_t after = g_news.load(std::memory_order_relaxed);
  EXPECT_EQ(after, before)
      << "steady-state permutation validation performed " << (after - before)
      << " allocations";
}

}  // namespace
}  // namespace agnn
