// The machine-readable bench layer: JSON parser, report write→parse
// round-trip, and the perf-gate comparison policy (the same code path
// bench_compare and the CI gate run).
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "core/json.hpp"
#include "obs/bench_report.hpp"
#include "obs/metrics.hpp"

namespace agnn {
namespace {

// ---- core/json.hpp --------------------------------------------------------

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(json::parse("null").is_null());
  EXPECT_TRUE(json::parse("true").as_bool());
  EXPECT_FALSE(json::parse("false").as_bool());
  EXPECT_DOUBLE_EQ(json::parse("42").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(json::parse("-3.5e2").as_number(), -350.0);
  EXPECT_EQ(json::parse("\"hi\"").as_string(), "hi");
}

TEST(Json, ParsesNestedStructure) {
  const json::Value v = json::parse(
      R"({"a": [1, 2, {"b": true}], "c": {"d": null}, "e": "x"})");
  const json::Array& a = v.at("a").as_array();
  ASSERT_EQ(a.size(), 3u);
  EXPECT_DOUBLE_EQ(a[0].as_number(), 1.0);
  EXPECT_TRUE(a[2].at("b").as_bool());
  EXPECT_TRUE(v.at("c").at("d").is_null());
  EXPECT_EQ(v.at("e").as_string(), "x");
  EXPECT_EQ(v.get("zzz"), nullptr);
  EXPECT_THROW(v.at("zzz"), std::runtime_error);
}

TEST(Json, StringEscapes) {
  const json::Value v =
      json::parse(R"("line\nquote\"back\\slash\ttab\u0041\u00e9")");
  EXPECT_EQ(v.as_string(), "line\nquote\"back\\slash\ttabA\xc3\xa9");
}

TEST(Json, EscapeWriterRoundTrips) {
  std::ostringstream os;
  json::escape(os, "a\"b\\c\nd\te\x01f");
  const json::Value v = json::parse(os.str());
  EXPECT_EQ(v.as_string(), "a\"b\\c\nd\te\x01f");
}

TEST(Json, MalformedInputThrows) {
  EXPECT_THROW(json::parse(""), std::runtime_error);
  EXPECT_THROW(json::parse("{"), std::runtime_error);
  EXPECT_THROW(json::parse("[1, 2"), std::runtime_error);
  EXPECT_THROW(json::parse("{\"a\": }"), std::runtime_error);
  EXPECT_THROW(json::parse("{\"a\": 1,}"), std::runtime_error);  // trailing ,
  EXPECT_THROW(json::parse("\"unterminated"), std::runtime_error);
  EXPECT_THROW(json::parse("tru"), std::runtime_error);
  EXPECT_THROW(json::parse("1 2"), std::runtime_error);  // trailing content
  EXPECT_THROW(json::parse("\"\\ud800\""), std::runtime_error);  // surrogate
}

TEST(Json, TypeMismatchThrows) {
  const json::Value v = json::parse("42");
  EXPECT_THROW(v.as_string(), std::runtime_error);
  EXPECT_THROW(v.as_array(), std::runtime_error);
  EXPECT_THROW(v.as_object(), std::runtime_error);
}

// ---- report write → parse round-trip --------------------------------------

namespace bench = obs::bench;

bench::BenchReport sample_report() {
  bench::BenchReport r;
  r.context.git_sha = "abc123def456";
  r.context.compiler = "g++ \"quoted\" 12.2";
  r.context.cxx_flags = "-O3 -DNDEBUG";
  r.context.cpu_model = "Test CPU @ 3.0GHz";
  r.context.hardware_threads = 16;
  r.context.omp_threads = 8;
  r.context.perf_available = true;
  bench::BenchEntry e;
  e.name = "Spmm/1024/16";
  e.samples_ns = {1500.0, 1200.0, 1800.0, 1100.0, 1300.0};
  bench::finalize(e);
  e.counters["p99_ns"] = 1790.0;
  e.counters["GBps"] = 12.5;
  r.benchmarks.push_back(e);
  return r;
}

TEST(BenchReport, FinalizeComputesStats) {
  bench::BenchEntry e;
  e.samples_ns = {5.0, 1.0, 3.0, 2.0, 4.0};
  bench::finalize(e);
  EXPECT_EQ(e.repetitions, 5);
  EXPECT_DOUBLE_EQ(e.median_ns, 3.0);
  EXPECT_DOUBLE_EQ(e.min_ns, 1.0);
  bench::BenchEntry even;
  even.samples_ns = {4.0, 1.0, 3.0, 2.0};
  bench::finalize(even);
  EXPECT_DOUBLE_EQ(even.median_ns, 2.5);
}

TEST(BenchReport, WriteParseRoundTrip) {
  const bench::BenchReport r = sample_report();
  std::ostringstream os;
  bench::write_json(os, r);
  const bench::BenchReport back = bench::parse_report(os.str());
  EXPECT_EQ(back.schema_version, bench::kSchemaVersion);
  EXPECT_EQ(back.context.git_sha, r.context.git_sha);
  EXPECT_EQ(back.context.compiler, r.context.compiler);
  EXPECT_EQ(back.context.cpu_model, r.context.cpu_model);
  EXPECT_EQ(back.context.hardware_threads, 16);
  EXPECT_EQ(back.context.omp_threads, 8);
  EXPECT_TRUE(back.context.perf_available);
  ASSERT_EQ(back.benchmarks.size(), 1u);
  const bench::BenchEntry& e = back.benchmarks[0];
  EXPECT_EQ(e.name, "Spmm/1024/16");
  EXPECT_EQ(e.repetitions, 5);
  ASSERT_EQ(e.samples_ns.size(), 5u);
  EXPECT_DOUBLE_EQ(e.median_ns, 1300.0);
  EXPECT_DOUBLE_EQ(e.min_ns, 1100.0);
  EXPECT_DOUBLE_EQ(e.counters.at("p99_ns"), 1790.0);
  EXPECT_DOUBLE_EQ(e.counters.at("GBps"), 12.5);
}

TEST(BenchReport, SchemaVersionMismatchThrows) {
  std::ostringstream os;
  bench::write_json(os, sample_report());
  std::string text = os.str();
  const auto pos = text.find("\"schema_version\": 1");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 19, "\"schema_version\": 9");
  EXPECT_THROW(bench::parse_report(text), std::runtime_error);
}

TEST(BenchReport, TruncatedReportThrows) {
  std::ostringstream os;
  bench::write_json(os, sample_report());
  const std::string text = os.str();
  EXPECT_THROW(bench::parse_report(text.substr(0, text.size() / 2)),
               std::runtime_error);
}

TEST(BenchReport, HistogramsSnapshotRoundTrips) {
  obs::MetricsRegistry reg;
  for (int i = 1; i <= 100; ++i) {
    reg.observe("kernel.test.ns", static_cast<std::uint64_t>(i) * 1000);
  }
  reg.counter("some.counter").add(7);  // non-histograms must be excluded
  const std::string snap = bench::histograms_snapshot_json(reg);
  ASSERT_FALSE(snap.empty());
  const json::Value v = json::parse(snap);
  ASSERT_EQ(v.as_object().size(), 1u);
  const json::Value& h = v.at("kernel.test.ns");
  EXPECT_EQ(h.at("count").as_u64(), 100u);
  EXPECT_EQ(h.at("min").as_u64(), 1000u);
  EXPECT_EQ(h.at("max").as_u64(), 100000u);
  EXPECT_GE(h.at("p99").as_u64(), 99000u);

  // And it embeds verbatim into a full report.
  bench::BenchReport r = sample_report();
  r.histograms_json = snap;
  std::ostringstream os;
  bench::write_json(os, r);
  const json::Value doc = json::parse(os.str());
  EXPECT_EQ(doc.at("histograms").at("kernel.test.ns").at("count").as_u64(),
            100u);
}

TEST(BenchReport, EmptyRegistrySnapshotIsEmpty) {
  obs::MetricsRegistry reg;
  reg.counter("only.a.counter").add(1);
  EXPECT_TRUE(bench::histograms_snapshot_json(reg).empty());
}

// ---- compare(): the gate policy -------------------------------------------

bench::BenchReport report_with(const std::string& name, double base_ns) {
  bench::BenchReport r;
  bench::BenchEntry e;
  e.name = name;
  e.samples_ns = {base_ns * 1.1, base_ns, base_ns * 1.05};
  bench::finalize(e);
  r.benchmarks.push_back(e);
  return r;
}

TEST(BenchCompare, SelfCompareIsClean) {
  const bench::BenchReport r = report_with("K/1", 1e6);
  const bench::CompareResult res = bench::compare(r, r);
  EXPECT_TRUE(res.ok());
  ASSERT_EQ(res.rows.size(), 1u);
  EXPECT_FALSE(res.rows[0].regressed);
  EXPECT_DOUBLE_EQ(res.rows[0].median_ratio, 1.0);
}

TEST(BenchCompare, TwoXSlowdownRegresses) {
  const bench::BenchReport base = report_with("K/1", 1e6);
  const bench::BenchReport slow = report_with("K/1", 2e6);
  const bench::CompareResult res = bench::compare(base, slow);
  EXPECT_FALSE(res.ok());
  EXPECT_EQ(res.regressions, 1);
  EXPECT_TRUE(res.rows[0].regressed);
  EXPECT_NEAR(res.rows[0].median_ratio, 2.0, 1e-9);
}

TEST(BenchCompare, WithinToleranceIsClean) {
  const bench::BenchReport base = report_with("K/1", 1e6);
  const bench::BenchReport cur = report_with("K/1", 1.25e6);  // < 1.30x
  EXPECT_TRUE(bench::compare(base, cur).ok());
}

TEST(BenchCompare, SubFloorDeltaNeverRegresses) {
  // 3x slower but only 200 ns absolute: under the 1000 ns floor.
  const bench::BenchReport base = report_with("Tiny/1", 100.0);
  const bench::BenchReport slow = report_with("Tiny/1", 300.0);
  EXPECT_TRUE(bench::compare(base, slow).ok());
}

TEST(BenchCompare, MedianSpikeAloneIsNoise) {
  // Median doubled but the min held: the scheduler-hiccup signature the
  // two-statistic AND rule exists to absorb.
  bench::BenchReport base;
  bench::BenchEntry b;
  b.name = "K/1";
  b.samples_ns = {1e6, 1e6, 1e6};
  bench::finalize(b);
  base.benchmarks.push_back(b);
  bench::BenchReport cur;
  bench::BenchEntry c;
  c.name = "K/1";
  c.samples_ns = {2e6, 2e6, 1.02e6};  // min barely moved
  bench::finalize(c);
  cur.benchmarks.push_back(c);
  const bench::CompareResult res = bench::compare(base, cur);
  EXPECT_TRUE(res.ok());
  EXPECT_FALSE(res.rows[0].regressed);
}

TEST(BenchCompare, MissingAndAddedAreReportedNotFailed) {
  bench::BenchReport base = report_with("Old/1", 1e6);
  bench::BenchReport cur = report_with("New/1", 1e6);
  const bench::CompareResult res = bench::compare(base, cur);
  EXPECT_TRUE(res.ok());
  ASSERT_EQ(res.missing.size(), 1u);
  EXPECT_EQ(res.missing[0], "Old/1");
  ASSERT_EQ(res.added.size(), 1u);
  EXPECT_EQ(res.added[0], "New/1");
  EXPECT_TRUE(res.rows.empty());
}

TEST(BenchCompare, CustomToleranceApplies) {
  const bench::BenchReport base = report_with("K/1", 1e6);
  const bench::BenchReport cur = report_with("K/1", 3e6);
  bench::CompareOptions loose;
  loose.tolerance = 4.0;
  EXPECT_TRUE(bench::compare(base, cur, loose).ok());
  bench::CompareOptions strict;
  strict.tolerance = 1.1;
  EXPECT_FALSE(bench::compare(base, cur, strict).ok());
}

TEST(BenchCompare, PrintSummarizesVerdict) {
  const bench::BenchReport base = report_with("K/1", 1e6);
  const bench::BenchReport slow = report_with("K/1", 2e6);
  const bench::CompareResult res = bench::compare(base, slow);
  std::ostringstream os;
  bench::print_compare(os, res, {});
  const std::string text = os.str();
  EXPECT_NE(text.find("REGRESSED K/1"), std::string::npos);
  EXPECT_NE(text.find("FAIL: 1 regression(s)"), std::string::npos);
}

}  // namespace
}  // namespace agnn
