// Tests for the Kronecker (Graph500-style, dataset B0) and Erdős–Rényi
// (dataset B2) generators plus the build pipeline's degree properties.
#include <gtest/gtest.h>

#include <cmath>

#include "graph/erdos_renyi.hpp"
#include "graph/graph.hpp"
#include "graph/kronecker.hpp"
#include "test_utils.hpp"

namespace agnn::graph {
namespace {

TEST(Kronecker, VertexCountIsPowerOfTwo) {
  const auto el = generate_kronecker({.scale = 8, .edges = 1000, .seed = 1});
  EXPECT_EQ(el.n, 256);
  EXPECT_EQ(el.size(), 1000);
}

TEST(Kronecker, AllEndpointsInRange) {
  const auto el = generate_kronecker({.scale = 10, .edges = 5000, .seed = 2});
  for (index_t e = 0; e < el.size(); ++e) {
    EXPECT_GE(el.src[static_cast<std::size_t>(e)], 0);
    EXPECT_LT(el.src[static_cast<std::size_t>(e)], el.n);
    EXPECT_GE(el.dst[static_cast<std::size_t>(e)], 0);
    EXPECT_LT(el.dst[static_cast<std::size_t>(e)], el.n);
  }
}

TEST(Kronecker, DeterministicForFixedSeed) {
  const auto a = generate_kronecker({.scale = 9, .edges = 2000, .seed = 7});
  const auto b = generate_kronecker({.scale = 9, .edges = 2000, .seed = 7});
  EXPECT_EQ(a.src, b.src);
  EXPECT_EQ(a.dst, b.dst);
  const auto c = generate_kronecker({.scale = 9, .edges = 2000, .seed = 8});
  EXPECT_NE(a.src, c.src);
}

TEST(Kronecker, HeavyTailDegreeDistribution) {
  // The Kronecker model concentrates edges on low-id vertices: the maximum
  // degree must far exceed the average degree (load imbalance is exactly
  // why the paper uses these graphs).
  const auto el = generate_kronecker({.scale = 10, .edges = 20000, .seed = 3});
  const auto g = build_graph<double>(el);
  const double avg = static_cast<double>(g.num_edges()) /
                     static_cast<double>(g.num_vertices());
  EXPECT_GT(static_cast<double>(g.max_degree()), 5.0 * avg);
}

TEST(Kronecker, InvalidScaleThrows) {
  EXPECT_THROW(generate_kronecker({.scale = 0, .edges = 10}), std::logic_error);
  EXPECT_THROW(generate_kronecker({.scale = 64, .edges = 10}), std::logic_error);
}

TEST(ErdosRenyi, EdgeCountNearExpectation) {
  const index_t n = 512;
  const double q = 0.02;
  const auto el = generate_erdos_renyi({.n = n, .q = q, .seed = 11});
  const double expected = q * static_cast<double>(n) * static_cast<double>(n);
  // Binomial std dev ~ sqrt(N q); allow 6 sigma.
  const double sigma = std::sqrt(expected * (1 - q));
  EXPECT_NEAR(static_cast<double>(el.size()), expected, 6.0 * sigma + n);
}

TEST(ErdosRenyi, NoSelfLoopsByDefault) {
  const auto el = generate_erdos_renyi({.n = 128, .q = 0.1, .seed = 13});
  for (index_t e = 0; e < el.size(); ++e) {
    EXPECT_NE(el.src[static_cast<std::size_t>(e)], el.dst[static_cast<std::size_t>(e)]);
  }
}

TEST(ErdosRenyi, EdgesAreSortedAndUnique) {
  // Geometric skipping emits strictly increasing linear indices, so the raw
  // edge list is duplicate-free by construction.
  const auto el = generate_erdos_renyi({.n = 200, .q = 0.05, .seed = 17});
  for (index_t e = 1; e < el.size(); ++e) {
    const auto prev = el.src[static_cast<std::size_t>(e - 1)] * 200 +
                      el.dst[static_cast<std::size_t>(e - 1)];
    const auto cur = el.src[static_cast<std::size_t>(e)] * 200 +
                     el.dst[static_cast<std::size_t>(e)];
    EXPECT_LT(prev, cur);
  }
}

TEST(ErdosRenyi, UniformDegreesAreBalanced) {
  // Unlike Kronecker, Rand graphs have max degree close to average — the
  // property Section 8.4 relies on for its load-balance argument.
  const auto el = generate_erdos_renyi({.n = 1024, .q = 0.05, .seed = 19});
  const auto g = build_graph<double>(el);
  const double avg = static_cast<double>(g.num_edges()) /
                     static_cast<double>(g.num_vertices());
  EXPECT_LT(static_cast<double>(g.max_degree()), 2.0 * avg);
}

TEST(ErdosRenyi, TargetEdgeCountHelper) {
  const auto el = generate_erdos_renyi_m(256, 4000, 23);
  EXPECT_NEAR(static_cast<double>(el.size()), 4000.0, 600.0);
}

TEST(ErdosRenyi, InvalidParamsThrow) {
  EXPECT_THROW(generate_erdos_renyi({.n = 0, .q = 0.1}), std::logic_error);
  EXPECT_THROW(generate_erdos_renyi({.n = 10, .q = 0.0}), std::logic_error);
  EXPECT_THROW(generate_erdos_renyi({.n = 10, .q = 1.5}), std::logic_error);
}

TEST(ErdosRenyi, DensityMatchesRho) {
  // rho = m / n^2 is the density definition used throughout the evaluation.
  const index_t n = 1000;
  const auto el = generate_erdos_renyi({.n = n, .q = 0.01, .seed = 29});
  BuildOptions opt;
  opt.symmetrize = false;
  opt.fix_isolated = false;
  const auto g = build_graph<double>(el, opt);
  EXPECT_NEAR(g.density(), 0.01, 0.002);
}

}  // namespace
}  // namespace agnn::graph
