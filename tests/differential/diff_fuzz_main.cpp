// diff_fuzz: the differential-fuzzing driver.
//
// Runs seeded adversarial scenarios through the check battery and reports
// every divergence with a one-line replay command. Seeds are consecutive
// from --start-seed, so a CI run is fully described by (suite, start, count)
// and any failure reproduces with `diff_fuzz --suite <s> --seed <N>`.
//
//   diff_fuzz                                   # default budgets, all suites
//   diff_fuzz --suite kernels --count 500       # bigger kernel sweep
//   diff_fuzz --suite engines --seed 1234       # replay one engine scenario
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "differential/checks.hpp"

namespace {

using agnn::diffuzz::Failures;
using agnn::diffuzz::Purpose;
using agnn::diffuzz::Scenario;

struct SuiteSpec {
  const char* name;
  Purpose purpose;
  void (*check)(const Scenario&, Failures&);
  std::uint64_t default_count;
};

constexpr SuiteSpec kSuites[] = {
    {"kernels", Purpose::kKernels, agnn::diffuzz::check_kernels, 200},
    {"outparam", Purpose::kKernels, agnn::diffuzz::check_outparam, 200},
    {"schedule", Purpose::kKernels, agnn::diffuzz::check_schedule, 200},
    {"formats", Purpose::kKernels, agnn::diffuzz::check_formats, 200},
    {"tune", Purpose::kKernels, agnn::diffuzz::check_tune, 100},
    {"engines", Purpose::kEngines, agnn::diffuzz::check_engines, 40},
    {"faults", Purpose::kEngines, agnn::diffuzz::check_fault_recovery, 15},
    {"serving", Purpose::kEngines, agnn::diffuzz::check_serving, 60},
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--suite kernels|outparam|schedule|formats|tune|engines|faults|serving|all] [--seed N]\n"
               "          [--count N] [--start-seed N] [--verbose]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string suite = "all";
  std::uint64_t start_seed = 1;
  std::uint64_t count = 0;        // 0 = per-suite default
  std::uint64_t single_seed = 0;
  bool have_single_seed = false;
  bool verbose = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--suite") {
      suite = next();
    } else if (arg == "--seed") {
      single_seed = std::strtoull(next(), nullptr, 10);
      have_single_seed = true;
    } else if (arg == "--count") {
      count = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--start-seed") {
      start_seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--verbose" || arg == "-v") {
      verbose = true;
    } else if (arg == "--help" || arg == "-h") {
      return usage(argv[0]);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return usage(argv[0]);
    }
  }

  bool suite_matched = false;
  std::uint64_t total_failures = 0;
  for (const auto& spec : kSuites) {
    if (suite != "all" && suite != spec.name) continue;
    suite_matched = true;

    const std::uint64_t n = have_single_seed ? 1 : (count > 0 ? count : spec.default_count);
    const std::uint64_t first = have_single_seed ? single_seed : start_seed;
    std::uint64_t suite_failures = 0;
    for (std::uint64_t s = 0; s < n; ++s) {
      const std::uint64_t seed = first + s;
      const Scenario sc = agnn::diffuzz::make_scenario(seed, spec.purpose);
      if (verbose || have_single_seed) {
        std::printf("suite=%s seed=%llu %s\n", spec.name,
                    static_cast<unsigned long long>(seed), sc.describe().c_str());
      }
      Failures failures;
      spec.check(sc, failures);
      for (const auto& f : failures) {
        std::printf("DIVERGENCE suite=%s seed=%llu [%s] check=%s: %s\n",
                    spec.name, static_cast<unsigned long long>(seed),
                    sc.describe().c_str(), f.check.c_str(), f.detail.c_str());
        std::printf("  replay: diff_fuzz --suite %s --seed %llu\n", spec.name,
                    static_cast<unsigned long long>(seed));
      }
      suite_failures += failures.size();
    }
    std::printf("suite %-8s: %llu seeds, %llu divergence%s\n", spec.name,
                static_cast<unsigned long long>(n),
                static_cast<unsigned long long>(suite_failures),
                suite_failures == 1 ? "" : "s");
    total_failures += suite_failures;
  }

  if (!suite_matched) {
    std::fprintf(stderr, "unknown suite: %s\n", suite.c_str());
    return usage(argv[0]);
  }
  return total_failures == 0 ? 0 : 1;
}
