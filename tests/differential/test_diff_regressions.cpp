// Named regressions pinned from differential-harness findings, plus a
// fast replay of the leading fuzz seeds so a broken generator or check is
// caught by the unit suite even when the big-budget diff_fuzz ctest entries
// are skipped.
//
// Convention: every divergence diff_fuzz finds gets a named TEST here (or in
// the relevant kernel suite) that reconstructs the scenario directly, so the
// bug stays covered even if the seed-to-scenario mapping changes later.
#include <gtest/gtest.h>

#include "differential/checks.hpp"

namespace agnn {
namespace {

using diffuzz::Failures;
using diffuzz::Purpose;

// A small ring graph: every vertex has neighbors.
CsrMatrix<double> ring_graph(index_t n) {
  CooMatrix<double> coo;
  coo.n_rows = coo.n_cols = n;
  for (index_t i = 0; i < n; ++i) {
    coo.push_back(i, (i + 1) % n, 1.0);
    coo.push_back((i + 1) % n, i, 1.0);
  }
  return CsrMatrix<double>::from_coo(coo);
}

std::string render(const Failures& f) {
  std::string s;
  for (const auto& x : f) s += x.check + ": " + x.detail + "\n";
  return s;
}

TEST(DiffRegression, LeadingKernelSeedsReplayClean) {
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    const auto sc = diffuzz::make_scenario(seed, Purpose::kKernels);
    Failures failures;
    diffuzz::check_kernels(sc, failures);
    EXPECT_TRUE(failures.empty())
        << "seed " << seed << " [" << sc.describe() << "]\n" << render(failures);
  }
}

TEST(DiffRegression, LeadingOutparamSeedsReplayClean) {
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    const auto sc = diffuzz::make_scenario(seed, Purpose::kKernels);
    Failures failures;
    diffuzz::check_outparam(sc, failures);
    EXPECT_TRUE(failures.empty())
        << "seed " << seed << " [" << sc.describe() << "]\n" << render(failures);
  }
}

TEST(DiffRegression, LeadingEngineSeedsReplayClean) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto sc = diffuzz::make_scenario(seed, Purpose::kEngines);
    Failures failures;
    diffuzz::check_engines(sc, failures);
    EXPECT_TRUE(failures.empty())
        << "seed " << seed << " [" << sc.describe() << "]\n" << render(failures);
  }
}

TEST(DiffRegression, LeadingFaultSeedsReplayClean) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto sc = diffuzz::make_scenario(seed, Purpose::kEngines);
    Failures failures;
    diffuzz::check_fault_recovery(sc, failures);
    EXPECT_TRUE(failures.empty())
        << "seed " << seed << " [" << sc.describe() << "]\n" << render(failures);
  }
}

// Pinned from the harness's subnormal-scale regime: features around 1e-160
// make every norm *product* underflow below the smallest normal double while
// the norms themselves stay normal. The old eps-clamp in psi_agnn
// (max(n_i*n_j, DBL_MIN)) then divided by DBL_MIN instead of the true
// subnormal product, flattening cosines of ~1 down to ~5e-13.
TEST(DiffRegression, AgnnSubnormalNormProductKeepsCosine) {
  const index_t n = 6, k = 4;
  // Single shared nonzero column: every pair of rows has cosine exactly 1.
  DenseMatrix<double> h(n, k, 0.0);
  for (index_t i = 0; i < n; ++i) h(i, 0) = 1e-160;
  const auto a = ring_graph(n);
  const auto psi = psi_agnn(a, h);
  const auto ref = reference::psi_agnn_unfused(a, h);
  for (index_t e = 0; e < psi.nnz(); ++e) {
    // Fused and unfused divide the same subnormal operands: bitwise equal.
    EXPECT_EQ(psi.val_at(e), ref.val_at(e)) << "edge " << e;
    // And the cosine survives (subnormal division is imprecise, but nowhere
    // near the ~1e-13 the clamp used to produce).
    EXPECT_NEAR(psi.val_at(e), 1.0, 0.05) << "edge " << e;
  }
}

}  // namespace
}  // namespace agnn
