// The differential check battery.
//
// Three suites, each a pure function of a Scenario (and hence of a seed):
//
//   kernels  — every fused kernel in src/tensor/fused.hpp against its
//              O(n^2) reference_impls.hpp counterpart, plus the sparse
//              softmax/reduction kernels against serial oracles.
//   outparam — every out-parameter overload against its by-value form,
//              bitwise, with the out-buffer pre-dirtied (NaN sentinel,
//              wrong shape) to exercise the storage-reuse path.
//   engines  — each distributed engine (dist_engine, dist_1d_engine,
//              dist_multihead, dist_local_engine) against the sequential
//              model / local_engine on forward, and a short training run
//              (which drives backward) comparing losses and final weights.
//
// Checks never assert: they append Failure records, so the fuzz driver can
// report every divergence for a seed and keep going.
#pragma once

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "baseline/dist_local_engine.hpp"
#include "baseline/local_engine.hpp"
#include "tensor/bcsr_matrix.hpp"
#include "tensor/blocked_ops.hpp"
#include "tensor/format.hpp"
#include "tensor/sell_matrix.hpp"
#include "comm/communicator.hpp"
#include "comm/fault_injection.hpp"
#include "core/model.hpp"
#include "core/multihead_gat.hpp"
#include "differential/adversarial.hpp"
#include "dist/dist_1d_engine.hpp"
#include "dist/dist_engine.hpp"
#include "dist/dist_multihead.hpp"
#include "dist/engine_factory.hpp"
#include "dist/recovery.hpp"
#include "graph/graph.hpp"
#include "serve/batch_forward.hpp"
#include "tensor/autotune.hpp"
#include "tensor/fused.hpp"
#include "tensor/tuning_cache.hpp"
#include "tensor/reference_impls.hpp"
#include "tensor/schedule.hpp"
#include "tensor/sparse_ops.hpp"
#include "tensor/spmm.hpp"

namespace agnn::diffuzz {

struct Failure {
  std::string check;
  std::string detail;
};
using Failures = std::vector<Failure>;

// Mixed absolute/relative comparison. NaN anywhere is always a divergence —
// the harness doubles as a NaN-regression hunter.
inline bool near(double a, double b, double tol) {
  if (std::isnan(a) || std::isnan(b)) return false;
  const double scale = 1.0 + std::max(std::abs(a), std::abs(b));
  return std::abs(a - b) <= tol * scale;
}

inline bool bits_equal(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

inline constexpr double kTol = 1e-8;

// ---- comparison helpers (append one Failure per mismatching object) --------

inline void compare_dense(const std::string& check, const DenseMatrix<double>& got,
                          const DenseMatrix<double>& want, double tol, Failures& out) {
  if (got.rows() != want.rows() || got.cols() != want.cols()) {
    out.push_back({check, "shape " + std::to_string(got.rows()) + "x" +
                              std::to_string(got.cols()) + " vs " +
                              std::to_string(want.rows()) + "x" +
                              std::to_string(want.cols())});
    return;
  }
  for (index_t i = 0; i < got.rows(); ++i) {
    for (index_t j = 0; j < got.cols(); ++j) {
      if (!near(got(i, j), want(i, j), tol)) {
        out.push_back({check, "(" + std::to_string(i) + "," + std::to_string(j) +
                                  "): " + std::to_string(got(i, j)) + " vs " +
                                  std::to_string(want(i, j))});
        return;
      }
    }
  }
}

inline void compare_sparse(const std::string& check, const CsrMatrix<double>& got,
                           const CsrMatrix<double>& want, double tol, Failures& out) {
  if (got.rows() != want.rows() || got.cols() != want.cols() ||
      got.nnz() != want.nnz()) {
    out.push_back({check, "structure mismatch (rows/cols/nnz)"});
    return;
  }
  for (index_t i = 0; i < got.rows(); ++i) {
    if (got.row_begin(i) != want.row_begin(i)) {
      out.push_back({check, "row_ptr mismatch at row " + std::to_string(i)});
      return;
    }
    for (index_t e = got.row_begin(i); e < got.row_end(i); ++e) {
      if (got.col_at(e) != want.col_at(e)) {
        out.push_back({check, "col_idx mismatch at edge " + std::to_string(e)});
        return;
      }
      if (!near(got.val_at(e), want.val_at(e), tol)) {
        out.push_back({check, "edge (" + std::to_string(i) + "," +
                                  std::to_string(got.col_at(e)) +
                                  "): " + std::to_string(got.val_at(e)) + " vs " +
                                  std::to_string(want.val_at(e))});
        return;
      }
    }
  }
}

inline void compare_vec(const std::string& check, const std::vector<double>& got,
                        const std::vector<double>& want, double tol, Failures& out) {
  if (got.size() != want.size()) {
    out.push_back({check, "size mismatch"});
    return;
  }
  for (std::size_t i = 0; i < got.size(); ++i) {
    if (!near(got[i], want[i], tol)) {
      out.push_back({check, "[" + std::to_string(i) + "]: " + std::to_string(got[i]) +
                                " vs " + std::to_string(want[i])});
      return;
    }
  }
}

// Bitwise variants for the out-param suite.
inline void compare_dense_bits(const std::string& check, const DenseMatrix<double>& got,
                               const DenseMatrix<double>& want, Failures& out) {
  if (got.rows() != want.rows() || got.cols() != want.cols()) {
    out.push_back({check, "shape mismatch"});
    return;
  }
  for (index_t i = 0; i < got.size(); ++i) {
    if (!bits_equal(got.data()[i], want.data()[i])) {
      out.push_back({check, "bit mismatch at flat index " + std::to_string(i)});
      return;
    }
  }
}

inline void compare_sparse_bits(const std::string& check, const CsrMatrix<double>& got,
                                const CsrMatrix<double>& want, Failures& out) {
  if (got.rows() != want.rows() || got.cols() != want.cols() ||
      got.nnz() != want.nnz()) {
    out.push_back({check, "structure mismatch"});
    return;
  }
  for (index_t i = 0; i < got.rows(); ++i) {
    if (got.row_begin(i) != want.row_begin(i)) {
      out.push_back({check, "row_ptr mismatch at row " + std::to_string(i)});
      return;
    }
  }
  for (index_t e = 0; e < got.nnz(); ++e) {
    if (got.col_at(e) != want.col_at(e) ||
        !bits_equal(got.val_at(e), want.val_at(e))) {
      out.push_back({check, "bit mismatch at edge " + std::to_string(e)});
      return;
    }
  }
}

// ---- suite 1: fused kernels vs unfused references --------------------------

inline void check_kernels(const Scenario& sc, Failures& out) {
  const auto a = make_graph<double>(sc);
  const auto h = make_features<double>(sc, sc.n, sc.k, 11);
  const auto x = make_features<double>(sc, sc.n, std::max<index_t>(1, sc.k - 1), 13);
  const auto s1 = make_scores<double>(sc, sc.n, 17);
  const auto s2 = make_scores<double>(sc, sc.n, 19);
  const double slope = 0.2;

  // (1) Psi_VA = A ⊙ (H H^T).
  compare_sparse("psi_va", psi_va(a, h), reference::psi_va_unfused(a, h), kTol, out);

  // (2) Psi_AGNN = A ⊙ (H H^T ⊘ n n^T). Fused and unfused accumulate the
  // sampled dot products in the same order, so they agree even where the
  // norm products go subnormal.
  compare_sparse("psi_agnn", psi_agnn(a, h), reference::psi_agnn_unfused(a, h),
                 kTol, out);

  // (3) GAT: pre-activation scores against the rank-1 materialization, and
  // the softmax-normalized Psi against both the sparse softmax of the
  // reference scores and the dense masked-softmax oracle.
  const auto gp = psi_gat<double>(a, s1, s2, slope);
  const auto scores_ref = reference::gat_scores_unfused<double>(a, s1, s2, slope);
  {
    auto e_fused = gp.scores_pre;
    auto v = e_fused.vals_mutable();
    for (index_t e = 0; e < e_fused.nnz(); ++e) {
      const double c = v[static_cast<std::size_t>(e)];
      v[static_cast<std::size_t>(e)] = (c > 0 ? c : slope * c) * a.val_at(e);
    }
    compare_sparse("gat_scores", e_fused, scores_ref, kTol, out);
  }
  compare_sparse("gat_psi", gp.psi, row_softmax(scores_ref), kTol, out);
  {
    DenseMatrix<double> dense_scores(sc.n, sc.n, 0.0);
    for (index_t i = 0; i < sc.n; ++i) {
      for (index_t j = 0; j < sc.n; ++j) {
        const double c = s1[static_cast<std::size_t>(i)] + s2[static_cast<std::size_t>(j)];
        dense_scores(i, j) = c > 0 ? c : slope * c;
      }
    }
    const auto oracle = reference::masked_row_softmax_dense(a, dense_scores);
    bool oracle_ok = true;
    for (index_t i = 0; i < sc.n && oracle_ok; ++i) {
      for (index_t e = gp.psi.row_begin(i); e < gp.psi.row_end(i); ++e) {
        if (!near(gp.psi.val_at(e), oracle(i, gp.psi.col_at(e)), kTol)) {
          out.push_back({"gat_psi_dense_oracle",
                         "edge (" + std::to_string(i) + "," +
                             std::to_string(gp.psi.col_at(e)) + ")"});
          oracle_ok = false;
          break;
        }
      }
    }
    // Rows with edges must be stochastic; empty rows must stay empty.
    for (index_t i = 0; i < sc.n; ++i) {
      if (gp.psi.row_nnz(i) == 0) continue;
      double sum = 0;
      for (index_t e = gp.psi.row_begin(i); e < gp.psi.row_end(i); ++e) {
        sum += gp.psi.val_at(e);
      }
      if (!near(sum, 1.0, 1e-12)) {
        out.push_back({"gat_psi_stochastic", "row " + std::to_string(i) +
                                                 " sums to " + std::to_string(sum)});
        break;
      }
    }
  }

  // (4) Fused aggregates against the two-kernel pipelines.
  compare_dense("fused_va_aggregate", fused_va_aggregate(a, h, x),
                spmm(psi_va(a, h), x), kTol, out);
  compare_dense("fused_gat_aggregate",
                fused_gat_aggregate<double>(a, s1, s2, slope, x),
                spmm(gp.psi, x), kTol, out);

  // (5) Sparse reductions against serial oracles (covers the parallel
  // per-thread-partials path of sparse_col_sums).
  {
    std::vector<double> rs_ref(static_cast<std::size_t>(a.rows()), 0.0);
    std::vector<double> cs_ref(static_cast<std::size_t>(a.cols()), 0.0);
    for (index_t i = 0; i < a.rows(); ++i) {
      for (index_t e = a.row_begin(i); e < a.row_end(i); ++e) {
        rs_ref[static_cast<std::size_t>(i)] += a.val_at(e);
        cs_ref[static_cast<std::size_t>(a.col_at(e))] += a.val_at(e);
      }
    }
    compare_vec("sparse_row_sums", sparse_row_sums(a), rs_ref, kTol, out);
    compare_vec("sparse_col_sums", sparse_col_sums(a), cs_ref, kTol, out);
  }

  // (6) Softmax backward against the closed form dX = S ⊙ (dS - rowdot 1^T).
  {
    const auto s = row_softmax(scores_ref);
    auto ds = s;
    {
      Rng rng(sc.seed * 0x8cb92ba72f3d8dd7ULL + 23);
      auto v = ds.vals_mutable();
      for (index_t e = 0; e < ds.nnz(); ++e) {
        v[static_cast<std::size_t>(e)] = rng.next_uniform(-1.0, 1.0);
      }
    }
    auto want = s;
    {
      auto v = want.vals_mutable();
      for (index_t i = 0; i < s.rows(); ++i) {
        double dot = 0;
        for (index_t e = s.row_begin(i); e < s.row_end(i); ++e) {
          dot += s.val_at(e) * ds.val_at(e);
        }
        for (index_t e = s.row_begin(i); e < s.row_end(i); ++e) {
          v[static_cast<std::size_t>(e)] = s.val_at(e) * (ds.val_at(e) - dot);
        }
      }
    }
    compare_sparse("row_softmax_backward", row_softmax_backward(s, ds), want,
                   kTol, out);
  }
}

// ---- suite 2: out-param overloads bitwise vs by-value forms ----------------

inline void check_outparam(const Scenario& sc, Failures& out) {
  const auto a = make_graph<double>(sc);
  const auto h = make_features<double>(sc, sc.n, sc.k, 11);
  const auto x = make_features<double>(sc, sc.n, std::max<index_t>(1, sc.k - 1), 13);
  const auto s1 = make_scores<double>(sc, sc.n, 17);
  const auto s2 = make_scores<double>(sc, sc.n, 19);
  const double slope = 0.2;
  const double qnan = std::numeric_limits<double>::quiet_NaN();

  // Dirty buffers: a wrong-shaped NaN-filled dense matrix / a stale sparse
  // copy, so any element the out-param path fails to overwrite shows up as
  // a bit mismatch against the by-value form.
  auto dirty_dense = [&] { return DenseMatrix<double>(3, 5, qnan); };
  auto dirty_sparse = [&] {
    auto d = a;
    auto v = d.vals_mutable();
    for (index_t e = 0; e < d.nnz(); ++e) v[static_cast<std::size_t>(e)] = qnan;
    return d;
  };

  {
    auto o = dirty_sparse();
    psi_va(a, h, o);
    compare_sparse_bits("outparam_psi_va", o, psi_va(a, h), out);
  }
  {
    auto o = dirty_sparse();
    psi_agnn(a, h, o);
    compare_sparse_bits("outparam_psi_agnn", o, psi_agnn(a, h), out);
  }
  {
    GatPsi<double> o;
    o.scores_pre = dirty_sparse();
    o.psi = dirty_sparse();
    psi_gat<double>(a, s1, s2, slope, o);
    const auto w = psi_gat<double>(a, s1, s2, slope);
    compare_sparse_bits("outparam_psi_gat_scores", o.scores_pre, w.scores_pre, out);
    compare_sparse_bits("outparam_psi_gat_psi", o.psi, w.psi, out);
  }
  {
    auto o = dirty_dense();
    fused_va_aggregate(a, h, x, o);
    compare_dense_bits("outparam_fused_va_aggregate", o,
                       fused_va_aggregate(a, h, x), out);
  }
  {
    auto o = dirty_dense();
    fused_gat_aggregate<double>(a, s1, s2, slope, x, o);
    compare_dense_bits("outparam_fused_gat_aggregate", o,
                       fused_gat_aggregate<double>(a, s1, s2, slope, x), out);
  }
  {
    auto o = dirty_dense();
    spmm(a, x, o);
    compare_dense_bits("outparam_spmm", o, spmm(a, x), out);
  }
  {
    const auto w = make_features<double>(sc, sc.k, sc.k, 43);
    auto o = dirty_dense();
    matmul(h, w, o);
    compare_dense_bits("outparam_matmul", o, matmul(h, w), out);
  }
  {
    auto o = dirty_sparse();
    sddmm(a, h, h, o);
    compare_sparse_bits("outparam_sddmm", o, sddmm(a, h, h), out);
  }
  {
    const auto scores = reference::gat_scores_unfused<double>(a, s1, s2, slope);
    auto o = dirty_sparse();
    row_softmax(scores, o);
    const auto s = row_softmax(scores);
    compare_sparse_bits("outparam_row_softmax", o, s, out);

    auto ds = s;
    {
      Rng rng(sc.seed * 0x8cb92ba72f3d8dd7ULL + 29);
      auto v = ds.vals_mutable();
      for (index_t e = 0; e < ds.nnz(); ++e) {
        v[static_cast<std::size_t>(e)] = rng.next_uniform(-1.0, 1.0);
      }
    }
    auto o2 = dirty_sparse();
    row_softmax_backward(s, ds, o2);
    compare_sparse_bits("outparam_row_softmax_backward", o2,
                        row_softmax_backward(s, ds), out);
  }
  {
    std::vector<double> o(7, qnan);
    sparse_row_sums(a, o);
    const auto w = sparse_row_sums(a);
    if (o.size() != w.size()) {
      out.push_back({"outparam_sparse_row_sums", "size mismatch"});
    } else {
      for (std::size_t i = 0; i < o.size(); ++i) {
        if (!bits_equal(o[i], w[i])) {
          out.push_back({"outparam_sparse_row_sums",
                         "bit mismatch at " + std::to_string(i)});
          break;
        }
      }
    }
    std::vector<double> o2(7, qnan);
    sparse_col_sums(a, o2);
    const auto w2 = sparse_col_sums(a);
    if (o2.size() != w2.size()) {
      out.push_back({"outparam_sparse_col_sums", "size mismatch"});
    } else {
      for (std::size_t i = 0; i < o2.size(); ++i) {
        if (!bits_equal(o2[i], w2[i])) {
          out.push_back({"outparam_sparse_col_sums",
                         "bit mismatch at " + std::to_string(i)});
          break;
        }
      }
    }
  }
}

// ---- suite: scheduler equivalence ------------------------------------------
// Draws a chunked schedule policy and a tiny grain from the seed (tiny so
// even the small fuzz graphs split their hub rows), then checks
//   (a) the chunk decomposition covers every edge and row exactly once,
//   (b) every scheduled kernel matches its row-parallel run, and
//   (c) repeated runs under the same schedule are bitwise identical.
// A divergence replays with `diff_fuzz --suite schedule --seed N`.
inline void check_schedule(const Scenario& sc, Failures& out) {
  const auto a = make_graph<double>(sc);
  const auto h = make_features<double>(sc, sc.n, sc.k, 11);
  const auto x = make_features<double>(sc, sc.n, std::max<index_t>(1, sc.k - 1), 13);
  const auto s1 = make_scores<double>(sc, sc.n, 17);
  const auto s2 = make_scores<double>(sc, sc.n, 19);
  const double slope = 0.2;

  Rng rng(sc.seed * 0xbf58476d1ce4e5b9ULL + 53);
  const SchedulePolicy policy = rng.next_bounded(2) == 0
                                    ? SchedulePolicy::kEdgeBalanced
                                    : SchedulePolicy::kHybridBinned;
  const auto grain = static_cast<index_t>(1 + rng.next_bounded(16));
  const auto sched = KernelSchedule::build(a.row_ptr(), policy, grain);
  const auto row =
      KernelSchedule::build(a.row_ptr(), SchedulePolicy::kRowParallel, grain);
  const std::string tag = std::string("schedule_") + to_string(policy) +
                          "_g" + std::to_string(grain);

  // (a) coverage invariants.
  {
    std::vector<int> edge_seen(static_cast<std::size_t>(a.nnz()), 0);
    std::vector<int> row_seen(static_cast<std::size_t>(a.rows()), 0);
    for (const auto& c : sched.chunks()) {
      if (c.piece < 0) {
        for (index_t i = c.row_begin; i < c.row_end; ++i) {
          row_seen[static_cast<std::size_t>(i)]++;
        }
      }
      for (index_t i = c.row_begin; i < c.row_end; ++i) {
        const index_t b = std::max(a.row_begin(i), c.edge_begin);
        const index_t e = std::min(a.row_end(i), c.edge_end);
        for (index_t z = b; z < e; ++z) edge_seen[static_cast<std::size_t>(z)]++;
      }
    }
    for (const auto& sr : sched.split_rows()) {
      row_seen[static_cast<std::size_t>(sr.row)]++;
    }
    for (index_t e = 0; e < a.nnz(); ++e) {
      if (edge_seen[static_cast<std::size_t>(e)] != 1) {
        out.push_back({tag + "_edge_coverage",
                       "edge " + std::to_string(e) + " covered " +
                           std::to_string(edge_seen[static_cast<std::size_t>(e)]) +
                           " times"});
        break;
      }
    }
    for (index_t i = 0; i < a.rows(); ++i) {
      if (row_seen[static_cast<std::size_t>(i)] != 1) {
        out.push_back({tag + "_row_coverage",
                       "row " + std::to_string(i) + " owned " +
                           std::to_string(row_seen[static_cast<std::size_t>(i)]) +
                           " times"});
        break;
      }
    }
  }

  // (b) chunked kernels against their row-parallel runs. Unsplit rows run
  // identical arithmetic; split rows reassociate inside the fixed piece
  // order, hence kTol rather than bitwise.
  auto run_all = [&](const KernelSchedule& s) {
    struct Outs {
      DenseMatrix<double> mm, va, gat;
      CsrMatrix<double> dd, soft, dx, agnn, gscores, gpsi;
      std::vector<double> sums;
    } o;
    spmm(a, h, o.mm, &s);
    sddmm(a, h, h, o.dd, &s);
    sparse_row_sums(a, o.sums, &s);
    row_softmax(o.dd, o.soft, &s);
    {
      auto ds = o.soft;
      auto v = ds.vals_mutable();
      Rng r2(sc.seed * 0x8cb92ba72f3d8dd7ULL + 31);
      for (auto& z : v) z = r2.next_uniform(-1.0, 1.0);
      row_softmax_backward(o.soft, ds, o.dx, &s);
    }
    psi_agnn(a, h, o.agnn, &s);
    psi_gat<double>(a, s1, s2, slope, o.gscores, o.gpsi, &s);
    fused_va_aggregate(a, h, x, o.va, &s);
    fused_gat_aggregate<double>(a, s1, s2, slope, x, o.gat, &s);
    return o;
  };
  const auto got = run_all(sched);
  const auto want = run_all(row);
  compare_dense(tag + "_spmm", got.mm, want.mm, kTol, out);
  compare_sparse(tag + "_sddmm", got.dd, want.dd, kTol, out);
  compare_vec(tag + "_row_sums", got.sums, want.sums, kTol, out);
  compare_sparse(tag + "_row_softmax", got.soft, want.soft, kTol, out);
  compare_sparse(tag + "_softmax_backward", got.dx, want.dx, kTol, out);
  compare_sparse(tag + "_psi_agnn", got.agnn, want.agnn, kTol, out);
  compare_sparse(tag + "_gat_scores", got.gscores, want.gscores, kTol, out);
  compare_sparse(tag + "_gat_psi", got.gpsi, want.gpsi, kTol, out);
  compare_dense(tag + "_fused_va", got.va, want.va, kTol, out);
  compare_dense(tag + "_fused_gat", got.gat, want.gat, kTol, out);

  // (c) determinism: the same schedule twice must agree to the bit.
  const auto again = run_all(sched);
  compare_dense_bits(tag + "_repeat_spmm", again.mm, got.mm, out);
  compare_dense_bits(tag + "_repeat_fused_gat", again.gat, got.gat, out);
  compare_sparse_bits(tag + "_repeat_gat_psi", again.gpsi, got.gpsi, out);
}

// ---- suite: blocked sparse formats -----------------------------------------
// Draws a SELL-C-σ geometry (C ∈ {2,4,8,16}, σ a multiple of C) and a BCSR
// block shape (heights/widths 1..6) from the seed, then checks
//   (a) CSR → blocked → CSR round-trips are bitwise lossless,
//   (b) every blocked kernel is bitwise identical to its scalar CSR
//       counterpart under an explicit row-parallel schedule (the blocked
//       contract is row-at-a-time CSR edge order, so bitwise — not kTol —
//       is the bar; references pin the row schedule because chunked
//       schedules legitimately reassociate split hub rows), and
//   (c) the AGNN_FORMAT=sell env dispatch path through the public CSR
//       kernels lands on the same bits as the scalar run.
// A divergence replays with `diff_fuzz --suite formats --seed N`.
inline void check_formats(const Scenario& sc, Failures& out) {
  auto a = make_graph<double>(sc);
  {
    // Non-uniform edge weights so the slot → CSR source-index indirection
    // is actually exercised (uniform 1.0 values would hide permutation bugs).
    Rng rng(sc.seed * 0x8cb92ba72f3d8dd7ULL + 61);
    auto v = a.vals_mutable();
    for (index_t e = 0; e < a.nnz(); ++e) {
      v[static_cast<std::size_t>(e)] = rng.next_uniform(-2.0, 2.0);
    }
  }
  const auto h = make_features<double>(sc, sc.n, sc.k, 11);
  const auto x = make_features<double>(sc, sc.n, std::max<index_t>(1, sc.k - 1), 13);
  const auto s1 = make_scores<double>(sc, sc.n, 17);
  const auto s2 = make_scores<double>(sc, sc.n, 19);
  const double slope = 0.2;

  Rng rng(sc.seed * 0xbf58476d1ce4e5b9ULL + 67);
  const auto chunk = static_cast<index_t>(index_t{1} << (1 + rng.next_bounded(4)));
  const auto sigma = chunk * static_cast<index_t>(1 + rng.next_bounded(16));
  const auto br = static_cast<index_t>(1 + rng.next_bounded(6));
  const auto bc = static_cast<index_t>(1 + rng.next_bounded(6));
  const auto grain = static_cast<index_t>(1 + rng.next_bounded(16));
  const auto row =
      KernelSchedule::build(a.row_ptr(), SchedulePolicy::kRowParallel, grain);
  const std::string tag = "formats_c" + std::to_string(chunk) + "s" +
                          std::to_string(sigma) + "_b" + std::to_string(br) +
                          "x" + std::to_string(bc);

  // (a) lossless round-trips.
  const auto sell = SellCSigmaMatrix<double>::from_csr(a, chunk, sigma);
  compare_sparse_bits(tag + "_sell_roundtrip", sell.to_csr(), a, out);
  const auto bcsr = BcsrMatrix<double>::from_csr(a, br, bc);
  // make_graph builds through a set, so rows are strictly sorted and every
  // conversion must succeed; an invalid BCSR here is itself a bug.
  if (!bcsr.valid()) {
    out.push_back({tag + "_bcsr_valid", "sorted graph rejected"});
  } else {
    compare_sparse_bits(tag + "_bcsr_roundtrip", bcsr.to_csr(), a, out);
  }

  // (b) blocked kernels bitwise vs the row-scheduled scalar CSR paths.
  DenseMatrix<double> ref_mm;
  spmm(a, h, ref_mm, &row);
  {
    DenseMatrix<double> got;
    sell_spmm(sell, a.vals(), h, got);
    compare_dense_bits(tag + "_sell_spmm", got, ref_mm, out);
  }
  if (bcsr.valid()) {
    DenseMatrix<double> got;
    bcsr_spmm(bcsr, a.vals(), h, got);
    compare_dense_bits(tag + "_bcsr_spmm", got, ref_mm, out);
  }
  {
    CsrMatrix<double> ref;
    sddmm(a, h, h, ref, &row);
    auto got = a;
    auto v = got.vals_mutable();
    sell_sddmm<true>(sell, a.vals(), h, h, v);
    compare_sparse_bits(tag + "_sell_sddmm", got, ref, out);
  }
  {
    CsrMatrix<double> ref;
    sddmm_unweighted(a, h, h, ref, &row);
    auto got = a;
    auto v = got.vals_mutable();
    sell_sddmm<false>(sell, a.vals(), h, h, v);
    compare_sparse_bits(tag + "_sell_sddmm_unweighted", got, ref, out);
  }
  {
    DenseMatrix<double> ref, got;
    fused_va_aggregate(a, h, x, ref, &row);
    sell_fused_va_aggregate(sell, a.vals(), h, x, got);
    compare_dense_bits(tag + "_sell_fused_va", got, ref, out);
  }
  {
    DenseMatrix<double> ref, got;
    fused_gat_aggregate<double>(a, s1, s2, slope, x, ref, &row);
    sell_fused_gat_aggregate<double>(sell, a.vals(), s1, s2, slope, x, got);
    compare_dense_bits(tag + "_sell_fused_gat", got, ref, out);
  }

  // (c) the env-selected dispatch inside the public kernels: AGNN_FORMAT=sell
  // must be invisible to the bit. (Save/restore so the knob does not leak
  // into the other suites of the same fuzz run.)
  {
    const char* old = std::getenv("AGNN_FORMAT");
    const std::string saved = old ? old : "";
    setenv("AGNN_FORMAT", "sell", 1);
    DenseMatrix<double> env_mm;
    spmm(a, h, env_mm);
    DenseMatrix<double> env_gat;
    fused_gat_aggregate<double>(a, s1, s2, slope, x, env_gat);
    if (old) {
      setenv("AGNN_FORMAT", saved.c_str(), 1);
    } else {
      unsetenv("AGNN_FORMAT");
    }
    compare_dense_bits(tag + "_dispatch_spmm", env_mm, ref_mm, out);
    DenseMatrix<double> ref_gat;
    fused_gat_aggregate<double>(a, s1, s2, slope, x, ref_gat, &row);
    compare_dense_bits(tag + "_dispatch_fused_gat", env_gat, ref_gat, out);
  }
}

// ---- suite: tuned dispatch --------------------------------------------------
// The autotuner's bitwise-invisibility contract (autotune.hpp): candidates
// race only inside the untuned run's bitwise-equivalence class, so every
// public scheduled kernel must land the same bits with AGNN_TUNE=on (cold
// cache), on again (warm cache), and force-resample as with the tuner off —
// regardless of which candidate wins the timing race. The seed budget
// shrinks on sanitizer legs via the usual --count knob
// (AGNN_FUZZ_TUNE_SEEDS in ctest). A divergence replays with
// `diff_fuzz --suite tune --seed N`.
inline void check_tune(const Scenario& sc, Failures& out) {
  auto a = make_graph<double>(sc);
  {
    Rng rng(sc.seed * 0x8cb92ba72f3d8dd7ULL + 71);
    auto v = a.vals_mutable();
    for (index_t e = 0; e < a.nnz(); ++e) {
      v[static_cast<std::size_t>(e)] = rng.next_uniform(-2.0, 2.0);
    }
  }
  const auto h = make_features<double>(sc, sc.n, sc.k, 11);
  const auto x = make_features<double>(sc, sc.n, std::max<index_t>(1, sc.k - 1), 13);
  const auto s1 = make_scores<double>(sc, sc.n, 17);
  const auto s2 = make_scores<double>(sc, sc.n, 19);
  const double slope = 0.2;

  // Hermetic legs: pin every dispatch knob for the duration and restore on
  // exit so nothing leaks into the other suites of the same fuzz run.
  struct EnvGuard {
    const char* name;
    bool had = false;
    std::string saved;
    EnvGuard(const char* n, const char* value) : name(n) {
      if (const char* old = std::getenv(n)) {
        had = true;
        saved = old;
      }
      if (value != nullptr) {
        setenv(n, value, 1);
      } else {
        unsetenv(n);
      }
    }
    ~EnvGuard() {
      if (had) {
        setenv(name, saved.c_str(), 1);
      } else {
        unsetenv(name);
      }
    }
  };
  EnvGuard tune_env("AGNN_TUNE", nullptr);
  EnvGuard fmt_env("AGNN_FORMAT", nullptr);
  EnvGuard sched_env("AGNN_SCHEDULE", nullptr);
  EnvGuard grain_env("AGNN_SCHEDULE_GRAIN", nullptr);
  EnvGuard cache_env("AGNN_TUNE_CACHE", nullptr);

  struct Outs {
    DenseMatrix<double> mm, va, gat;
    CsrMatrix<double> dd, soft, dx, agnn, gscores, gpsi;
    std::vector<double> sums;
  };
  auto run_all = [&]() {
    Outs o;
    spmm(a, h, o.mm);
    sddmm(a, h, h, o.dd);
    sparse_row_sums(a, o.sums);
    row_softmax(o.dd, o.soft);
    {
      auto ds = o.soft;
      auto v = ds.vals_mutable();
      Rng r2(sc.seed * 0x8cb92ba72f3d8dd7ULL + 31);
      for (auto& z : v) z = r2.next_uniform(-1.0, 1.0);
      row_softmax_backward(o.soft, ds, o.dx);
    }
    psi_agnn(a, h, o.agnn);
    psi_gat<double>(a, s1, s2, slope, o.gscores, o.gpsi);
    fused_va_aggregate(a, h, x, o.va);
    fused_gat_aggregate<double>(a, s1, s2, slope, x, o.gat);
    return o;
  };
  auto compare_leg = [&](const std::string& leg, const Outs& got,
                         const Outs& want) {
    compare_dense_bits(leg + "_spmm", got.mm, want.mm, out);
    compare_sparse_bits(leg + "_sddmm", got.dd, want.dd, out);
    if (got.sums.size() != want.sums.size()) {
      out.push_back({leg + "_row_sums", "size mismatch"});
    } else {
      for (std::size_t i = 0; i < got.sums.size(); ++i) {
        if (!bits_equal(got.sums[i], want.sums[i])) {
          out.push_back({leg + "_row_sums",
                         "bit mismatch at " + std::to_string(i)});
          break;
        }
      }
    }
    compare_sparse_bits(leg + "_row_softmax", got.soft, want.soft, out);
    compare_sparse_bits(leg + "_softmax_backward", got.dx, want.dx, out);
    compare_sparse_bits(leg + "_psi_agnn", got.agnn, want.agnn, out);
    compare_sparse_bits(leg + "_gat_scores", got.gscores, want.gscores, out);
    compare_sparse_bits(leg + "_gat_psi", got.gpsi, want.gpsi, out);
    compare_dense_bits(leg + "_fused_va", got.va, want.va, out);
    compare_dense_bits(leg + "_fused_gat", got.gat, want.gat, out);
  };

  TuningCache::global().clear();
  const Outs want = run_all();  // tuner off: the heuristic baseline
  setenv("AGNN_TUNE", "on", 1);
  const Outs cold = run_all();  // cold cache: samples, memoizes
  compare_leg("tune_cold", cold, want);
  const Outs warm = run_all();  // warm cache: memoized choices only
  compare_leg("tune_warm", warm, want);
  setenv("AGNN_TUNE", "force-resample", 1);
  const Outs forced = run_all();  // re-measured winners, same bitwise class
  compare_leg("tune_forced", forced, want);

  // Grain-varied legs. The table still holds the default-grain choices, so
  // this doubles as the grain-aliasing regression: the auto baseline (and
  // any chunked decomposition's fold order) depends on AGNN_SCHEDULE_GRAIN,
  // so a cell sampled under the default grain must MISS under this one —
  // being served across the boundary would let AGNN_TUNE move bits. The
  // grain is seed-derived and includes non-powers-of-two, which share log2
  // buckets with their neighbors but may straddle the 4*grain threshold.
  const std::string grain =
      std::to_string(64 + (sc.seed % 5) * 48);  // 64..256, mostly non-pow2
  setenv("AGNN_SCHEDULE_GRAIN", grain.c_str(), 1);
  unsetenv("AGNN_TUNE");
  const Outs want_g = run_all();  // the untuned baseline under THIS grain
  setenv("AGNN_TUNE", "on", 1);
  const Outs cold_g = run_all();  // fresh cells: samples under this grain
  compare_leg("tune_grain" + grain + "_cold", cold_g, want_g);
  const Outs warm_g = run_all();
  compare_leg("tune_grain" + grain + "_warm", warm_g, want_g);

  TuningCache::global().clear();  // keep later suites hermetic
}

// ---- suite 3: distributed engines vs the sequential model ------------------

inline void check_engines(const Scenario& sc, Failures& out) {
  const auto kind = static_cast<ModelKind>(sc.kind);
  const auto g = make_graph<double>(sc);
  const CsrMatrix<double> adj =
      kind == ModelKind::kGCN ? graph::sym_normalize(g) : g;
  const CsrMatrix<double> adj_t = adj.transposed();
  const auto x = make_features<double>(sc, sc.n, sc.k, 31);

  GnnConfig cfg;
  cfg.kind = kind;
  cfg.in_features = sc.k;
  cfg.layer_widths.assign(static_cast<std::size_t>(sc.layers), sc.k);
  cfg.hidden_activation = Activation::kTanh;
  cfg.seed = 7117;

  std::vector<index_t> labels(static_cast<std::size_t>(sc.n));
  std::vector<std::uint8_t> mask_store;
  {
    Rng rng(sc.seed * 0xd1342543de82ef95ULL + 37);
    for (auto& l : labels) {
      l = static_cast<index_t>(rng.next_bounded(static_cast<std::uint64_t>(sc.k)));
    }
    if (sc.use_mask) {
      mask_store.resize(static_cast<std::size_t>(sc.n));
      for (auto& m : mask_store) m = rng.next_bounded(10) < 7 ? 1 : 0;
      mask_store[0] = 1;  // keep at least one vertex active
    }
  }
  const std::span<const std::uint8_t> mask(mask_store);

  // Sequential forward oracle, cross-checked against the local (per-vertex)
  // formulation engine.
  GnnModel<double> seq(cfg);
  const auto ref = seq.infer(adj, x);
  compare_dense("local_engine_infer", baseline::local_infer(seq, adj, x), ref,
                kTol, out);

  // Sequential training oracle: two SGD steps.
  GnnModel<double> seq_train(cfg);
  Trainer<double> trainer(seq_train,
                          std::make_unique<SgdOptimizer<double>>(0.05));
  std::vector<double> ref_losses;
  for (int s = 0; s < 2; ++s) {
    ref_losses.push_back(trainer.step(adj, adj_t, x, labels, mask).loss);
  }

  // Failure sink shared with the rank threads: results are replicated, so
  // only rank 0 records (the mutex guards the cross-thread append).
  std::mutex mu;
  auto record = [&](const std::string& check, const std::string& detail) {
    std::lock_guard<std::mutex> lock(mu);
    out.push_back({check, detail});
  };
  auto run_engine_checks = [&](const std::string& name, auto&& make_engine,
                               int ranks) {
    comm::SpmdRuntime::run(ranks, [&](comm::Communicator& world) {
      GnnModel<double> model(cfg);  // same seed -> identical replica
      auto engine = make_engine(world, model);
      Failures local;
      compare_dense(name + "_infer", engine.infer(x), ref, kTol, local);
      SgdOptimizer<double> opt(0.05);
      for (int s = 0; s < 2; ++s) {
        const auto res = engine.train_step(x, labels, opt, mask);
        if (!near(res.loss, ref_losses[static_cast<std::size_t>(s)], kTol)) {
          local.push_back({name + "_train_loss",
                           "step " + std::to_string(s) + ": " +
                               std::to_string(res.loss) + " vs " +
                               std::to_string(ref_losses[static_cast<std::size_t>(s)])});
        }
      }
      for (std::size_t l = 0; l < model.num_layers(); ++l) {
        const auto& w_dist = model.layer(l).weights();
        const auto& w_seq = seq_train.layer(l).weights();
        for (index_t i = 0; i < w_seq.size(); ++i) {
          if (!near(w_dist.data()[i], w_seq.data()[i], kTol)) {
            local.push_back({name + "_train_weights",
                             "layer " + std::to_string(l) + " elem " +
                                 std::to_string(i)});
            break;
          }
        }
      }
      if (world.rank() == 0) {
        for (auto& f : local) record(f.check, f.detail);
      }
    });
  };

  run_engine_checks(
      "dist_engine",
      [&](comm::Communicator& world, GnnModel<double>& model) {
        return dist::DistGnnEngine<double>(world, adj, model);
      },
      sc.ranks_grid);
  run_engine_checks(
      "dist_local_engine",
      [&](comm::Communicator& world, GnnModel<double>& model) {
        return baseline::DistLocalEngine<double>(world, adj, model);
      },
      sc.ranks_row);
  run_engine_checks(
      "dist_1d_engine",
      [&](comm::Communicator& world, GnnModel<double>& model) {
        return dist::Dist1dGlobalEngine<double>(world, adj, model);
      },
      sc.ranks_row);

  // Factory-routed check over the scenario's drawn distribution policy: the
  // runtime-selected engine (1d/1.5d/2d/3d, same surface the benchmarks
  // use) must match the sequential oracle too. A thin value wrapper gives
  // the unique_ptr the engine-shaped surface run_engine_checks expects.
  struct FactoryEngine {
    std::unique_ptr<dist::IDistEngine<double>> impl;
    DenseMatrix<double> infer(const DenseMatrix<double>& xg) {
      return impl->infer(xg);
    }
    dist::IDistEngine<double>::StepResult train_step(
        const DenseMatrix<double>& xg, std::span<const index_t> lab,
        Optimizer<double>& opt, std::span<const std::uint8_t> m) {
      return impl->train_step(xg, lab, opt, m);
    }
  };
  const auto policy = static_cast<dist::DistPolicy>(sc.policy);
  run_engine_checks(
      std::string("dist_policy_") + dist::to_string(policy) + "_engine",
      [&](comm::Communicator& world, GnnModel<double>& model) {
        return FactoryEngine{
            dist::make_dist_engine(policy, world, adj, model)};
      },
      sc.ranks_policy);

  // Multi-head GAT engine against the sequential multi-head model. The
  // attention semantics need the raw adjacency (not the GCN normalization).
  {
    typename MultiHeadGat<double>::Config mcfg;
    mcfg.in_features = sc.k;
    mcfg.head_features = 3;
    mcfg.heads = 1 + static_cast<int>(sc.seed % 3);
    mcfg.out_features = 3;
    mcfg.out_heads = 1 + static_cast<int>(sc.seed % 2);
    mcfg.hidden_layers = sc.layers;
    mcfg.hidden_activation = Activation::kTanh;
    mcfg.seed = 4096;
    std::vector<index_t> mh_labels(static_cast<std::size_t>(sc.n));
    {
      Rng rng(sc.seed * 0xd1342543de82ef95ULL + 41);
      for (auto& l : mh_labels) l = static_cast<index_t>(rng.next_bounded(3));
    }

    MultiHeadGat<double> mh_seq(mcfg);
    const auto mh_ref = mh_seq.infer(g, x);
    MultiHeadGat<double> mh_seq_train(mcfg);
    SgdOptimizer<double> mh_seq_opt(0.05);
    std::vector<double> mh_losses;
    for (int s = 0; s < 2; ++s) {
      std::vector<MultiHeadCache<double>> caches;
      const auto hh = mh_seq_train.forward(g, x, caches);
      const auto loss = softmax_cross_entropy<double>(hh, mh_labels);
      mh_losses.push_back(loss.value);
      mh_seq_train.apply_gradients(mh_seq_train.backward(g, caches, loss.grad),
                                   mh_seq_opt);
    }

    comm::SpmdRuntime::run(sc.ranks_grid, [&](comm::Communicator& world) {
      MultiHeadGat<double> model(mcfg);
      dist::DistMultiHeadGatEngine<double> engine(world, g, model);
      Failures local;
      compare_dense("dist_multihead_infer", engine.infer(x), mh_ref, kTol, local);
      SgdOptimizer<double> opt(0.05);
      for (int s = 0; s < 2; ++s) {
        const auto res = engine.train_step(x, mh_labels, opt);
        if (!near(res.loss, mh_losses[static_cast<std::size_t>(s)], kTol)) {
          local.push_back({"dist_multihead_train_loss",
                           "step " + std::to_string(s) + ": " +
                               std::to_string(res.loss) + " vs " +
                               std::to_string(mh_losses[static_cast<std::size_t>(s)])});
        }
      }
      for (std::size_t l = 0; l < model.num_layers(); ++l) {
        for (int hd = 0; hd < model.layer(l).num_heads(); ++hd) {
          const auto& w_dist = model.layer(l).head(hd).w;
          const auto& w_seq = mh_seq_train.layer(l).head(hd).w;
          for (index_t i = 0; i < w_seq.size(); ++i) {
            if (!near(w_dist.data()[i], w_seq.data()[i], kTol)) {
              local.push_back({"dist_multihead_train_weights",
                               "layer " + std::to_string(l) + " head " +
                                   std::to_string(hd)});
              break;
            }
          }
        }
      }
      if (world.rank() == 0) {
        for (auto& f : local) record(f.check, f.detail);
      }
    });
  }
}

// ---- suite 4: fault injection + checkpoint recovery ------------------------
//
// For each scenario: train the 1.5D engine fault-free, then again under a
// FaultPlan drawn deterministically from the seed (targeted at the observed
// superstep range) with the checkpoint-recovery loop. Recovery must land on
// the fault-free trajectory — losses and final parameters — and any injected
// fault must resolve (recover or fail structured) rather than deadlock. A
// divergence replays with `diff_fuzz --suite faults --seed N`; the plan's
// spec string is part of the failure detail so the exact fault schedule can
// also be replayed standalone via AGNN_FAULTS.
inline void check_fault_recovery(const Scenario& sc, Failures& out) {
  const auto kind = static_cast<ModelKind>(sc.kind);
  const auto g = make_graph<double>(sc);
  const CsrMatrix<double> adj =
      kind == ModelKind::kGCN ? graph::sym_normalize(g) : g;
  const auto x = make_features<double>(sc, sc.n, sc.k, 31);

  GnnConfig cfg;
  cfg.kind = kind;
  cfg.in_features = sc.k;
  cfg.layer_widths.assign(static_cast<std::size_t>(sc.layers), sc.k);
  cfg.hidden_activation = Activation::kTanh;
  cfg.seed = 7117;

  std::vector<index_t> labels(static_cast<std::size_t>(sc.n));
  {
    Rng rng(sc.seed * 0xd1342543de82ef95ULL + 37);
    for (auto& l : labels) {
      l = static_cast<index_t>(rng.next_bounded(static_cast<std::uint64_t>(sc.k)));
    }
  }

  const int ranks = sc.ranks_grid;
  constexpr int kEpochs = 4;
  struct Outcome {
    std::vector<double> losses;
    std::vector<double> params;
    int restores = 0;
    std::uint64_t supersteps = 0;
  };
  std::mutex mu;
  const auto run_training = [&](const comm::FaultPlan& plan, Outcome& res) {
    comm::RunOptions opts;
    opts.faults = plan;
    if (!plan.empty()) opts.timeout = std::chrono::milliseconds(300);
    const auto snaps =
        comm::SpmdRuntime::run(ranks, opts, [&](comm::Communicator& world) {
          GnnModel<double> model(cfg);
          dist::DistGnnEngine<double> engine(world, adj, model);
          SgdOptimizer<double> opt(0.05);
          dist::RecoveryOptions ropts;
          ropts.checkpoint_every = 2;
          const auto report = dist::train_with_recovery<double>(
              world, engine, model, opt, x, labels, kEpochs, {}, ropts);
          if (world.rank() == 0) {
            std::lock_guard<std::mutex> lock(mu);
            res.losses = report.losses;
            res.restores = report.restores;
            dist::collect_params(model, res.params);
          }
        });
    res.supersteps = comm::max_supersteps(snaps);
  };

  Outcome clean;
  run_training({}, clean);

  const comm::FaultPlan plan = comm::FaultPlan::random(
      sc.seed, ranks, std::max<std::uint64_t>(clean.supersteps, 4));
  Outcome chaos;
  try {
    run_training(plan, chaos);
  } catch (const comm::CommError& e) {
    // A random plan has at most one abort-class event; bounded retries must
    // absorb it. Reaching here means recovery itself failed.
    out.push_back({"fault_recovery_unrecovered",
                   std::string(e.what()) + " plan=" + plan.spec()});
    return;
  }

  // Same trajectory as the fault-free run. 1e-12, not bitwise: several
  // kernels reduce via dynamically-scheduled per-thread partials, so
  // summation order is not identical run to run.
  constexpr double kReplayTol = 1e-12;
  if (chaos.losses.size() != clean.losses.size()) {
    out.push_back({"fault_recovery_losses", "epoch count mismatch"});
  } else {
    for (std::size_t e = 0; e < clean.losses.size(); ++e) {
      if (!near(chaos.losses[e], clean.losses[e], kReplayTol)) {
        out.push_back({"fault_recovery_losses",
                       "epoch " + std::to_string(e) + ": " +
                           std::to_string(chaos.losses[e]) + " vs " +
                           std::to_string(clean.losses[e]) +
                           " plan=" + plan.spec()});
        break;
      }
    }
  }
  if (chaos.params.size() != clean.params.size()) {
    out.push_back({"fault_recovery_params", "parameter count mismatch"});
  } else {
    for (std::size_t i = 0; i < clean.params.size(); ++i) {
      if (!near(chaos.params[i], clean.params[i], kReplayTol)) {
        out.push_back({"fault_recovery_params",
                       "param " + std::to_string(i) + ": " +
                           std::to_string(chaos.params[i]) + " vs " +
                           std::to_string(clean.params[i]) +
                           " plan=" + plan.spec()});
        break;
      }
    }
  }
}

// ---- serving suite ---------------------------------------------------------
// The online-serving invariants under adversarial graphs and feature
// regimes: fan-out bounds and seed-local renumbering structure, exact
// seed replay, and the batching-invisibility contract — the block-diagonal
// batched forward must be BITWISE equal to each request served alone, and
// both must equal an independent oracle (model.infer over the widest
// square block, reading the seed row; valid because levels are nested
// prefixes and every forward kernel is row-local).
inline void check_serving(const Scenario& sc, Failures& out) {
  const auto kind = static_cast<ModelKind>(sc.kind);
  const auto g = make_graph<double>(sc);
  const CsrMatrix<double> adj =
      kind == ModelKind::kGCN ? graph::sym_normalize(g) : g;
  const auto x = make_features<double>(sc, sc.n, sc.k, 53);

  GnnConfig cfg;
  cfg.kind = kind;
  cfg.in_features = sc.k;
  cfg.layer_widths.assign(static_cast<std::size_t>(sc.layers), sc.k);
  cfg.hidden_activation = Activation::kTanh;
  cfg.seed = 4243;
  const GnnModel<double> model(cfg);

  Rng rng(sc.seed * 0xa24baed4963ee407ULL + 91);
  const auto fanout = static_cast<index_t>(1 + rng.next_bounded(6));
  const serve::NeighborSampler sampler(fanout,
                                       static_cast<index_t>(sc.layers),
                                       /*base_seed=*/sc.seed);
  const std::size_t batch_size = 1 + rng.next_bounded(6);
  std::vector<index_t> vertices;
  for (std::size_t r = 0; r < batch_size; ++r) {
    vertices.push_back(
        static_cast<index_t>(rng.next_bounded(static_cast<std::uint64_t>(sc.n))));
  }

  std::vector<serve::SampledEgoNet<double>> nets;
  for (std::size_t r = 0; r < batch_size; ++r) {
    nets.push_back(sampler.sample_for_request<double>(
        adj, vertices[r], static_cast<std::uint64_t>(r)));
  }

  // Structural invariants per net: square blocks, fan-out-bounded and
  // in-range dst rows, seed-local numbering, empty pad rows.
  for (std::size_t r = 0; r < nets.size(); ++r) {
    const auto& net = nets[r];
    if (net.vertices.empty() || net.vertices.front() != vertices[r]) {
      out.push_back({"serving_renumber", "seed not at local index 0"});
      return;
    }
    for (std::size_t i = 0; i < net.blocks.size(); ++i) {
      const auto& b = net.blocks[i];
      if (b.rows() != b.cols() || b.rows() != net.src_size(i)) {
        out.push_back({"serving_block_shape",
                       "request " + std::to_string(r) + " layer " +
                           std::to_string(i) + " not square over src level"});
        return;
      }
      for (index_t d = 0; d < b.rows(); ++d) {
        const index_t deg = b.row_end(d) - b.row_begin(d);
        if (d < net.dst_size(i) ? deg > fanout : deg != 0) {
          out.push_back({"serving_fanout",
                         "request " + std::to_string(r) + " layer " +
                             std::to_string(i) + " row " + std::to_string(d) +
                             " violates the fan-out/pad contract"});
          return;
        }
        for (index_t e = b.row_begin(d); e < b.row_end(d); ++e) {
          if (b.col_at(e) < 0 || b.col_at(e) >= net.num_vertices()) {
            out.push_back({"serving_renumber", "local column out of range"});
            return;
          }
        }
      }
    }
  }

  // Exact replay: request 0 resampled must reproduce its ego net.
  {
    const auto again = sampler.sample_for_request<double>(adj, vertices[0], 0);
    if (again.vertices != nets[0].vertices ||
        again.level_sizes != nets[0].level_sizes) {
      out.push_back({"serving_replay", "resampling request 0 diverged"});
      return;
    }
  }

  // Batched forward.
  std::vector<const serve::SampledEgoNet<double>*> ptrs;
  for (const auto& n : nets) ptrs.push_back(&n);
  const auto bb = serve::build_batch(
      std::span<const serve::SampledEgoNet<double>* const>(ptrs));
  Workspace<double> ws;
  DenseMatrix<double> x0(static_cast<index_t>(bb.input_vertices.size()), sc.k);
  gather_rows(x, std::span<const index_t>(bb.input_vertices), x0);
  DenseMatrix<double> batched;
  serve::forward_batch(model, bb, x0, ws, batched);
  if (batched.rows() != static_cast<index_t>(batch_size)) {
    out.push_back({"serving_batched", "one output row per request expected"});
    return;
  }

  for (std::size_t r = 0; r < batch_size; ++r) {
    // Oracle 1: the same request served alone through the serving path.
    const auto solo = serve::serve_sequential(
        model, adj, x, sampler, vertices[r],
        serve::derive_request_seed(sc.seed, static_cast<std::uint64_t>(r)), ws);
    // Oracle 2: plain model.infer over the widest square block.
    DenseMatrix<double> x_ego(nets[r].num_vertices(), sc.k);
    gather_rows(x, std::span<const index_t>(nets[r].vertices), x_ego);
    const auto full = model.infer(nets[r].blocks[0], x_ego);
    const auto row = batched.row(static_cast<index_t>(r));
    for (std::size_t j = 0; j < solo.size(); ++j) {
      if (!bits_equal(row[j], solo[j])) {
        out.push_back({"serving_batched_vs_sequential",
                       "request " + std::to_string(r) + " [" +
                           std::to_string(j) + "]: " + std::to_string(row[j]) +
                           " vs " + std::to_string(solo[j])});
        return;
      }
      if (!bits_equal(solo[j], full(0, static_cast<index_t>(j)))) {
        out.push_back({"serving_vs_infer_oracle",
                       "request " + std::to_string(r) + " [" +
                           std::to_string(j) + "]: " + std::to_string(solo[j]) +
                           " vs " +
                           std::to_string(full(0, static_cast<index_t>(j)))});
        return;
      }
    }
  }
}

}  // namespace agnn::diffuzz
