// Seeded adversarial-scenario generator for the differential harness.
//
// Every scenario is a pure function of its seed: the graph family, feature
// regime, and all shape parameters are drawn from an Rng seeded with it, so
// `diff_fuzz --seed N` reproduces a failing case exactly. The families and
// regimes target the places where the fused kernels and the distributed
// engines have historically diverged from the global formulations: empty
// rows, isolated vertices, self-loops, star graphs with one huge-degree hub,
// all-zero / subnormal-scale / huge-magnitude features, and exactly-tied
// attention scores.
#pragma once

#include <algorithm>
#include <cstdint>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "tensor/common.hpp"
#include "tensor/coo_matrix.hpp"
#include "tensor/csr_matrix.hpp"
#include "tensor/dense_matrix.hpp"

namespace agnn::diffuzz {

enum class GraphFamily : int {
  kEmpty = 0,      // n vertices, zero edges: every row and column empty
  kSingleVertex,   // n = 1, with or without a self-loop
  kSelfLoopsOnly,  // diagonal-only adjacency
  kStar,           // vertex 0 adjacent to all others: one huge-degree hub
  kIsolatedMix,    // random graph with a batch of fully isolated vertices
  kRandom,         // plain random graph (control case)
  kFamilyCount
};

enum class FeatureRegime : int {
  kUniform = 0,     // U(-1, 1): control case
  kZeroRows,        // some all-zero feature rows (degenerate norms)
  kSmallScale,      // magnitudes ~1e-140: norm *products* near underflow
  kSubnormalScale,  // magnitudes ~1e-160: norm products underflow to subnormal
  kLargeMagnitude,  // magnitudes ~1e12: stresses softmax shift / overflow paths
  kConstant,        // every entry identical: exactly duplicated attention scores
  kRegimeCount
};

inline const char* to_string(GraphFamily f) {
  switch (f) {
    case GraphFamily::kEmpty: return "empty";
    case GraphFamily::kSingleVertex: return "single-vertex";
    case GraphFamily::kSelfLoopsOnly: return "self-loops-only";
    case GraphFamily::kStar: return "star";
    case GraphFamily::kIsolatedMix: return "isolated-mix";
    case GraphFamily::kRandom: return "random";
    default: return "?";
  }
}

inline const char* to_string(FeatureRegime r) {
  switch (r) {
    case FeatureRegime::kUniform: return "uniform";
    case FeatureRegime::kZeroRows: return "zero-rows";
    case FeatureRegime::kSmallScale: return "small-scale";
    case FeatureRegime::kSubnormalScale: return "subnormal-scale";
    case FeatureRegime::kLargeMagnitude: return "large-magnitude";
    case FeatureRegime::kConstant: return "constant";
    default: return "?";
  }
}

// What the scenario will be driven through. Kernel scenarios may shrink to a
// single vertex and use the full regime list; engine scenarios keep n large
// enough that every simulated rank owns at least one vertex, and avoid the
// subnormal regime (subnormal intermediates carry so few mantissa bits that
// algebraically equivalent summation orders legitimately differ beyond any
// useful tolerance — the kernel suite covers that range bitwise instead).
enum class Purpose { kKernels, kEngines };

struct Scenario {
  std::uint64_t seed = 0;
  Purpose purpose = Purpose::kKernels;
  GraphFamily family = GraphFamily::kRandom;
  FeatureRegime regime = FeatureRegime::kUniform;
  index_t n = 0;          // vertices
  index_t k = 0;          // feature width
  bool self_loops = false;  // add the diagonal on top of the family's edges
  double density = 0.0;   // for the random families
  // Engine-only knobs.
  int kind = 0;           // cycles through ModelKind by the check driver
  int ranks_grid = 1;     // perfect-square rank count for the 1.5D engines
  int ranks_row = 2;      // rank count for the 1D engines
  int layers = 1;
  bool use_mask = false;  // exercise the masked-loss path
  // Factory-routed distribution-policy check: a drawn DistPolicy (as int,
  // matching dist::DistPolicy's enumerators) plus a rank count that policy
  // accepts (square for 1.5d, arbitrary otherwise).
  int policy = 1;
  int ranks_policy = 1;

  const char* policy_name() const {
    switch (policy) {
      case 0: return "1d";
      case 1: return "1.5d";
      case 2: return "2d";
      case 3: return "3d";
      default: return "?";
    }
  }

  std::string describe() const {
    std::string s = std::string("graph=") + diffuzz::to_string(family) +
                    " features=" + diffuzz::to_string(regime) +
                    " n=" + std::to_string(n) + " k=" + std::to_string(k);
    if (self_loops) s += " +self-loops";
    if (purpose == Purpose::kEngines) {
      s += " kind=" + std::to_string(kind) +
           " p_grid=" + std::to_string(ranks_grid) +
           " p_row=" + std::to_string(ranks_row) +
           " layers=" + std::to_string(layers) + " dist=" + policy_name() +
           ":p" + std::to_string(ranks_policy);
      if (use_mask) s += " +mask";
    }
    return s;
  }
};

inline Scenario make_scenario(std::uint64_t seed, Purpose purpose) {
  // Salted so the kernel and engine suites draw independent streams.
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + static_cast<std::uint64_t>(purpose) + 1);
  Scenario sc;
  sc.seed = seed;
  sc.purpose = purpose;
  sc.family = static_cast<GraphFamily>(
      rng.next_bounded(static_cast<std::uint64_t>(GraphFamily::kFamilyCount)));
  if (purpose == Purpose::kKernels) {
    sc.regime = static_cast<FeatureRegime>(
        rng.next_bounded(static_cast<std::uint64_t>(FeatureRegime::kRegimeCount)));
    sc.n = sc.family == GraphFamily::kSingleVertex
               ? 1
               : static_cast<index_t>(4 + rng.next_bounded(44));
    sc.k = static_cast<index_t>(1 + rng.next_bounded(8));
  } else {
    // The engines need a model head wide enough for the label space and a
    // vertex count that keeps every block of a 3x3 grid non-empty.
    static constexpr FeatureRegime kEngineRegimes[] = {
        FeatureRegime::kUniform, FeatureRegime::kZeroRows,
        FeatureRegime::kSmallScale, FeatureRegime::kConstant};
    sc.regime = kEngineRegimes[rng.next_bounded(4)];
    if (sc.family == GraphFamily::kSingleVertex) sc.family = GraphFamily::kStar;
    sc.n = static_cast<index_t>(10 + rng.next_bounded(15));
    sc.k = static_cast<index_t>(3 + rng.next_bounded(3));
    sc.kind = static_cast<int>(rng.next_bounded(5));
    static constexpr int kGridRanks[] = {1, 4, 9};
    sc.ranks_grid = kGridRanks[rng.next_bounded(3)];
    sc.ranks_row = static_cast<int>(2 + rng.next_bounded(2));
    sc.layers = static_cast<int>(1 + rng.next_bounded(2));
    sc.use_mask = rng.next_bounded(2) == 1;
  }
  sc.self_loops = rng.next_bounded(3) == 0;
  sc.density = 0.05 + 0.4 * rng.next_double();
  // Drawn last so older seeds reproduce the same shapes they always did.
  if (purpose == Purpose::kEngines) {
    sc.policy = static_cast<int>(rng.next_bounded(4));
    if (sc.policy == 1) {  // 1.5d: square counts only
      static constexpr int kSquareRanks[] = {1, 4, 9};
      sc.ranks_policy = kSquareRanks[rng.next_bounded(3)];
    } else {
      static constexpr int kAnyRanks[] = {2, 3, 6, 8};
      sc.ranks_policy = kAnyRanks[rng.next_bounded(4)];
    }
  }
  return sc;
}

// Build the scenario's adjacency structure (binary values). The COO path
// deduplicates through a set, so every family composes with self_loops.
template <typename T>
CsrMatrix<T> make_graph(const Scenario& sc) {
  Rng rng(sc.seed * 0x2545f4914f6cdd1dULL + 17);
  std::set<std::pair<index_t, index_t>> edges;
  switch (sc.family) {
    case GraphFamily::kEmpty:
      break;
    case GraphFamily::kSingleVertex:
      if (rng.next_bounded(2) == 0) edges.insert({0, 0});
      break;
    case GraphFamily::kSelfLoopsOnly:
      for (index_t i = 0; i < sc.n; ++i) edges.insert({i, i});
      break;
    case GraphFamily::kStar:
      for (index_t j = 1; j < sc.n; ++j) {
        edges.insert({0, j});
        edges.insert({j, 0});
      }
      break;
    case GraphFamily::kIsolatedMix: {
      // Random edges among the first half; the second half stays isolated.
      const index_t live = std::max<index_t>(1, sc.n / 2);
      const auto m = static_cast<index_t>(
          rng.next_bounded(static_cast<std::uint64_t>(3 * live) + 1));
      for (index_t e = 0; e < m; ++e) {
        const auto i = static_cast<index_t>(rng.next_bounded(static_cast<std::uint64_t>(live)));
        const auto j = static_cast<index_t>(rng.next_bounded(static_cast<std::uint64_t>(live)));
        edges.insert({i, j});
        edges.insert({j, i});  // symmetric, like the project's graph builders
      }
      break;
    }
    case GraphFamily::kRandom: {
      const auto m = static_cast<index_t>(static_cast<double>(sc.n) *
                                          static_cast<double>(sc.n) * sc.density);
      for (index_t e = 0; e < m; ++e) {
        const auto i = static_cast<index_t>(rng.next_bounded(static_cast<std::uint64_t>(sc.n)));
        const auto j = static_cast<index_t>(rng.next_bounded(static_cast<std::uint64_t>(sc.n)));
        edges.insert({i, j});
        edges.insert({j, i});
      }
      break;
    }
    default:
      break;
  }
  if (sc.self_loops) {
    for (index_t i = 0; i < sc.n; ++i) edges.insert({i, i});
  }
  CooMatrix<T> coo;
  coo.n_rows = coo.n_cols = sc.n;
  coo.reserve(edges.size());
  for (const auto& [i, j] : edges) coo.push_back(i, j, T(1));
  return CsrMatrix<T>::from_coo(coo);
}

// Feature magnitudes per regime. Subnormal-scale is tuned so row-norm
// *products* (~scale^2 * k) drop below the smallest normal double while the
// norms themselves stay normal — the exact range where psi_agnn's old
// eps-clamp silently flattened cosines to ~0.
inline double regime_scale(FeatureRegime r) {
  switch (r) {
    case FeatureRegime::kSmallScale: return 1e-140;
    case FeatureRegime::kSubnormalScale: return 1e-160;
    case FeatureRegime::kLargeMagnitude: return 1e12;
    default: return 1.0;
  }
}

template <typename T>
DenseMatrix<T> make_features(const Scenario& sc, index_t rows, index_t cols,
                             std::uint64_t salt) {
  Rng rng(sc.seed * 0xda942042e4dd58b5ULL + salt);
  DenseMatrix<T> h(rows, cols);
  if (sc.regime == FeatureRegime::kConstant) {
    h.fill(T(0.625));  // exactly representable: every score collides exactly
    return h;
  }
  const double scale = regime_scale(sc.regime);
  for (index_t i = 0; i < h.size(); ++i) {
    h.data()[i] = static_cast<T>(scale * rng.next_uniform(-1.0, 1.0));
  }
  if (sc.regime == FeatureRegime::kZeroRows && rows > 0) {
    const auto nz = 1 + rng.next_bounded(static_cast<std::uint64_t>(rows + 3) / 4);
    for (std::uint64_t z = 0; z < nz; ++z) {
      const auto i = static_cast<index_t>(rng.next_bounded(static_cast<std::uint64_t>(rows)));
      for (index_t f = 0; f < cols; ++f) h(i, f) = T(0);
    }
  }
  return h;
}

// Per-vertex attention score vectors (the s1/s2 of the GAT formulation).
// The constant regime yields exact ties across every edge of a row.
template <typename T>
std::vector<T> make_scores(const Scenario& sc, index_t n, std::uint64_t salt) {
  Rng rng(sc.seed * 0x94d049bb133111ebULL + salt);
  std::vector<T> s(static_cast<std::size_t>(n));
  if (sc.regime == FeatureRegime::kConstant) {
    for (auto& v : s) v = T(0.375);
    return s;
  }
  const double scale = regime_scale(sc.regime);
  for (auto& v : s) v = static_cast<T>(scale * rng.next_uniform(-1.0, 1.0));
  return s;
}

}  // namespace agnn::diffuzz
