// The distributed multi-head GAT engine must reproduce the sequential
// multi-head model exactly: inference, training losses, and post-training
// parameters, across grid sizes and head/layer configurations.
#include <gtest/gtest.h>

#include "comm/communicator.hpp"
#include "core/multihead_gat.hpp"
#include "dist/dist_multihead.hpp"
#include "graph/graph.hpp"
#include "test_utils.hpp"

namespace agnn::dist {
namespace {

struct MhCase {
  int ranks;
  int heads;
  int hidden_layers;
  index_t n;
};

typename MultiHeadGat<double>::Config make_config(const MhCase& p) {
  typename MultiHeadGat<double>::Config cfg;
  cfg.in_features = 5;
  cfg.head_features = 3;
  cfg.heads = p.heads;
  cfg.out_features = 3;
  cfg.out_heads = 2;
  cfg.hidden_layers = p.hidden_layers;
  cfg.hidden_activation = Activation::kTanh;
  cfg.seed = 4096;
  return cfg;
}

class DistMultiHeadSweep : public ::testing::TestWithParam<MhCase> {};

TEST_P(DistMultiHeadSweep, InferenceMatchesSequential) {
  const auto& p = GetParam();
  const auto g = testing::small_graph<double>(p.n, 5 * p.n, 91 + p.n);
  const auto x = testing::random_dense<double>(p.n, 5, 93);
  MultiHeadGat<double> seq(make_config(p));
  const auto ref = seq.infer(g.adj, x);

  comm::SpmdRuntime::run(p.ranks, [&](comm::Communicator& world) {
    MultiHeadGat<double> model(make_config(p));
    DistMultiHeadGatEngine<double> engine(world, g.adj, model);
    const auto out = engine.infer(x);
    ASSERT_EQ(out.rows(), ref.rows());
    ASSERT_EQ(out.cols(), ref.cols());
    for (index_t i = 0; i < ref.size(); ++i) {
      ASSERT_NEAR(out.data()[i], ref.data()[i], 1e-8)
          << "rank " << world.rank() << " elem " << i;
    }
  });
}

TEST_P(DistMultiHeadSweep, TrainingMatchesSequential) {
  const auto& p = GetParam();
  const auto g = testing::small_graph<double>(p.n, 5 * p.n, 97 + p.n);
  const auto x = testing::random_dense<double>(p.n, 5, 99);
  std::vector<index_t> labels(static_cast<std::size_t>(p.n));
  Rng rng(101);
  for (auto& l : labels) l = static_cast<index_t>(rng.next_bounded(3));

  // Sequential reference: two SGD steps.
  MultiHeadGat<double> seq(make_config(p));
  SgdOptimizer<double> seq_opt(0.05);
  std::vector<double> ref_losses;
  for (int s = 0; s < 2; ++s) {
    std::vector<MultiHeadCache<double>> caches;
    const auto h = seq.forward(g.adj, x, caches);
    const auto loss = softmax_cross_entropy<double>(h, labels);
    ref_losses.push_back(loss.value);
    seq.apply_gradients(seq.backward(g.adj, caches, loss.grad), seq_opt);
  }

  comm::SpmdRuntime::run(p.ranks, [&](comm::Communicator& world) {
    MultiHeadGat<double> model(make_config(p));
    DistMultiHeadGatEngine<double> engine(world, g.adj, model);
    SgdOptimizer<double> opt(0.05);
    for (int s = 0; s < 2; ++s) {
      const auto res = engine.train_step(x, labels, opt);
      ASSERT_NEAR(res.loss, ref_losses[static_cast<std::size_t>(s)], 1e-8)
          << "step " << s << " rank " << world.rank();
    }
    for (std::size_t l = 0; l < model.num_layers(); ++l) {
      for (int hd = 0; hd < model.layer(l).num_heads(); ++hd) {
        const auto& w_dist = model.layer(l).head(hd).w;
        const auto& w_seq = seq.layer(l).head(hd).w;
        for (index_t i = 0; i < w_seq.size(); ++i) {
          ASSERT_NEAR(w_dist.data()[i], w_seq.data()[i], 1e-8)
              << "layer " << l << " head " << hd;
        }
        const auto& a_dist = model.layer(l).head(hd).a;
        const auto& a_seq = seq.layer(l).head(hd).a;
        for (std::size_t i = 0; i < a_seq.size(); ++i) {
          ASSERT_NEAR(a_dist[i], a_seq[i], 1e-8);
        }
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    Cases, DistMultiHeadSweep,
    ::testing::Values(MhCase{1, 2, 1, 20}, MhCase{4, 1, 1, 24},
                      MhCase{4, 3, 1, 24}, MhCase{4, 2, 2, 24},
                      MhCase{9, 3, 1, 26}, MhCase{9, 2, 2, 27}),
    [](const auto& info) {
      return "p" + std::to_string(info.param.ranks) + "_h" +
             std::to_string(info.param.heads) + "_L" +
             std::to_string(info.param.hidden_layers) + "_n" +
             std::to_string(info.param.n);
    });

TEST(DistMultiHead, VolumeScalesWithHeadCount) {
  const index_t n = 32;
  const auto g = testing::small_graph<double>(n, 200, 103);
  const auto x = testing::random_dense<double>(n, 5, 105);
  auto volume_for = [&](int heads) {
    MhCase p{4, heads, 1, n};
    const auto stats = comm::SpmdRuntime::run(4, [&](comm::Communicator& world) {
      MultiHeadGat<double> model(make_config(p));
      DistMultiHeadGatEngine<double> engine(world, g.adj, model);
      comm::reset_all_stats(world);
      engine.forward(x, nullptr);
    });
    return comm::max_bytes_sent(stats);
  };
  const auto v1 = volume_for(1);
  const auto v4 = volume_for(4);
  // Per-head terms dominate: 4 heads ~ 3-4x the single-head volume (the
  // combined-Z redistribution grows with the concat width too).
  EXPECT_GT(v4, 2 * v1);
  EXPECT_LT(v4, 6 * v1);
}

}  // namespace
}  // namespace agnn::dist
